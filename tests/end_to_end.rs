//! Integration tests spanning the whole stack: templates → prompts → mock
//! model → extraction → validation → generated code → execution.

use askit::llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit::{args, example, json_enum, json_struct, Askit, AskitConfig, FunctionStore, Syntax};

fn quiet(register: impl FnOnce(&mut Oracle)) -> Askit<MockLlm> {
    let mut oracle = Oracle::standard();
    register(&mut oracle);
    let llm = MockLlm::new(
        MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
        oracle,
    );
    Askit::new(llm)
}

json_enum! {
    enum Sentiment {
        Positive = "positive",
        Negative = "negative",
    }
}

json_struct! {
    struct Book {
        title: String,
        author: String,
        year: i64,
    }
}

#[test]
fn paper_section_2_sentiment_flow() {
    let askit = quiet(|_| {});
    let get_sentiment = askit
        .define_as::<Sentiment>("What is the sentiment of {{review}}?")
        .unwrap();
    let s: Sentiment = get_sentiment
        .call_as(args! { review: "The product is fantastic. It exceeds all my expectations." })
        .unwrap();
    assert_eq!(s, Sentiment::Positive);
}

#[test]
fn paper_listing_2_books_flow() {
    let askit = quiet(|oracle| {
        oracle.add_answer_fn("books", |task| {
            use askit::json::{Json, ToJson};
            if !task.template.contains("classic books") {
                return None;
            }
            let n = task.bindings.get("n")?.as_i64()? as usize;
            let books: Vec<Json> = (0..n)
                .map(|i| {
                    Book {
                        title: format!("Classic #{i}"),
                        author: format!("Author {i}"),
                        year: 1970 + i as i64,
                    }
                    .to_json()
                })
                .collect();
            Some(askit::llm::AnswerOutcome::new(
                Json::Array(books),
                "recalling",
            ))
        });
    });
    let get_books = askit
        .define_as::<Vec<Book>>("List {{n}} classic books on {{subject}}.")
        .unwrap();
    let books: Vec<Book> = get_books
        .call_as(args! { n: 4, subject: "computer science" })
        .unwrap();
    assert_eq!(books.len(), 4);
    assert_eq!(books[2].year, 1972);
}

/// The central claim: one template, two execution modes, identical results.
#[test]
fn intersecting_task_mode_parity() {
    let askit = quiet(|oracle| {
        askit::datasets::top50::register_oracle(oracle);
    });
    // Table II task #7 is an intersecting task: directly answerable by the
    // arithmetic-capable model AND codable.
    let template = "Calculate the sum of all numbers in {{ns}}.";
    let task = askit
        .define(askit::types::int(), template)
        .unwrap()
        .with_param_types([("ns", askit::types::list(askit::types::int()))])
        .with_tests([example(
            &[("ns", askit::json::Json::parse("[1,2,3]").unwrap())],
            6i64,
        )]);

    let compiled = task.compile(Syntax::Ts).unwrap();
    for input in ["[4,5,6]", "[10]", "[]", "[2,2,2,2]"] {
        let ns = askit::json::Json::parse(input).unwrap();
        let fast = compiled.call(args! { ns: ns }).unwrap();
        let expected: i64 = askit::json::Json::parse(input)
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .sum();
        assert_eq!(fast, askit::json::Json::Int(expected), "input {input}");
    }
}

#[test]
fn both_syntaxes_compile_the_same_template() {
    let askit = quiet(askit::datasets::top50::register_oracle);
    let catalogue = askit::datasets::top50::tasks();
    let t = &catalogue[0]; // reverse string
    let task = askit
        .define(t.return_type.clone(), t.template)
        .unwrap()
        .with_param_types(t.param_types.clone())
        .with_tests(t.tests.clone());
    let ts = task.compile(Syntax::Ts).unwrap();
    let py = task.compile(Syntax::Py).unwrap();
    assert!(ts.source().contains("export function"));
    assert!(py.source().starts_with("def "));
    let a = ts.call(args! { s: "integration" }).unwrap();
    let b = py.call(args! { s: "integration" }).unwrap();
    assert_eq!(a, b);
    assert_eq!(a, askit::json::Json::from("noitargetni"));
}

#[test]
fn store_cache_round_trips_through_disk() {
    let askit = quiet(askit::datasets::top50::register_oracle);
    let dir = std::env::temp_dir().join(format!("askit-e2e-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FunctionStore::open(&dir).unwrap();
    let catalogue = askit::datasets::top50::tasks();
    let t = &catalogue[1]; // factorial
    let task = askit
        .define(t.return_type.clone(), t.template)
        .unwrap()
        .with_param_types(t.param_types.clone())
        .with_tests(t.tests.clone());

    let first = task.compile_with_store(Syntax::Ts, &store).unwrap();
    assert!(first.attempts() >= 1);
    let cached = task.compile_with_store(Syntax::Ts, &store).unwrap();
    assert_eq!(cached.attempts(), 0);
    assert_eq!(cached.source(), first.source());
    // The artifact on disk is readable, named after the template, and valid
    // MiniTS.
    let path = store.path_for(t.template, Syntax::Ts);
    let on_disk = std::fs::read_to_string(path).unwrap();
    assert!(minilang::parse_ts(&on_disk).is_ok());
}

#[test]
fn gsm8k_direct_and_compiled_agree_with_ground_truth() {
    use askit::datasets::gsm8k;
    let problems = gsm8k::problems(30, 555);
    let askit = quiet(|oracle| gsm8k::register_oracle(oracle, &problems, 9));
    let mut checked = 0;
    for p in &problems {
        if !p.is_codable(9) {
            continue;
        }
        let task = askit
            .define(askit::types::int(), &p.template)
            .unwrap()
            .with_tests([askit::Example {
                input: p.args.clone(),
                output: p.answer.clone(),
            }]);
        let direct = task.call(p.args.clone()).unwrap();
        let compiled = task.compile(Syntax::Ts).unwrap();
        let fast = compiled.call(p.args.clone()).unwrap();
        assert_eq!(direct, p.answer, "problem {}", p.id);
        assert_eq!(fast, p.answer, "problem {}", p.id);
        checked += 1;
    }
    assert!(
        checked >= 20,
        "most of the 30 problems should be fully solvable, got {checked}"
    );
}

#[test]
fn typed_extraction_round_trips_via_option() {
    let askit = quiet(|oracle| {
        oracle.add_answer_fn("maybe", |task| {
            task.template
                .contains("middle name")
                .then(|| askit::llm::AnswerOutcome::new(askit::json::Json::Null, "no middle name"))
        });
    });
    let missing: Option<String> = askit
        .ask_as(
            "What is the middle name of {{person}}?",
            args! { person: "Ada Lovelace" },
        )
        .unwrap();
    assert_eq!(missing, None);
}

#[test]
fn retry_budget_is_respected_on_hopeless_tasks() {
    // An empty oracle plus an impossible answer type: literal that sampling
    // can't stumble into is impossible — instead use a task whose generated
    // code can never pass its test (hard HumanEval-style task).
    let askit = quiet(|_| {}).with_config(AskitConfig::default().with_max_retries(2));
    let task = askit
        .define(
            askit::types::int(),
            "Compute the frobnication index of {{s}}.",
        )
        .unwrap()
        .with_tests([example(&[("s", "x")], 123456i64)]);
    let err = task.compile(Syntax::Ts).unwrap_err();
    match err {
        askit::AskItError::CodegenFailed { attempts, .. } => assert_eq!(attempts, 3),
        other => panic!("expected codegen failure, got {other}"),
    }
}
