//! Cross-crate property tests: the full prompt→mock→extract→validate stack
//! holds its invariants for arbitrary typed tasks.

use askit::llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit::{Askit, AskitConfig};
use askit_types::Type;
use proptest::prelude::*;

/// Arbitrary answer types the runtime must be able to constrain and
/// validate (scalars, lists, objects, literal unions).
fn arb_answer_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(askit::types::float()),
        Just(askit::types::boolean()),
        Just(askit::types::string()),
        prop::collection::vec("[a-z]{1,6}", 2..4).prop_map(|words| {
            askit::types::union(words.into_iter().map(askit::types::literal))
        }),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(askit::types::list),
            prop::collection::vec(("[a-z][a-z0-9]{0,5}", inner), 1..3).prop_map(|fields| {
                let mut seen = std::collections::BTreeSet::new();
                askit::types::dict(fields.into_iter().filter(|(k, _)| seen.insert(k.clone())))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For ANY answer type and ANY unknown task, the runtime returns a value
    /// that validates against the requested type — the format-congruence
    /// property behind the paper's OpenAI-Evals experiment.
    #[test]
    fn runtime_always_returns_typed_answers(
        ty in arb_answer_type(),
        subject in "[a-z]{3,10}",
        seed in any::<u64>(),
    ) {
        let llm = MockLlm::new(
            MockLlmConfig::gpt4().with_seed(seed).with_faults(FaultConfig::none()),
            Oracle::standard(),
        );
        let askit = Askit::new(llm);
        let template = format!("Describe the {subject} of {{{{thing}}}}.");
        let value = askit
            .ask(ty.clone(), &template, askit::args! { thing: "anything" })
            .expect("fault-free runtime always converges");
        prop_assert!(ty.validate(&value).is_ok(), "{} rejected {}", ty, value);
    }

    /// Same property under fault injection: faults cost retries, never
    /// mistyped results.
    #[test]
    fn faults_never_leak_mistyped_answers(
        ty in arb_answer_type(),
        seed in any::<u64>(),
        rate in 0.0f64..0.7,
    ) {
        let llm = MockLlm::new(
            MockLlmConfig::gpt4().with_seed(seed).with_faults(FaultConfig {
                direct_fault_rate: rate,
                code_bug_rate: 0.0,
                decay: 0.3,
            }),
            Oracle::standard(),
        );
        let askit = Askit::new(llm).with_config(AskitConfig::default());
        if let Ok(value) = askit.ask(ty.clone(), "Produce a sample value.", askit::args! {}) {
            prop_assert!(ty.validate(&value).is_ok(), "{} rejected {}", ty, value);
        }
    }

    /// The arithmetic oracle is correct for arbitrary operands through the
    /// whole stack (prompt rendering, binding parsing, answer extraction).
    #[test]
    fn arithmetic_end_to_end(x in -10_000i64..10_000, y in -10_000i64..10_000) {
        let llm = MockLlm::new(
            MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
            Oracle::standard(),
        );
        let askit = Askit::new(llm);
        let sum: i64 = askit
            .ask_as("What is {{x}} plus {{y}}?", askit::args! { x: x, y: y })
            .expect("arithmetic oracle");
        prop_assert_eq!(sum, x + y);
    }

    /// GSM8K solutions are reusable with fresh parameter values — the
    /// paper's stated reason for templating the problems.
    #[test]
    fn gsm8k_solutions_reparametrize(
        a in 1i64..50, b in 1i64..10, c in 1i64..12,
    ) {
        use askit::datasets::gsm8k;
        let problems = gsm8k::problems(12, 4);
        let p = &problems[0]; // shape 1: a + b*c
        let mut args = askit::json::Map::new();
        args.insert("a", askit::json::Json::Int(a));
        args.insert("b", askit::json::Json::Int(b));
        args.insert("c", askit::json::Json::Int(c));
        prop_assert_eq!(p.evaluate(&args), Some(askit::json::Json::Int(a + b * c)));
    }
}
