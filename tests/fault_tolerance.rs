//! Integration tests of the failure machinery: fault injection at the model
//! boundary must surface as retries, never as wrong typed answers.

use askit::llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit::{args, Askit, AskitConfig};

fn faulty(direct_rate: f64, seed: u64) -> Askit<MockLlm> {
    let cfg = MockLlmConfig::gpt4()
        .with_seed(seed)
        .with_faults(FaultConfig {
            direct_fault_rate: direct_rate,
            code_bug_rate: 0.0,
            decay: 0.35,
        });
    Askit::new(MockLlm::new(cfg, Oracle::standard()))
}

/// Whatever the fault rate, an accepted answer is always type-correct and
/// (for the arithmetic oracle) *value*-correct.
#[test]
fn accepted_answers_are_always_correct_under_faults() {
    for &rate in &[0.0, 0.2, 0.5, 0.8] {
        let askit = faulty(rate, 42);
        for i in 0..15i64 {
            let out = askit
                .ask_detailed(
                    askit::types::int(),
                    "What is {{x}} plus {{y}}?",
                    args! { x: i, y: 100 },
                )
                .unwrap_or_else(|e| panic!("rate {rate}, i {i}: {e}"));
            assert_eq!(out.value, askit::json::Json::Int(i + 100));
            assert!(out.attempts <= 10);
        }
    }
}

/// Higher fault rates must cost more attempts on average.
#[test]
fn attempts_grow_with_fault_rate() {
    let mean_attempts = |rate: f64| -> f64 {
        let askit = faulty(rate, 7);
        let mut total = 0usize;
        for i in 0..40i64 {
            total += askit
                .ask_detailed(
                    askit::types::int(),
                    "What is {{x}} times {{y}}?",
                    args! { x: i, y: 3 },
                )
                .unwrap()
                .attempts;
        }
        total as f64 / 40.0
    };
    let calm = mean_attempts(0.0);
    let stormy = mean_attempts(0.8);
    assert_eq!(calm, 1.0, "no faults, no retries");
    assert!(
        stormy > 1.2,
        "80% fault rate must cost retries, got {stormy}"
    );
}

/// Aggregate latency grows with each retry — retries are paid for in
/// (simulated) wall-clock, as Table III's latency column would show.
#[test]
fn latency_accumulates_across_retries() {
    let askit = faulty(1.0, 3); // always fail the first attempt
    let out = askit
        .ask_detailed(
            askit::types::int(),
            "What is {{x}} minus {{y}}?",
            args! { x: 9, y: 4 },
        )
        .unwrap();
    assert!(out.attempts >= 2);
    let single = faulty(0.0, 3)
        .ask_detailed(
            askit::types::int(),
            "What is {{x}} minus {{y}}?",
            args! { x: 9, y: 4 },
        )
        .unwrap();
    assert!(out.latency > single.latency);
    assert!(out.usage.total() > single.usage.total());
}

/// Code-bug injection exercises the semantic check; the accepted function is
/// still correct on fresh inputs.
#[test]
fn code_bugs_never_survive_validation() {
    let cfg = MockLlmConfig::gpt35()
        .with_seed(1)
        .with_faults(FaultConfig {
            direct_fault_rate: 0.0,
            code_bug_rate: 0.6,
            decay: 1.0,
        });
    let mut oracle = Oracle::standard();
    askit::datasets::top50::register_oracle(&mut oracle);
    let askit = Askit::new(MockLlm::new(cfg, oracle));
    let catalogue = askit::datasets::top50::tasks();
    let fact = &catalogue[1];
    let task = askit
        .define(fact.return_type.clone(), fact.template)
        .unwrap()
        .with_param_types(fact.param_types.clone())
        .with_tests(fact.tests.clone());
    let mut retried = false;
    for _ in 0..5 {
        let compiled = task.compile(askit::Syntax::Ts).unwrap();
        retried |= compiled.attempts() > 1;
        // Fresh input not among the validation examples.
        assert_eq!(
            compiled.call(args! { n: 7 }).unwrap(),
            askit::json::Json::Int(5040)
        );
    }
    assert!(
        retried,
        "a 60% bug rate must cause at least one retry in five compiles"
    );
}

/// When the budget runs out, the error says what was wrong last.
#[test]
fn exhaustion_reports_the_final_criterion() {
    let llm = askit::llm::ScriptedLlm::new(
        (0..3)
            .map(|_| "utter nonsense with no json")
            .collect::<Vec<_>>(),
    );
    let askit = Askit::new(llm).with_config(AskitConfig::default().with_max_retries(2));
    let err = askit
        .ask(askit::types::int(), "Unanswerable {{q}}", args! { q: "?" })
        .unwrap_err();
    match err {
        askit::AskItError::AnswerRetriesExhausted {
            attempts,
            last_problem,
        } => {
            assert_eq!(attempts, 3);
            assert!(last_problem.contains("JSON"), "{last_problem}");
        }
        other => panic!("unexpected error {other}"),
    }
}
