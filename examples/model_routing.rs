//! Per-request model routing over a mixed GSM8K batch: cheap one-step
//! problems go to the GPT-3.5-class profile, multi-parameter ones to the
//! GPT-4-class profile — one engine, one cache, one order-preserving batch.
//!
//! Run with `cargo run --example model_routing`.

use std::time::Duration;

use askit::datasets::gsm8k::{self, Gsm8kProblem};
use askit::exec::CacheStats;
use askit::llm::{MockLlm, MockLlmConfig, Oracle};
use askit::{Askit, ModelChoice};

/// Routing heuristic: problems over ≥3 parameters are "hard" (multi-step
/// arithmetic) and earn the strong model; the rest ride the cheap one.
fn route(problem: &Gsm8kProblem) -> ModelChoice {
    if problem.params.len() >= 3 {
        ModelChoice::Gpt4
    } else {
        ModelChoice::Gpt35
    }
}

/// The counters a phase added on top of `before`.
fn delta(before: &CacheStats, after: &CacheStats) -> (u64, u64, u64) {
    (
        after.hits - before.hits,
        after.misses - before.misses,
        after.insertions - before.insertions,
    )
}

fn main() -> Result<(), askit::AskItError> {
    let problems = gsm8k::problems(16, 7);
    let mut oracle = Oracle::standard();
    gsm8k::register_oracle(&mut oracle, &problems, 2);
    let askit = Askit::new(MockLlm::new(MockLlmConfig::gpt4(), oracle));

    let build_queries = |subset: &dyn Fn(&Gsm8kProblem) -> bool| {
        problems
            .iter()
            .filter(|p| subset(p))
            .map(|p| {
                askit
                    .query::<i64>(&p.template)
                    .args(p.args.clone())
                    .model(route(p))
                    .build()
            })
            .collect::<Result<Vec<_>, _>>()
    };

    // Phase 1+2: each model's share of the batch, with its own CacheStats
    // window (one shared engine cache — the model choice is part of the key,
    // so the two models never collide on identical prompts).
    for (label, choice) in [("gpt35", ModelChoice::Gpt35), ("gpt4", ModelChoice::Gpt4)] {
        let queries = build_queries(&|p| route(p) == choice)?;
        let before = askit.cache_stats();
        let outcomes = askit.run_batch_detailed(&queries);
        let after = askit.cache_stats();

        let mut solved = 0usize;
        let mut latency = Duration::ZERO;
        for (problem, outcome) in problems
            .iter()
            .filter(|p| route(p) == choice)
            .zip(&outcomes)
        {
            let outcome = outcome.as_ref().expect("typed GSM8K answer");
            if outcome.value.loosely_equals(&problem.answer) {
                solved += 1;
            }
            latency += outcome.latency;
        }
        let (hits, misses, insertions) = delta(&before, &after);
        println!(
            "{label:>5}: {count} problems, {solved} solved, mean latency {mean:.2}s | \
             cache hits {hits}, misses {misses}, insertions {insertions}",
            count = outcomes.len(),
            mean = latency.as_secs_f64() / outcomes.len().max(1) as f64,
        );
    }

    // Phase 3: the full mixed batch again — every conversation is resident,
    // so the rerun is answered from cache without touching the model.
    let mixed = build_queries(&|_| true)?;
    let calls_before = askit.llm().calls();
    let before = askit.cache_stats();
    let results = askit.run_batch(&mixed);
    let (hits, misses, _) = delta(&before, &askit.cache_stats());
    println!(
        "mixed rerun: {} results in problem order | cache hits {hits}, misses {misses}, \
         model calls added: {}",
        results.len(),
        askit.llm().calls() - calls_before,
    );
    Ok(())
}
