//! Serving AskIt functions over HTTP: register typed tasks in a
//! [`FunctionRegistry`], stand up [`askit::serve::Server`], and call them
//! with JSON bodies — plain request/response or an SSE progress stream —
//! all over the simulated model, so it runs offline and in CI.
//!
//! Run with `cargo run --features serve --example serve`.

use std::sync::Arc;

use askit::llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit::serve::{decode_stream, ServeClient, ServeConfig, Server};
use askit::{Askit, FunctionRegistry, ServedTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The usual engine: simulated GPT-4 behind the full AskIt stack
    //    (typed validation, retry loop, completion cache, scheduler).
    let askit = Arc::new(Askit::new(MockLlm::new(
        MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
        Oracle::standard(),
    )));

    // 2. A registry of servable functions: each is a named, typed prompt
    //    template — the same shape `define` produces.
    let registry = Arc::new(FunctionRegistry::new());
    registry.register(
        ServedTask::new(
            Arc::clone(&askit),
            "add",
            askit::types::int(),
            "What is {{x}} plus {{y}}?",
        )?
        .with_param_types([("x", askit::types::int()), ("y", askit::types::int())])
        .describe("Adds two integers."),
    );
    registry.register(
        ServedTask::new(
            Arc::clone(&askit),
            "mul",
            askit::types::int(),
            "What is {{x}} times {{y}}?",
        )?
        .with_param_types([("x", askit::types::int()), ("y", askit::types::int())])
        .describe("Multiplies two integers."),
    );

    // 3. Serve them. Ephemeral port, so the example never collides.
    let server = Server::start(
        Arc::clone(&registry),
        Arc::clone(&askit) as _,
        ServeConfig::default().with_max_connections(16),
    )?;
    println!("serving at {}", server.base_url());

    let mut client = ServeClient::new(server.addr());

    // 4. Discovery: the service describes its own routes and signatures.
    let health = client.get("/healthz")?;
    println!("/healthz -> {}", health.body.to_compact_string());
    let ready = client.get("/readyz")?;
    println!("/readyz -> {}", ready.body.to_compact_string());
    let functions = client.get("/functions")?;
    println!("/functions -> {}", functions.body.to_compact_string());

    // 5. A typed call: JSON args in, JSON result + engine metadata out.
    let response = client.post("/call/add", r#"{"x": 19, "y": 23}"#)?;
    println!("add(19, 23) -> {}", response.body.to_compact_string());
    assert_eq!(response.status, 200);
    assert_eq!(
        response.body.get_key("result").and_then(|j| j.as_i64()),
        Some(42)
    );

    // 6. Per-call options ride in an envelope: route this one to GPT-4
    //    explicitly and skip the cache.
    let routed = client.post(
        "/call/mul",
        r#"{"args": {"x": 6, "y": 7}, "options": {"model": "gpt4", "cache": "bypass"}}"#,
    )?;
    assert_eq!(routed.str_field("model"), Some("gpt4"));
    println!("mul(6, 7) via gpt4 -> {}", routed.body.to_compact_string());

    // 7. Validation errors are typed too: wrong argument name -> 422 with
    //    the expected signature, before anything reaches the engine.
    let rejected = client.post("/call/add", r#"{"x": 1, "z": 2}"#)?;
    assert_eq!(rejected.status, 422);
    println!(
        "add(x, z) -> 422: {}",
        rejected.str_field("error").unwrap_or("")
    );

    // 8. The same call as an SSE stream: accepted, running heartbeats,
    //    then the result — parseable by the workspace's own SSE parser.
    let (status, events) = client.post_sse("/call/add", r#"{"x": 19, "y": 23}"#)?;
    assert_eq!(status, 200);
    let frames = decode_stream(&events).expect("well-formed stream");
    for frame in &frames {
        println!("sse <- {}", frame.to_compact_string());
    }
    let result = frames.last().expect("at least one frame");
    assert_eq!(result.get_key("result").and_then(|j| j.as_i64()), Some(42));

    // 9. /stats: the repeated add(19,23) inside the stream was a pure
    //    completion-cache hit — visible from the outside.
    let stats = client.get("/stats")?;
    println!("/stats -> {}", stats.body.to_compact_string());

    server.join();
    println!("drained cleanly");
    Ok(())
}
