//! Self-contained load test for the serving front-end, end to end through
//! every layer this workspace owns:
//!
//! ```text
//! 8 client threads -> askit-serve Server -> FunctionRegistry
//!     -> Askit<HttpLlm> engine (cache, scheduler, retries)
//!     -> LoopbackServer (the in-process OpenAI-compatible fixture)
//! ```
//!
//! Three passes, each with hard assertions CI gates on:
//!
//! * **cold** — 8 threads x 40 requests over 10 distinct bodies. The
//!   barrier-aligned first round all ask the same question while the
//!   loopback server drip-feeds the answer, so several requests are
//!   provably in flight together and must coalesce into one engine
//!   submission. Only 10 distinct prompts exist, so the loopback server
//!   must see far fewer wire requests than users sent.
//! * **warm** — the same 320 requests again: every answer comes from the
//!   completion cache, zero new wire requests, measurably faster.
//! * **drain** — a cache-bypassing call is in flight (dripped slowly)
//!   when shutdown begins; the drain must answer it before exiting.
//!
//! Prints one `SERVE_LOADTEST {json}` line for the CI gate and the bench
//! trend log.
//!
//! Run with `cargo run --release --features serve --example serve_loadtest`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use askit::http::{HttpLlm, HttpLlmConfig, LoopbackServer, RateLimit, Reply, RetryConfig};
use askit::llm::ModelChoice;
use askit::serve::{decode_stream, ServeClient, ServeConfig, Server};
use askit::{Askit, FunctionRegistry, ServedTask};

const THREADS: usize = 8;
const ITERS: usize = 40;
const DISTINCT_BODIES: usize = 10;

/// The loopback "model": sums every integer in the prompt and answers in
/// the §III-E JSON shape, so the real AskIt validation loop accepts it.
fn arithmetic_handler(request: &askit::http::RecordedRequest) -> Reply {
    let prompt = request.last_user.as_deref().unwrap_or("");
    let mut sum: i64 = 0;
    let mut digits = String::new();
    for c in prompt.chars().chain([' ']) {
        if c.is_ascii_digit() {
            digits.push(c);
        } else if !digits.is_empty() {
            sum += digits.parse::<i64>().unwrap_or(0);
            digits.clear();
        }
    }
    Reply::Text(completion_for(sum))
}

fn completion_for(answer: i64) -> String {
    format!("```json\n{{\"reason\": \"summed the operands\", \"answer\": {answer}}}\n```")
}

/// `add(k, 100)` request bodies — body `k` must come back as `k + 100`.
fn body(k: usize) -> String {
    format!("{{\"x\": {k}, \"y\": 100}}")
}

/// One client thread's share of a pass. SSE threads exercise the stream
/// path and validate it with the workspace's own parser; the rest use
/// plain request/response. Returns this thread's failure count.
fn run_pass(addr: std::net::SocketAddr, thread: usize, barrier: &Barrier) -> u64 {
    let mut client = ServeClient::new(addr);
    let use_sse = thread >= THREADS - 2;
    let mut failures = 0u64;
    barrier.wait();
    for i in 0..ITERS {
        // The aligned first round all ask the same (dripped) question so
        // coalescing provably happens; later rounds cycle the bodies.
        let k = if i == 0 { 0 } else { i % DISTINCT_BODIES };
        let expected = (k + 100) as i64;
        let request = body(k);
        let got = if use_sse {
            client
                .post_sse("/call/add", &request)
                .ok()
                .and_then(|(status, events)| {
                    if status != 200 {
                        return None;
                    }
                    let frames = decode_stream(&events).ok()?;
                    frames.last()?.get_key("result")?.as_i64()
                })
        } else {
            client
                .post("/call/add", &request)
                .ok()
                .and_then(|response| {
                    if response.status != 200 {
                        return None;
                    }
                    response.body.get_key("result")?.as_i64()
                })
        };
        if got != Some(expected) {
            failures += 1;
        }
    }
    failures
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The stack under test.
    let loopback = LoopbackServer::start()?;
    loopback.set_default_handler(arithmetic_handler);
    let llm = HttpLlm::new(
        HttpLlmConfig::new(loopback.api_base())
            .with_api_key("sk-loadtest-not-a-real-key")
            .with_retry(RetryConfig {
                max_retries: 4,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(100),
            })
            .with_rate_limit(
                ModelChoice::Default,
                RateLimit {
                    capacity: 16.0,
                    per_second: 1000.0,
                },
            ),
    )?;
    let askit = Arc::new(Askit::new(llm));
    let registry = Arc::new(FunctionRegistry::new());
    registry.register(
        ServedTask::new(
            Arc::clone(&askit),
            "add",
            askit::types::int(),
            "What is {{x}} plus {{y}}?",
        )?
        .with_param_types([("x", askit::types::int()), ("y", askit::types::int())]),
    );
    let server = Server::start(
        registry,
        Arc::clone(&askit) as _,
        ServeConfig::default().with_max_connections(32),
    )?;
    let addr = server.addr();
    eprintln!("serve_loadtest: serving at {}", server.base_url());

    let failures = Arc::new(AtomicU64::new(0));
    let hammer = |label: &str| -> u64 {
        let barrier = Arc::new(Barrier::new(THREADS));
        let pass_start = Instant::now();
        let handles: Vec<_> = (0..THREADS)
            .map(|thread| {
                let barrier = Arc::clone(&barrier);
                let failures = Arc::clone(&failures);
                std::thread::spawn(move || {
                    let failed = run_pass(addr, thread, &barrier);
                    failures.fetch_add(failed, Ordering::Relaxed);
                })
            })
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        let elapsed = pass_start.elapsed().as_millis() as u64;
        eprintln!(
            "serve_loadtest: {label} pass: {} requests in {elapsed}ms",
            THREADS * ITERS
        );
        elapsed
    };

    // Cold pass: drip the first answer one byte per millisecond, so the
    // barrier-aligned identical requests overlap long enough to coalesce.
    loopback.script(Reply::Drip {
        content: completion_for(100),
        delay_ms: 1,
    });
    let cold_ms = hammer("cold");
    let cold_wire = loopback.hits() as u64;
    let (cold_leaders, cold_followers) = server.coalescing();

    // Warm pass: every body repeats, so the completion cache answers all
    // of it — the loopback server must see nothing new.
    let warm_ms = hammer("warm");
    let warm_wire_delta = loopback.hits() as u64 - cold_wire;

    // Snapshot /stats while the server is still up (for sse_streams).
    let mut stats_client = ServeClient::new(addr);
    let stats = stats_client.get("/stats")?;
    let sse_streams = stats
        .body
        .get_key("server")
        .and_then(|s| s.get_key("sse_streams"))
        .and_then(|j| j.as_i64())
        .unwrap_or(-1);

    // Scrape /metrics under load-test traffic: the exposition must parse
    // with the workspace's own parser and carry the per-model latency
    // quantiles plus the breaker/failover series the wire layer registers.
    let (metrics_status, exposition) = stats_client.get_text("/metrics")?;
    assert_eq!(metrics_status, 200, "metrics route must answer");
    let samples = askit::obs::metrics::parse_exposition(&exposition)
        .expect("/metrics must serve valid Prometheus exposition");
    let has = |name: &str| samples.iter().any(|s| s.name == name);
    assert!(
        samples.iter().any(|s| s.name == "askit_request_latency_us"
            && s.label("quantile").is_some()
            && s.label("model").is_some()),
        "per-model latency quantiles missing from:\n{exposition}"
    );
    assert!(
        has("askit_breaker_state") && has("askit_http_failovers_total"),
        "breaker/failover series missing from:\n{exposition}"
    );
    assert!(
        has("askit_cache_hits_total") && has("askit_wire_attempts_total"),
        "cache/wire series missing from:\n{exposition}"
    );
    let metrics_series = samples.len() as u64;
    if let Ok(out) = std::env::var("ASKIT_METRICS_OUT") {
        std::fs::write(&out, &exposition)?;
        eprintln!("serve_loadtest: wrote {metrics_series}-sample exposition to {out}");
    }
    drop(stats_client);

    // Drain pass: put a slow, cache-bypassing call in flight, then shut
    // down. The drain must answer it (not drop it) before the process can
    // observe the listener gone.
    loopback.script(Reply::Drip {
        content: completion_for(100),
        delay_ms: 2,
    });
    let in_flight = std::thread::spawn(move || {
        let mut client = ServeClient::new(addr);
        client
            .post(
                "/call/add",
                "{\"args\": {\"x\": 0, \"y\": 100}, \"options\": {\"cache\": \"bypass\"}}",
            )
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| r.body.get_key("result").and_then(|j| j.as_i64()))
    });
    std::thread::sleep(Duration::from_millis(30));
    server.join();
    let drained_answer = in_flight.join().unwrap_or(None);
    let drain_completed = drained_answer == Some(100);
    let listener_gone = std::net::TcpStream::connect(addr).is_err();

    let user_requests = (THREADS * ITERS * 2) as u64 + 1;
    let total_failures =
        failures.load(Ordering::Relaxed) + u64::from(!drain_completed) + u64::from(!listener_gone);

    // One machine-readable line for the CI gate and the bench trend log.
    println!(
        "SERVE_LOADTEST {{\"user_requests\": {user_requests}, \
         \"cold\": {{\"requests\": {}, \"elapsed_ms\": {cold_ms}, \
         \"wire_requests\": {cold_wire}, \"engine_submissions\": {cold_leaders}, \
         \"coalesced\": {cold_followers}}}, \
         \"warm\": {{\"requests\": {}, \"elapsed_ms\": {warm_ms}, \
         \"wire_requests_delta\": {warm_wire_delta}}}, \
         \"drain\": {{\"completed\": {drain_completed}, \"listener_gone\": {listener_gone}}}, \
         \"sse_streams\": {sse_streams}, \"metrics_series\": {metrics_series}, \
         \"failures\": {total_failures}}}",
        THREADS * ITERS,
        THREADS * ITERS,
    );

    assert_eq!(total_failures, 0, "every request must succeed");
    assert!(
        cold_wire < (THREADS * ITERS) as u64,
        "coalescing + caching must compress {} user requests into fewer wire requests (saw {})",
        THREADS * ITERS,
        cold_wire
    );
    assert!(cold_followers >= 1, "the aligned first round must coalesce");
    assert_eq!(
        warm_wire_delta, 0,
        "warm pass must be served entirely from cache"
    );
    assert!(
        warm_ms < cold_ms.max(1),
        "warm pass ({warm_ms}ms) must beat the cold pass ({cold_ms}ms)"
    );
    eprintln!("serve_loadtest: all assertions passed");
    Ok(())
}
