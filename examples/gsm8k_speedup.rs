//! The Table III experiment in miniature — now with a persistent completion
//! cache: solve GSM8K-style word problems directly with the LLM, compile
//! them, and compare a cold sweep against a warm one.
//!
//! The sweep runs twice in-process (pass 2 is always warm from memory), and
//! with `--cache-dir` the cache also spills to disk, so a *second process*
//! pointed at the same directory starts warm: its pass 1 serves every
//! conversation from the reloaded cache without touching the model.
//!
//! Mirroring the paper's protocol ("We use these 1,138 and 1,159 problems
//! for program generation" — only solved problems proceed), the cold run
//! writes a `replayable.txt` manifest of cleanly solved problems next to
//! the cache, and warm runs sweep exactly that set. Problems the simulated
//! model *cannot* solve burn their retry budget on every run — their
//! rejected completions are invalidated so they are never replayed — so
//! they are discovery work, not replay work.
//!
//! The CI `cache-persistence` job runs a cold/warm pair and gates on the
//! `CACHE_WARMSTART` stats line this binary prints.
//!
//! ```text
//! cargo run --release --example gsm8k_speedup -- \
//!     [--count N] [--cache-dir DIR] [--cache-ttl SECS]
//! ```

use std::time::{Duration, Instant};

use askit::datasets::gsm8k::{self, Gsm8kProblem};
use askit::exec::{CacheStats, EngineConfig};
use askit::llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit::{Askit, Syntax};

/// What one sweep over the problem set did.
struct Sweep {
    wall: Duration,
    /// Problems that solved cleanly (one direct attempt, one codegen
    /// attempt, answers agree): the set a warm run can replay outright.
    replayable: Vec<usize>,
    mean_speedup: f64,
}

/// One full sweep: every problem answered directly and compiled, the
/// paper's speedup ratio computed per problem.
fn sweep(
    askit: &Askit<MockLlm>,
    problems: &[Gsm8kProblem],
    print_rows: bool,
) -> Result<Sweep, askit::AskItError> {
    let started = Instant::now();
    let mut replayable = Vec::new();
    let mut speedups = Vec::new();
    for problem in problems {
        let task = askit
            .define(askit::types::int(), &problem.template)?
            .with_tests([askit::Example {
                input: problem.args.clone(),
                output: problem.answer.clone(),
            }]);

        // Direct mode: one simulated model round trip (plus retries).
        let direct = match task.call_detailed(problem.args.clone()) {
            Ok(outcome) => outcome,
            Err(e) => {
                if print_rows {
                    println!("problem {:>2}: direct mode failed ({e})", problem.id);
                }
                continue;
            }
        };

        // Compiled mode: generate once, then execute natively.
        let compiled = match task.compile(Syntax::Ts) {
            Ok(c) => c,
            Err(e) => {
                if print_rows {
                    println!("problem {:>2}: codegen failed ({e})", problem.id);
                }
                continue;
            }
        };
        let exec_started = Instant::now();
        let fast = compiled.call(problem.args.clone())?;
        let exec = exec_started.elapsed();

        // The simulated model may answer wrongly on problems it "cannot
        // solve" (the paper's ~87% solve rate); only agreeing, first-try
        // problems are clean replays.
        if direct.value == fast && direct.attempts == 1 && compiled.attempts() <= 1 {
            replayable.push(problem.id);
        }
        let speedup = direct.latency.as_secs_f64() / exec.as_secs_f64().max(1e-9);
        speedups.push(speedup);
        if print_rows {
            println!(
                "problem {:>2}: answer {:>5} | latency {:>6.2}s vs exec {:>9.2?} | speedup {:>12.0}x",
                problem.id,
                fast,
                direct.latency.as_secs_f64(),
                exec,
                speedup
            );
        }
    }
    let mean_speedup = if speedups.is_empty() {
        0.0
    } else {
        speedups.iter().sum::<f64>() / speedups.len() as f64
    };
    Ok(Sweep {
        wall: started.elapsed(),
        replayable,
        mean_speedup,
    })
}

/// The lookup counters one sweep added.
fn delta(before: &CacheStats, after: &CacheStats) -> (u64, u64, f64) {
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    let rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    (hits, misses, rate)
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "gsm8k_speedup: {problem}\n\
         usage: gsm8k_speedup [--count N] [--cache-dir DIR] [--cache-ttl SECS]"
    );
    std::process::exit(2);
}

fn main() -> Result<(), askit::AskItError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut count = 8usize;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_ttl: Option<Duration> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--count" => match iter.next().map(|v| v.parse()) {
                Some(Ok(n)) => count = n,
                _ => usage("--count needs a number"),
            },
            "--cache-dir" => match iter.next() {
                Some(dir) => cache_dir = Some(dir.into()),
                None => usage("--cache-dir needs a path"),
            },
            "--cache-ttl" => match iter.next().map(|v| v.parse()) {
                Some(Ok(secs)) => cache_ttl = Some(Duration::from_secs(secs)),
                _ => usage("--cache-ttl needs a number of seconds"),
            },
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    let mut problems = gsm8k::problems(count, 2024);
    let mut oracle = Oracle::standard();
    gsm8k::register_oracle(&mut oracle, &problems, 1);
    // Faults off: this example demonstrates the speedup and the warm start,
    // not the retry loop (run the eval binary's table3 for the full story).
    let llm = MockLlm::new(
        MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
        oracle,
    );
    let mut engine_config = EngineConfig::default().with_cache_capacity(1 << 15);
    if let Some(dir) = &cache_dir {
        engine_config.cache_dir = Some(dir.clone());
        engine_config.cache_ttl = cache_ttl;
    }
    let askit = Askit::new(llm).with_engine_config(engine_config);

    // A warm process replays the manifest the cold run left behind.
    let manifest = cache_dir.as_ref().map(|dir| dir.join("replayable.txt"));
    let replay_set: Option<Vec<usize>> = manifest.as_ref().and_then(|path| {
        let text = std::fs::read_to_string(path).ok()?;
        Some(text.lines().filter_map(|l| l.parse().ok()).collect())
    });
    let start_stats = askit.cache_stats();
    let run = if start_stats.loaded > 0 && replay_set.is_some() {
        "warm"
    } else {
        "cold"
    };
    if let Some(ids) = &replay_set {
        problems.retain(|p| ids.contains(&p.id));
    }
    match &cache_dir {
        Some(dir) if run == "warm" => println!(
            "warm start: {} completions loaded from {}; replaying the {} cleanly solved problems\n",
            start_stats.loaded,
            dir.display(),
            problems.len(),
        ),
        Some(dir) => println!("cold start: no completions under {}\n", dir.display()),
        None => println!("in-memory cache (pass --cache-dir to persist across runs)\n"),
    }

    let pass1 = sweep(&askit, &problems, count <= 12)?;
    let after1 = askit.cache_stats();
    let (hits1, misses1, rate1) = delta(&start_stats, &after1);
    let pass2 = sweep(&askit, &problems, false)?;
    let (hits2, misses2, rate2) = delta(&after1, &askit.cache_stats());

    println!(
        "\npass 1 ({run}):            {:>4} problems in {:>9.2?}   hits {hits1:>4} / misses {misses1:>4}  (hit rate {:>5.1}%)",
        problems.len(),
        pass1.wall,
        rate1 * 100.0
    );
    println!(
        "pass 2 (in-process warm): {:>4} problems in {:>9.2?}   hits {hits2:>4} / misses {misses2:>4}  (hit rate {:>5.1}%)   {:.1}x faster",
        problems.len(),
        pass2.wall,
        rate2 * 100.0,
        pass1.wall.as_secs_f64() / pass2.wall.as_secs_f64().max(1e-9)
    );
    println!(
        "mean direct-vs-compiled speedup: {:.0}x",
        pass1.mean_speedup
    );
    println!("completion cache: {}", askit.cache_stats());

    let flushed = match askit.persist_cache() {
        Ok(n) => {
            if let Some(dir) = &cache_dir {
                println!("flushed {n} cache records to {}", dir.display());
            }
            n
        }
        Err(e) => {
            eprintln!("could not persist the cache: {e}");
            0
        }
    };
    if run == "cold" {
        if let Some(path) = &manifest {
            let lines: Vec<String> = pass1.replayable.iter().map(usize::to_string).collect();
            if let Err(e) = std::fs::write(path, lines.join("\n")) {
                eprintln!("could not write the replay manifest: {e}");
            }
        }
    }

    // The machine-readable line the CI cold-vs-warm gate consumes. Pass-1
    // numbers carry the cross-process story: a second process against the
    // same --cache-dir reports run="warm" with a 100% pass-1 hit rate.
    println!(
        "CACHE_WARMSTART {{\"run\":\"{run}\",\"requested\":{count},\"problems\":{},\"wall_ms\":{:.3},\"second_pass_wall_ms\":{:.3},\"hits\":{hits1},\"misses\":{misses1},\"hit_rate\":{:.4},\"loaded\":{},\"flushed\":{flushed},\"expired\":{}}}",
        problems.len(),
        pass1.wall.as_secs_f64() * 1e3,
        pass2.wall.as_secs_f64() * 1e3,
        rate1,
        start_stats.loaded,
        askit.cache_stats().expired,
    );
    println!(
        "\n(The paper's Table III reports ~275,092x for TypeScript and ~6,969,904x for Python.)"
    );
    Ok(())
}
