//! The Table III experiment in miniature: solve GSM8K-style word problems
//! directly with the LLM, then compile them and compare latency against
//! execution time.
//!
//! Run with `cargo run --example gsm8k_speedup`.

use std::time::Instant;

use askit::datasets::gsm8k;
use askit::llm::{MockLlm, MockLlmConfig, Oracle};
use askit::{Askit, Syntax};

fn main() -> Result<(), askit::AskItError> {
    let problems = gsm8k::problems(8, 2024);
    let mut oracle = Oracle::standard();
    gsm8k::register_oracle(&mut oracle, &problems, 1);
    let llm = MockLlm::new(MockLlmConfig::gpt4(), oracle);
    let askit = Askit::new(llm);

    for problem in &problems {
        let task = askit
            .define(askit::types::int(), &problem.template)?
            .with_tests([askit::Example {
                input: problem.args.clone(),
                output: problem.answer.clone(),
            }]);

        // Direct mode: one simulated model round trip.
        let direct = match task.call_detailed(problem.args.clone()) {
            Ok(outcome) => outcome,
            Err(e) => {
                println!("problem {}: direct mode failed ({e})", problem.id);
                continue;
            }
        };

        // Compiled mode: generate once, then execute natively.
        let compiled = match task.compile(Syntax::Ts) {
            Ok(c) => c,
            Err(e) => {
                println!("problem {}: codegen failed ({e})", problem.id);
                continue;
            }
        };
        let started = Instant::now();
        let fast = compiled.call(problem.args.clone())?;
        let exec = started.elapsed();

        assert_eq!(direct.value, fast, "both modes agree");
        let speedup = direct.latency.as_secs_f64() / exec.as_secs_f64().max(1e-9);
        println!(
            "problem {:>2}: answer {:>5} | latency {:>6.2}s vs exec {:>9.2?} | speedup {:>12.0}x",
            problem.id,
            fast,
            direct.latency.as_secs_f64(),
            exec,
            speedup
        );
    }
    println!(
        "\n(The paper's Table III reports ~275,092x for TypeScript and ~6,969,904x for Python.)"
    );
    Ok(())
}
