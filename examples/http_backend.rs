//! The network backend end-to-end: the full AskIt stack (typed queries,
//! retry loop, execution engine, completion cache) served by the
//! OpenAI-compatible HTTP client — against the in-process loopback server,
//! so it runs offline and in CI.
//!
//! Run with `cargo run --features http --example http_backend`.

use std::time::Duration;

use askit::http::{HttpLlm, HttpLlmConfig, LoopbackServer, RateLimit, Reply, RetryConfig};
use askit::llm::{CompletionRequest, LanguageModel, ModelChoice};
use askit::{args, Askit};

/// The loopback "model": sums every integer in the prompt and answers in
/// the §III-E JSON shape, so the real AskIt validation loop accepts it.
fn arithmetic_handler(request: &askit::http::RecordedRequest) -> Reply {
    let prompt = request.last_user.as_deref().unwrap_or("");
    let mut sum: i64 = 0;
    let mut digits = String::new();
    for c in prompt.chars().chain([' ']) {
        if c.is_ascii_digit() {
            digits.push(c);
        } else if !digits.is_empty() {
            sum += digits.parse::<i64>().unwrap_or(0);
            digits.clear();
        }
    }
    Reply::Text(format!(
        "```json\n{{\"reason\": \"summed the operands\", \"answer\": {sum}}}\n```"
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A loopback server stands in for api.openai.com — scripted,
    //    fault-injectable, and entirely in-process.
    let server = LoopbackServer::start()?;
    server.set_default_handler(arithmetic_handler);
    println!("loopback server listening at {}", server.api_base());

    // 2. The HTTP client is just another LanguageModel: the engine, cache,
    //    and retry loop front it exactly as they front the simulated GPT.
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_api_key("sk-example-not-a-real-key")
            .with_retry(RetryConfig {
                max_retries: 4,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(100),
            })
            .with_rate_limit(
                ModelChoice::Default,
                RateLimit {
                    capacity: 8.0,
                    per_second: 500.0,
                },
            ),
    )?;
    let askit = Askit::new(llm);

    // 3. The full DSL over the wire: prompt synthesis, JSON extraction,
    //    type validation — answered by the loopback handler.
    let total: i64 = askit.ask_as("What is {{x}} plus {{y}}?", args! { x: 19, y: 23 })?;
    println!("19 + 23 = {total} (served over HTTP)");
    assert_eq!(total, 42);

    // 4. Warm pass: the same questions again are pure cache hits — the
    //    server sees zero additional requests.
    let questions: Vec<(i64, i64)> = (1..=8).map(|i| (i, i * 10)).collect();
    for &(x, y) in &questions {
        let _: i64 = askit.ask_as("What is {{x}} plus {{y}}?", args! { x: x, y: y })?;
    }
    let hits_after_cold = server.hits();
    for &(x, y) in &questions {
        let answer: i64 = askit.ask_as("What is {{x}} plus {{y}}?", args! { x: x, y: y })?;
        assert_eq!(answer, x + y);
    }
    assert_eq!(
        server.hits(),
        hits_after_cold,
        "warm pass must issue zero HTTP requests"
    );
    println!(
        "warm pass: 8/8 answers from cache, {} total HTTP requests, engine {}",
        server.hits(),
        askit.cache_stats()
    );

    // 5. Fault injection: a 429 burst followed by recovery. Backoff plus
    //    the drained token bucket absorb all of it — no user-visible error.
    server.script_all([
        Reply::Status {
            status: 429,
            retry_after: None,
            body: r#"{"error":{"message":"rate limited"}}"#.into(),
        },
        Reply::Status {
            status: 429,
            retry_after: Some(0),
            body: r#"{"error":{"message":"rate limited"}}"#.into(),
        },
    ]);
    let under_pressure: i64 = askit.ask_as("What is {{x}} plus {{y}}?", args! { x: 400, y: 29 })?;
    assert_eq!(under_pressure, 429);
    let stats = askit.llm().stats();
    println!(
        "429 burst absorbed: {} throttles, {} retries, answer still {under_pressure}",
        stats.throttles, stats.retries
    );

    // 6. Streaming: the same protocol over SSE, the response torn into
    //    7-byte chunks on the wire and reassembled by the client.
    let streaming = HttpLlm::new(HttpLlmConfig::new(server.api_base()).with_stream(true))?;
    server.script(Reply::Sse("streamed čhúnked ánswer 🦀".into()));
    let completion = streaming.complete(&CompletionRequest::from_prompt("stream one"))?;
    println!("SSE round trip: {:?}", completion.text);
    assert_eq!(completion.text, "streamed čhúnked ánswer 🦀");

    println!(
        "keep-alive: {} requests over {} TCP connection(s)",
        server.hits(),
        server.connections()
    );
    Ok(())
}
