//! The paper's §II motivating example: sentiment analysis of product
//! reviews with type-guided output control — no hand-written parsing, no
//! format instructions in the prompt.
//!
//! Run with `cargo run --example sentiment_pipeline`.

use askit::llm::{MockLlm, MockLlmConfig, Oracle};
use askit::{args, json_enum, Askit};

json_enum! {
    /// The TS version writes `ask<'positive' | 'negative'>`; this enum is
    /// the Rust spelling of that literal union.
    pub enum Sentiment {
        Positive = "positive",
        Negative = "negative",
    }
}

fn main() -> Result<(), askit::AskItError> {
    // Default fault rates: the model occasionally answers with malformed
    // JSON and the runtime's retry loop quietly repairs the interaction.
    let llm = MockLlm::new(MockLlmConfig::gpt4(), Oracle::standard());
    let askit = Askit::new(llm);

    let get_sentiment = askit.define_as::<Sentiment>("What is the sentiment of {{review}}?")?;

    let reviews = [
        "The product is fantastic. It exceeds all my expectations.",
        "Terrible build quality, it broke after two days. Total waste.",
        "Absolutely love it, best purchase this year!",
        "Disappointing. The battery is defective and support was useless.",
    ];

    for review in reviews {
        let outcome = get_sentiment.call_detailed(args! { review: review })?;
        let sentiment: Sentiment = askit::json::FromJson::from_json(&outcome.value)?;
        println!(
            "[{sentiment:>8}] ({} attempt(s), {:.1}s simulated latency) {review}",
            outcome.attempts,
            outcome.latency.as_secs_f64(),
        );
    }
    Ok(())
}
