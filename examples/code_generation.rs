//! Code generation for codable tasks (paper §III-D): compile Table II tasks
//! in both surface syntaxes and inspect the generated code, retries, and
//! the on-disk cache.
//!
//! Run with `cargo run --example code_generation`.

use askit::datasets::top50;
use askit::llm::{MockLlm, MockLlmConfig, Oracle};
use askit::{args, Askit, FunctionStore, Syntax};

fn main() -> Result<(), askit::AskItError> {
    let mut oracle = Oracle::standard();
    top50::register_oracle(&mut oracle);
    let llm = MockLlm::new(MockLlmConfig::gpt35(), oracle);
    let askit = Askit::new(llm);

    let store = FunctionStore::open(std::env::temp_dir().join("askit-example-cache"))?;

    // Compile the factorial task (Table II #2) for TypeScript…
    let catalogue = top50::tasks();
    let factorial = &catalogue[1];
    let task = askit
        .define(factorial.return_type.clone(), factorial.template)?
        .with_param_types(factorial.param_types.clone())
        .with_tests(factorial.tests.clone());

    let ts = task.compile_with_store(Syntax::Ts, &store)?;
    println!(
        "--- {} [TypeScript, {} attempt(s), {} LOC] ---\n{}",
        factorial.template,
        ts.attempts(),
        ts.loc(),
        ts.source()
    );
    println!("factorial(10) = {}\n", ts.call(args! { n: 10 })?);

    // …and for Python — same template, different backend syntax.
    let py = task.compile(Syntax::Py)?;
    println!(
        "--- {} [Python, {} attempt(s), {} LOC] ---\n{}",
        factorial.template,
        py.attempts(),
        py.loc(),
        py.source()
    );
    println!("factorial(10) = {}\n", py.call(args! { n: 10 })?);

    // The paper's §II file-access example is *codable but not directly
    // answerable*; here is its Table II cousin — a task whose Python
    // pipeline fails because the signature carries no types (#11).
    let unique = catalogue
        .iter()
        .find(|t| t.id == 11)
        .expect("task 11 exists");
    let task = askit
        .define(unique.return_type.clone(), unique.template)?
        .with_tests(unique.tests.clone());
    // No param types declared → the Python-style failure is reproduced.
    match task.compile(Syntax::Py) {
        Ok(_) => println!("task 11 unexpectedly compiled without types"),
        Err(e) => println!("task 11 (untyped, as in the Python pipeline) fails: {e}"),
    }
    let typed = askit
        .define(unique.return_type.clone(), unique.template)?
        .with_param_types(unique.param_types.clone())
        .with_tests(unique.tests.clone());
    let ok = typed.compile(Syntax::Ts)?;
    println!(
        "task 11 with declared types compiles in {} attempt(s)",
        ok.attempts()
    );
    Ok(())
}
