//! Quickstart: the two AskIt modes on one template, driven through the
//! typed `Query` builder.
//!
//! Run with `cargo run --example quickstart`.

use askit::llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit::{args, example, Askit, ModelChoice, QueryOptions, Syntax};

fn main() -> Result<(), askit::AskItError> {
    // 1. Stand up a (simulated) model. The standard oracle knows small
    //    arithmetic and sentiment; give it one coding skill too, the way
    //    datasets register their knowledge.
    let mut oracle = Oracle::standard();
    oracle.add_code_fn("multiply", |task| {
        if !task.instruction.contains("times") {
            return None;
        }
        use askit::minilang::build::{func, mul, ret, var};
        let names: Vec<String> = task.params.iter().map(|p| p.name.clone()).collect();
        Some(func(
            "m",
            [],
            askit::types::int(),
            vec![ret(mul(var(names[0].clone()), var(names[1].clone())))],
        ))
    });
    let llm = MockLlm::new(
        MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
        oracle,
    );
    let askit = Askit::new(llm);

    // 2. A one-shot typed query: the request is a value. Every option —
    //    model, temperature, retries, cache policy — is a per-call override.
    let product: i64 = askit
        .query::<i64>("What is {{x}} times {{y}}?")
        .args(args! { x: 7, y: 8 })
        .model(ModelChoice::Gpt4)
        .retries(3)
        .build()?
        .run()?;
    println!("7 × 8 = {product}");

    // 3. A batch of queries fans out across the engine's worker pool,
    //    order preserved.
    let queries = (2..=5i64)
        .map(|n| {
            askit
                .query::<i64>("What is {{x}} times {{y}}?")
                .args(args! { x: n, y: n })
                .build()
        })
        .collect::<Result<Vec<_>, _>>()?;
    let squares = askit.run_batch(&queries);
    for (n, square) in (2..=5i64).zip(&squares) {
        println!("{n}² = {}", square.as_ref().expect("oracle answers"));
    }

    // 4. A reusable `define`d function: call it directly, with an
    //    optional per-invocation override…
    let multiply = askit
        .define(askit::types::int(), "What is {{x}} times {{y}}?")?
        .with_param_types([("x", askit::types::int()), ("y", askit::types::int())])
        .with_tests([example(&[("x", 3i64), ("y", 4i64)], 12i64)]);
    let direct = multiply.call_with(
        args! { x: 12, y: 12 },
        &QueryOptions::new().with_model(ModelChoice::Gpt35),
    )?;
    println!("direct mode:   12 × 12 = {direct}");

    // 5. …then compile the SAME template into generated code and call that.
    let compiled = multiply.compile(Syntax::Ts)?;
    let fast = compiled.call(args! { x: 12, y: 12 })?;
    println!("compiled mode: 12 × 12 = {fast}");
    println!(
        "\ngenerated source ({} attempt(s)):\n{}",
        compiled.attempts(),
        compiled.source()
    );
    Ok(())
}
