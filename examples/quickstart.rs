//! Quickstart: the two AskIt modes on one template.
//!
//! Run with `cargo run --example quickstart`.

use askit::llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit::{args, example, Askit, Syntax};

fn main() -> Result<(), askit::AskItError> {
    // 1. Stand up a (simulated) model. The standard oracle knows small
    //    arithmetic and sentiment; give it one coding skill too, the way
    //    datasets register their knowledge.
    let mut oracle = Oracle::standard();
    oracle.add_code_fn("multiply", |task| {
        if !task.instruction.contains("times") {
            return None;
        }
        use askit::minilang::build::{func, mul, ret, var};
        let names: Vec<String> = task.params.iter().map(|p| p.name.clone()).collect();
        Some(func(
            "m",
            [],
            askit::types::int(),
            vec![ret(mul(var(names[0].clone()), var(names[1].clone())))],
        ))
    });
    let llm = MockLlm::new(
        MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
        oracle,
    );
    let askit = Askit::new(llm);

    // 2. A one-shot `ask`, typed by the Rust result type.
    let product: i64 = askit.ask_as("What is {{x}} times {{y}}?", args! { x: 7, y: 8 })?;
    println!("7 × 8 = {product}");

    // 3. A reusable `define`d function: call it directly…
    let multiply = askit
        .define(askit::types::int(), "What is {{x}} times {{y}}?")?
        .with_param_types([("x", askit::types::int()), ("y", askit::types::int())])
        .with_tests([example(&[("x", 3i64), ("y", 4i64)], 12i64)]);
    let direct = multiply.call(args! { x: 12, y: 12 })?;
    println!("direct mode:   12 × 12 = {direct}");

    // 4. …then compile the SAME template into generated code and call that.
    let compiled = multiply.compile(Syntax::Ts)?;
    let fast = compiled.call(args! { x: 12, y: 12 })?;
    println!("compiled mode: 12 × 12 = {fast}");
    println!(
        "\ngenerated source ({} attempt(s)):\n{}",
        compiled.attempts(),
        compiled.source()
    );
    Ok(())
}
