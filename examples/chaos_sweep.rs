//! Deterministic chaos sweep for the resilience layer, end to end through
//! the HTTP backend:
//!
//! ```text
//! HttpLlm (retry, breakers, failover, hedging, deadlines)
//!     -> primary LoopbackServer   (scripted fault windows)
//!     -> fallback LoopbackServer  (healthy)
//! ```
//!
//! Each scenario runs the same prompt set twice — once against a healthy
//! two-endpoint pair (the baseline) and once with a fault schedule
//! installed on the primary — and gates on three properties:
//!
//! * **zero user-visible errors** for retryable fault classes (blackout,
//!   429 storm, slow-loris, mid-stream disconnect, flapping);
//! * **bit-identical results**: the faulted run must return exactly the
//!   baseline's bytes, because endpoints are service advice, not part of
//!   the request identity;
//! * **bounded recovery**: no request may take longer than the per-request
//!   latency ceiling, even when it has to fail over or hedge.
//!
//! Fault windows key on the primary's request *ordinal*, not on clocks, so
//! every CI run replays the exact same fault timeline. A final pass checks
//! that an already-expired deadline is shed before any wire traffic.
//!
//! Prints one `CHAOS_SWEEP {json}` line for `tools/chaos_gate.py` and the
//! bench trend log.
//!
//! Run with `cargo run --release --features http --example chaos_sweep`.
//! Pass `-- --trace-out PATH` to install a [`TraceSink`] for the whole
//! sweep and write the Chrome-trace-event JSON (Perfetto-viewable) when
//! the run completes — every request is stamped with a trace id, so the
//! export shows each scenario's wire attempts, failovers, hedge races,
//! and breaker transitions on a common timeline.

use std::time::{Duration, Instant};

use askit::http::{
    BreakerConfig, Fault, FaultWindow, HedgeConfig, HttpLlm, HttpLlmConfig, HttpStats,
    LoopbackServer, RetryConfig,
};
use askit::json::{Json, Map};
use askit::llm::{CompletionRequest, LanguageModel, LlmError};
use askit::obs::{TraceId, TraceSink};

/// Per-request latency ceiling: even a request that has to trip a breaker,
/// fail over, and retry must settle inside this.
const LATENCY_CEILING: Duration = Duration::from_secs(5);

struct Scenario {
    name: &'static str,
    /// Prompts issued (each distinct, so nothing is served from coalescing).
    requests: usize,
    /// Whether requests opt into hedging.
    hedge: bool,
    /// Fault windows installed on the primary endpoint.
    windows: &'static [FaultWindow],
    /// Settling time after the run (lets detached hedge losers finish
    /// before the loopback servers drop).
    settle: Duration,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        // Dead primary for the whole run: the breaker must trip and every
        // request must be answered by the fallback.
        name: "blackout",
        requests: 6,
        hedge: false,
        windows: &[FaultWindow {
            from_hit: 0,
            to_hit: usize::MAX,
            fault: Fault::Blackout,
        }],
        settle: Duration::ZERO,
    },
    Scenario {
        // A burst of 429s: absorbed by backoff + failover, and — because a
        // parsed 429 proves the endpoint is alive — without a breaker trip.
        name: "storm_429",
        requests: 6,
        hedge: false,
        windows: &[FaultWindow {
            from_hit: 0,
            to_hit: 4,
            fault: Fault::RateLimitStorm {
                retry_after: Some(0),
            },
        }],
        settle: Duration::ZERO,
    },
    Scenario {
        // The primary drips the first (correct!) answer one byte at a time;
        // the hedge must race the fallback and win long before the drip
        // finishes.
        name: "slow_loris",
        requests: 3,
        hedge: true,
        windows: &[FaultWindow {
            from_hit: 0,
            to_hit: 1,
            fault: Fault::SlowLoris { delay_ms: 20 },
        }],
        settle: Duration::from_millis(800),
    },
    Scenario {
        // Responses torn mid-body: a transport fault after bytes have
        // flowed, absorbed by retry + failover.
        name: "midstream_cut",
        requests: 5,
        hedge: false,
        windows: &[FaultWindow {
            from_hit: 0,
            to_hit: 2,
            fault: Fault::MidStreamCut,
        }],
        settle: Duration::ZERO,
    },
    Scenario {
        // Every other primary request disconnects. Failures never run
        // consecutively on the endpoint, so the breaker must NOT trip: the
        // stale keep-alive re-send (a zero-byte reply on a reused
        // connection is retried on a fresh socket) and the retry loop
        // absorb the flapping without abandoning the primary.
        name: "flapping",
        requests: 6,
        hedge: false,
        windows: &[FaultWindow {
            from_hit: 0,
            to_hit: 8,
            fault: Fault::Flapping,
        }],
        settle: Duration::ZERO,
    },
];

fn client_for(primary: &LoopbackServer, fallback: &LoopbackServer) -> HttpLlm {
    HttpLlm::new(
        HttpLlmConfig::new(primary.api_base())
            .with_fallback(fallback.api_base())
            .with_retry(RetryConfig {
                max_retries: 5,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(40),
            })
            .with_request_timeout(Duration::from_secs(2))
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(30),
            })
            .with_hedge(HedgeConfig {
                percentile: 0.9,
                initial_delay: Duration::from_millis(20),
                // Never trust the percentile in this short run: the hedge
                // delay stays deterministic.
                min_samples: usize::MAX,
            }),
    )
    .expect("valid loopback config")
}

/// Runs one scenario's prompt set; returns (answers, errors, max latency).
fn run_prompts(llm: &HttpLlm, scenario: &Scenario) -> (Vec<Option<String>>, u64, Duration) {
    let mut answers = Vec::with_capacity(scenario.requests);
    let mut errors = 0u64;
    let mut max_latency = Duration::ZERO;
    for i in 0..scenario.requests {
        let mut request =
            CompletionRequest::from_prompt(format!("chaos {} prompt {i}", scenario.name));
        request.options.hedge = scenario.hedge;
        // Trace identity is service advice (never part of the request
        // fingerprint), so stamping it cannot perturb the bit-identity
        // check; spans only record when `--trace-out` installed a sink.
        request.options = request.options.stamp_trace(TraceId::generate());
        let started = Instant::now();
        let outcome = llm.complete(&request);
        max_latency = max_latency.max(started.elapsed());
        match outcome {
            Ok(completion) => answers.push(Some(completion.text)),
            Err(error) => {
                eprintln!("chaos_sweep: {} request {i} failed: {error}", scenario.name);
                errors += 1;
                answers.push(None);
            }
        }
    }
    (answers, errors, max_latency)
}

fn stats_json(stats: &HttpStats) -> Json {
    let mut object = Map::new();
    object.insert("wire_requests", Json::Int(stats.wire_requests as i64));
    object.insert("retries", Json::Int(stats.retries as i64));
    object.insert("throttles", Json::Int(stats.throttles as i64));
    object.insert("failovers", Json::Int(stats.failovers as i64));
    object.insert("hedges", Json::Int(stats.hedges as i64));
    object.insert("hedge_wins", Json::Int(stats.hedge_wins as i64));
    object.insert("breaker_trips", Json::Int(stats.breaker_trips as i64));
    object.insert("deadline_sheds", Json::Int(stats.deadline_sheds as i64));
    Json::Object(object)
}

/// Parses `--trace-out PATH` from the example's arguments.
fn trace_out_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            return Some(std::path::PathBuf::from(
                args.next().expect("--trace-out takes a path"),
            ));
        }
    }
    None
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_out = trace_out_path();
    let sink = trace_out.is_some().then(|| TraceSink::new().install());

    let mut scenario_reports = Vec::new();
    let mut total_requests = 0u64;
    let mut total_errors = 0u64;
    let mut all_identical = true;
    let mut failover_latency_ms = 0u64;
    let mut total_hedges = 0u64;
    let mut total_hedge_wins = 0u64;
    let mut total_breaker_trips = 0u64;
    let mut total_failovers = 0u64;

    for scenario in SCENARIOS {
        // Baseline: the same prompts against a healthy pair. The loopback
        // default handler answers `echo:<hash of the prompt>`, so a fresh
        // server pair reproduces it bit for bit.
        let baseline_primary = LoopbackServer::start()?;
        let baseline_fallback = LoopbackServer::start()?;
        let baseline_llm = client_for(&baseline_primary, &baseline_fallback);
        let (baseline, baseline_errors, _) = run_prompts(&baseline_llm, scenario);
        assert_eq!(
            baseline_errors, 0,
            "{}: the no-fault baseline must be clean",
            scenario.name
        );

        // Faulted run: identical prompts, fault schedule on the primary.
        let primary = LoopbackServer::start()?;
        let fallback = LoopbackServer::start()?;
        for window in scenario.windows {
            primary.schedule_fault(FaultWindow {
                from_hit: window.from_hit,
                to_hit: window.to_hit,
                fault: window.fault.clone(),
            });
        }
        let llm = client_for(&primary, &fallback);
        let (answers, errors, max_latency) = run_prompts(&llm, scenario);
        let stats = llm.stats();
        let identical = answers == baseline;
        let max_latency_ms = max_latency.as_millis() as u64;

        eprintln!(
            "chaos_sweep: {}: {} requests, {} errors, identical={identical}, \
             max {}ms, failovers {}, hedges {}/{}, trips {}",
            scenario.name,
            scenario.requests,
            errors,
            max_latency_ms,
            stats.failovers,
            stats.hedge_wins,
            stats.hedges,
            stats.breaker_trips
        );

        let mut report = Map::new();
        report.insert("name", Json::Str(scenario.name.to_owned()));
        report.insert("requests", Json::Int(scenario.requests as i64));
        report.insert("errors", Json::Int(errors as i64));
        report.insert("bit_identical", Json::Bool(identical));
        report.insert("max_latency_ms", Json::Int(max_latency_ms as i64));
        report.insert("primary_hits", Json::Int(primary.hits() as i64));
        report.insert("fallback_hits", Json::Int(fallback.hits() as i64));
        report.insert("stats", stats_json(&stats));
        scenario_reports.push(Json::Object(report));

        total_requests += scenario.requests as u64;
        total_errors += errors;
        all_identical &= identical;
        total_hedges += stats.hedges;
        total_hedge_wins += stats.hedge_wins;
        total_breaker_trips += stats.breaker_trips;
        total_failovers += stats.failovers;

        // Per-scenario shape assertions (the gate re-checks the totals).
        assert!(
            max_latency <= LATENCY_CEILING,
            "{}: a request took {max_latency_ms}ms (ceiling {}ms)",
            scenario.name,
            LATENCY_CEILING.as_millis()
        );
        match scenario.name {
            "blackout" => {
                assert!(stats.failovers >= 1, "blackout must fail over");
                assert!(stats.breaker_trips >= 1, "blackout must trip the breaker");
                failover_latency_ms = max_latency_ms;
            }
            "storm_429" => {
                assert!(stats.throttles >= 1, "the 429 storm must be observed");
                assert_eq!(
                    stats.breaker_trips, 0,
                    "429s prove liveness and must not trip the breaker"
                );
            }
            "slow_loris" => {
                assert!(stats.hedges >= 1, "the dripped answer must trigger a hedge");
                assert!(stats.hedge_wins >= 1, "the hedge must win on the fallback");
            }
            "flapping" => {
                assert_eq!(
                    stats.breaker_trips, 0,
                    "alternating faults never run consecutively; the breaker must hold"
                );
                assert!(
                    primary.hits() >= scenario.requests,
                    "the flapping primary must stay in rotation (saw {} hits)",
                    primary.hits()
                );
            }
            _ => {}
        }
        if !scenario.settle.is_zero() {
            std::thread::sleep(scenario.settle);
        }
    }

    // Deadline pass: an already-expired deadline must be shed before a
    // single byte reaches either endpoint.
    let primary = LoopbackServer::start()?;
    let fallback = LoopbackServer::start()?;
    let llm = client_for(&primary, &fallback);
    let mut expired = CompletionRequest::from_prompt("chaos deadline probe");
    expired.options.deadline = Some(Instant::now());
    let shed = matches!(llm.complete(&expired), Err(LlmError::DeadlineExceeded));
    let shed_before_wire = shed && primary.hits() == 0 && fallback.hits() == 0;
    let deadline_stats = llm.stats();
    assert!(
        shed_before_wire,
        "an expired deadline must be shed without wire traffic \
         (shed={shed}, primary={}, fallback={})",
        primary.hits(),
        fallback.hits()
    );

    let mut deadline = Map::new();
    deadline.insert("shed_before_wire", Json::Bool(shed_before_wire));
    deadline.insert(
        "deadline_sheds",
        Json::Int(deadline_stats.deadline_sheds as i64),
    );

    let hedge_win_rate = if total_hedges == 0 {
        0.0
    } else {
        total_hedge_wins as f64 / total_hedges as f64
    };
    let mut totals = Map::new();
    totals.insert("requests", Json::Int(total_requests as i64));
    totals.insert("user_visible_errors", Json::Int(total_errors as i64));
    totals.insert("bit_identical", Json::Bool(all_identical));
    totals.insert("failover_latency_ms", Json::Int(failover_latency_ms as i64));
    totals.insert("failovers", Json::Int(total_failovers as i64));
    totals.insert("hedges", Json::Int(total_hedges as i64));
    totals.insert("hedge_wins", Json::Int(total_hedge_wins as i64));
    totals.insert("hedge_win_rate", Json::Float(hedge_win_rate));
    totals.insert("breaker_trips", Json::Int(total_breaker_trips as i64));

    let mut report = Map::new();
    report.insert("scenarios", Json::Array(scenario_reports));
    report.insert("deadline", Json::Object(deadline));
    report.insert("totals", Json::Object(totals));
    println!("CHAOS_SWEEP {}", Json::Object(report).to_compact_string());

    assert_eq!(total_errors, 0, "retryable faults must stay invisible");
    assert!(all_identical, "faulted runs must match the baseline bytes");

    if let (Some(path), Some(sink)) = (trace_out, sink) {
        // The sweep exercised failover, so the trace must show wire
        // attempts on both endpoint ordinals before it is worth keeping.
        let endpoint_seen = |ordinal: &str| {
            sink.events()
                .iter()
                .any(|e| e.name() == "wire_attempt" && e.arg("endpoint") == Some(ordinal))
        };
        assert!(
            endpoint_seen("0") && endpoint_seen("1"),
            "trace must carry wire_attempt spans on both endpoints"
        );
        sink.write_chrome_json(&path)?;
        eprintln!(
            "chaos_sweep: wrote {} trace events to {} (open in ui.perfetto.dev)",
            sink.len(),
            path.display()
        );
    }
    eprintln!("chaos_sweep: all assertions passed");
    Ok(())
}
