//! The paper's Listing 2 example: `define<Book[]>("List {{n}} classic books
//! on {{subject}}.")` — structured answers extracted straight into typed
//! Rust values, requested through the `Query` builder.
//!
//! Run with `cargo run --example books_typed`.

use askit::json::{Json, ToJson};
use askit::llm::{AnswerOutcome, FaultConfig, MockLlm, MockLlmConfig, Oracle};
use askit::{args, json_struct, Askit, ModelChoice};

json_struct! {
    /// A classic book (the paper's `type Book`).
    pub struct Book {
        title: String,
        author: String,
        year: i64,
    }
}

fn main() -> Result<(), askit::AskItError> {
    // Teach the oracle some bibliography — the mock's "pretraining".
    let mut oracle = Oracle::standard();
    oracle.add_answer_fn("books", |task| {
        if !task.template.contains("classic books") {
            return None;
        }
        let n = task.bindings.get("n")?.as_i64()? as usize;
        let shelf = [
            (
                "Structure and Interpretation of Computer Programs",
                "Abelson & Sussman",
                1985i64,
            ),
            ("The Art of Computer Programming", "Donald Knuth", 1968),
            ("The C Programming Language", "Kernighan & Ritchie", 1978),
            ("Introduction to Algorithms", "Cormen et al.", 1990),
            ("The Mythical Man-Month", "Fred Brooks", 1975),
        ];
        let books: Vec<Json> = shelf
            .iter()
            .take(n)
            .map(|(title, author, year)| {
                Book {
                    title: (*title).into(),
                    author: (*author).into(),
                    year: *year,
                }
                .to_json()
            })
            .collect();
        Some(AnswerOutcome::new(
            Json::Array(books),
            "Recalling the canonical texts.",
        ))
    });

    let llm = MockLlm::new(
        MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
        oracle,
    );
    let askit = Askit::new(llm);

    // The type parameter `Vec<Book>` prints into the prompt as
    // `{ title: string, author: string, year: number }[]` — Listing 2 line 7.
    println!(
        "prompt answer type: {}\n",
        <Vec<Book> as askit::AskType>::askit_type().to_typescript()
    );

    // The request is a first-class value: arguments, model routing, and a
    // retry budget all ride on the typed query.
    let query = askit
        .query::<Vec<Book>>("List {{n}} classic books on {{subject}}.")
        .args(args! { n: 3, subject: "computer science" })
        .model(ModelChoice::Gpt4)
        .retries(5)
        .build()?;
    let books: Vec<Book> = query.run()?;
    for book in &books {
        println!("{} — {} ({})", book.title, book.author, book.year);
    }
    Ok(())
}
