//! # askit
//!
//! Facade crate for the AskIt workspace — a Rust reproduction of
//! *"AskIt: Unified Programming Interface for Programming with Large
//! Language Models"* (Okuda & Amarasinghe, CGO 2024).
//!
//! Everything re-exported here is documented in its home crate:
//!
//! * [`core`](askit_core) — the `ask`/`define` DSL (the paper's
//!   contribution) and the typed [`Query`] builder with per-call model
//!   routing, retry budgets, and cache policies;
//! * [`exec`](askit_exec) — the execution engine: worker pool, batched
//!   submission, sharded completion cache;
//! * [`types`](askit_types) — the type language driving prompts + validation;
//! * [`template`](askit_template) — `{{var}}` prompt templates;
//! * [`json`](askit_json) — the JSON substrate;
//! * [`llm`](askit_llm) — the simulated language model;
//! * [`minilang`] — the language generated code is written in;
//! * [`obs`](askit_obs) — request tracing, the metrics registry, leveled
//!   logging;
//! * [`datasets`](askit_datasets) — the paper's workloads.
//!
//! # Example
//!
//! ```
//! use askit::{args, Askit};
//! use askit::llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};
//!
//! let llm = MockLlm::new(
//!     MockLlmConfig::gpt4().with_faults(FaultConfig::none()),
//!     Oracle::standard(),
//! );
//! let askit = Askit::new(llm);
//! let n: i64 = askit.ask_as("What is {{x}} times {{y}}?", args! { x: 6, y: 7 })?;
//! assert_eq!(n, 42);
//! # Ok::<(), askit::AskItError>(())
//! ```

#![forbid(unsafe_code)]

pub use askit_core::{
    args, example, json_enum, json_struct, AskItError, AskType, Askit, AskitConfig, CachePolicy,
    CompiledFunction, DirectOutcome, Example, FunctionRegistry, FunctionStore, GeneratedFunction,
    ModelChoice, Query, QueryBuilder, QueryOptions, ServableFunction, ServedCompiled, ServedTask,
    TaskFunction,
};

/// The JSON substrate.
pub mod json {
    pub use askit_json::*;
}

/// The AskIt type language.
pub mod types {
    pub use askit_types::*;
}

/// Prompt templates.
pub mod template {
    pub use askit_template::*;
}

/// The execution engine: worker pool, batching, completion cache.
pub mod exec {
    pub use askit_exec::*;
}

/// The language-model substrate.
pub mod llm {
    pub use askit_llm::*;
}

/// The OpenAI-compatible network backend (behind the `http` feature):
/// [`HttpLlm`](askit_llm_http::HttpLlm) implements
/// [`LanguageModel`](askit_llm::LanguageModel) over hand-rolled HTTP/1.1
/// with keep-alive pooling, retry/backoff, per-model rate limiting, and
/// in-flight coalescing, plus the
/// [`LoopbackServer`](askit_llm_http::LoopbackServer) test fixture.
#[cfg(feature = "http")]
pub mod http {
    pub use askit_llm_http::*;
}

/// The HTTP/SSE serving front-end (behind the `serve` feature):
/// [`Server`](askit_serve::Server) exposes the functions in a
/// [`FunctionRegistry`] as typed `POST /call/{name}` routes with
/// server-side request coalescing, a bounded connection budget
/// (`503` + `Retry-After`), SSE progress streams, and `/stats` over the
/// engine's cache and scheduler.
#[cfg(feature = "serve")]
pub mod serve {
    pub use askit_serve::*;
}

/// The observability layer: request-scoped tracing with a
/// Chrome-trace-event exporter ([`TraceSink`](askit_obs::TraceSink)), the
/// process-wide metrics registry rendered at `GET /metrics`, and the
/// `ASKIT_LOG`-filtered leveled logger.
pub mod obs {
    pub use askit_obs::*;
}

/// The paper's workloads.
pub mod datasets {
    pub use askit_datasets::*;
}

pub use minilang;
pub use minilang::Syntax;
