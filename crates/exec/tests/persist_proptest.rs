//! Property tests (via the proptest shim) for the snapshot/WAL codec:
//! arbitrary entries survive serialize → corrupt-tail → load with only the
//! torn tail dropped, and TTL expiry is honored across a reload.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use askit_exec::{CompletionCache, SHARD_COUNT};
use askit_llm::{
    ChatMessage, Completion, CompletionRequest, ModelChoice, RequestOptions, TokenUsage,
};
use proptest::prelude::*;

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "askit-pcodec-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One generated cache entry: an arbitrary multi-turn conversation, routed
/// model, sample ordinal, and completion payload.
#[derive(Debug, Clone)]
struct ArbEntry {
    request: CompletionRequest,
    sample: u64,
    text: String,
}

fn arb_entry() -> impl Strategy<Value = ArbEntry> {
    (
        (
            prop::collection::vec("[a-zA-Z0-9 .,{}\"\n\t]{0,60}", 1..4),
            prop::sample::select(&[ModelChoice::Default, ModelChoice::Gpt35, ModelChoice::Gpt4]),
        ),
        (prop::sample::select(&[0.0f64, 0.7, 1.0]), 0u64..3),
        "[ -~]{0,80}",
    )
        .prop_map(|((turns, model), (temperature, sample), text)| {
            let mut messages = Vec::new();
            for (i, turn) in turns.into_iter().enumerate() {
                if i % 2 == 0 {
                    messages.push(ChatMessage::user(turn));
                } else {
                    messages.push(ChatMessage::assistant(turn));
                }
            }
            ArbEntry {
                request: CompletionRequest {
                    messages,
                    temperature,
                    options: RequestOptions::for_model(model),
                },
                sample,
                text,
            }
        })
}

fn completion(text: &str, latency_ms: u64) -> Completion {
    Completion {
        text: text.to_owned(),
        usage: TokenUsage {
            prompt_tokens: text.len(),
            completion_tokens: latency_ms as usize,
        },
        latency: Duration::from_millis(latency_ms),
    }
}

/// Deduplicates generated entries by cache key (later entries win, matching
/// put semantics) and returns them in insertion order.
fn dedupe(entries: Vec<ArbEntry>) -> Vec<ArbEntry> {
    let mut last: HashMap<u64, usize> = HashMap::new();
    for (i, entry) in entries.iter().enumerate() {
        last.insert(entry.request.fingerprint(entry.sample), i);
    }
    entries
        .into_iter()
        .enumerate()
        .filter(|(i, entry)| last[&entry.request.fingerprint(entry.sample)] == *i)
        .map(|(_, entry)| entry)
        .collect()
}

proptest! {
    // Each case does real file I/O; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary entries round-trip through persist → reload bit-exactly.
    #[test]
    fn entries_round_trip_through_disk(raw in prop::collection::vec(arb_entry(), 1..20)) {
        let entries = dedupe(raw);
        let dir = fresh_dir("roundtrip");
        let cache = CompletionCache::open(4096, &dir, None).unwrap();
        for (i, entry) in entries.iter().enumerate() {
            cache.put(&entry.request, entry.sample, completion(&entry.text, i as u64 + 1));
        }
        cache.persist().unwrap();
        std::mem::forget(cache); // simulate kill -9 after the flush

        let warm = CompletionCache::open(4096, &dir, None).unwrap();
        prop_assert_eq!(warm.stats().loaded as usize, entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let hit = warm.get(&entry.request, entry.sample);
            prop_assert!(hit.is_some(), "entry {i} lost in the round trip");
            let hit = hit.unwrap();
            prop_assert_eq!(&hit.text, &entry.text);
            prop_assert_eq!(hit.latency, Duration::from_millis(i as u64 + 1));
            prop_assert_eq!(hit.usage.prompt_tokens, entry.text.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tearing 1–7 bytes off a WAL costs exactly that shard's most recent
    /// record — everything before the tear survives bit-exactly.
    #[test]
    fn corrupt_tail_drops_only_the_torn_records(
        raw in prop::collection::vec(arb_entry(), 2..20),
        tear in 1u64..8,
    ) {
        let entries = dedupe(raw);
        let dir = fresh_dir("tail");
        let cache = CompletionCache::open(4096, &dir, None).unwrap();
        for (i, entry) in entries.iter().enumerate() {
            cache.put(&entry.request, entry.sample, completion(&entry.text, i as u64 + 1));
        }
        cache.persist().unwrap();
        std::mem::forget(cache);

        // The expected casualty of each shard: its last-put entry (puts are
        // the only records here — nothing was touched or invalidated).
        let mut last_per_shard: HashMap<usize, u64> = HashMap::new();
        for entry in &entries {
            let key = entry.request.fingerprint(entry.sample);
            last_per_shard.insert((key as usize) % SHARD_COUNT, key);
        }
        let torn: Vec<u64> = (0..SHARD_COUNT)
            .filter_map(|index| {
                let path = dir.join(format!("shard-{index:02}.wal"));
                let len = std::fs::metadata(&path).ok()?.len();
                if len <= 6 {
                    return None;
                }
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .unwrap()
                    .set_len(len - tear)
                    .unwrap();
                Some(last_per_shard[&index])
            })
            .collect();
        prop_assert!(!torn.is_empty());

        let warm = CompletionCache::open(4096, &dir, None).unwrap();
        prop_assert_eq!(warm.stats().loaded as usize, entries.len() - torn.len());
        for entry in &entries {
            let key = entry.request.fingerprint(entry.sample);
            match warm.get(&entry.request, entry.sample) {
                Some(hit) => {
                    prop_assert!(!torn.contains(&key), "a torn record was served");
                    prop_assert_eq!(&hit.text, &entry.text);
                }
                None => prop_assert!(
                    torn.contains(&key),
                    "an entry before the tear was dropped"
                ),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping an arbitrary byte anywhere in a shard file never panics the
    /// loader and never produces a wrong completion: every lookup either
    /// misses or serves the exact original text.
    #[test]
    fn random_corruption_never_serves_garbage(
        raw in prop::collection::vec(arb_entry(), 2..16),
        victim_pick in any::<u32>(),
        offset_pick in any::<u32>(),
        flip in 1u8..255,
    ) {
        let entries = dedupe(raw);
        let dir = fresh_dir("flip");
        let cache = CompletionCache::open(4096, &dir, None).unwrap();
        for (i, entry) in entries.iter().enumerate() {
            cache.put(&entry.request, entry.sample, completion(&entry.text, i as u64 + 1));
        }
        cache.persist().unwrap();
        std::mem::forget(cache);

        let files: Vec<PathBuf> = (0..SHARD_COUNT)
            .map(|index| dir.join(format!("shard-{index:02}.wal")))
            .filter(|path| std::fs::metadata(path).map(|m| m.len() > 6).unwrap_or(false))
            .collect();
        prop_assert!(!files.is_empty());
        let victim = &files[victim_pick as usize % files.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        let offset = offset_pick as usize % bytes.len();
        bytes[offset] ^= flip;
        std::fs::write(victim, &bytes).unwrap();

        let warm = CompletionCache::open(4096, &dir, None).unwrap();
        for entry in &entries {
            if let Some(hit) = warm.get(&entry.request, entry.sample) {
                prop_assert_eq!(&hit.text, &entry.text, "served text must be exact");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// TTL expiry is honored across a reload: short-lived entries are
    /// filtered out at load (and counted), unlimited ones survive.
    #[test]
    fn ttl_expiry_is_honored_across_reload(raw in prop::collection::vec(arb_entry(), 2..12)) {
        let entries = dedupe(raw);
        let dir = fresh_dir("ttl");
        let cache = CompletionCache::open(4096, &dir, None).unwrap();
        let mut perishable = 0u64;
        for (i, entry) in entries.iter().enumerate() {
            let mut request = entry.request.clone();
            if i % 2 == 0 {
                request.options.ttl = Some(Duration::from_millis(1));
                perishable += 1;
            }
            cache.put(&request, entry.sample, completion(&entry.text, 1));
        }
        cache.persist().unwrap();
        std::mem::forget(cache);

        std::thread::sleep(Duration::from_millis(10));
        let warm = CompletionCache::open(4096, &dir, None).unwrap();
        let stats = warm.stats();
        prop_assert_eq!(stats.expired, perishable);
        prop_assert_eq!(stats.loaded, entries.len() as u64 - perishable);
        for (i, entry) in entries.iter().enumerate() {
            let hit = warm.get(&entry.request, entry.sample);
            if i % 2 == 0 {
                prop_assert!(hit.is_none(), "a lapsed entry was served");
            } else {
                prop_assert!(hit.is_some(), "an unlimited entry was dropped");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
