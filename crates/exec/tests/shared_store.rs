//! Cross-process shared-cache behaviour, exercised in-process: advisory
//! file locks are held per open file description, so two `CompletionCache`
//! instances on one directory interleave exactly like two processes would.
//!
//! Covers: merge-on-persist (unions survive, last-writer does not win),
//! content dedupe through the object store, invalidations staying dead
//! across merges, warm-start hit behaviour, and the snapshot-tempfile race
//! regression in the *non*-shared layout.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use askit_exec::{CompletionCache, Engine, EngineConfig};
use askit_llm::{Completion, CompletionRequest, LanguageModel, MockLlm, TokenUsage};

/// A fresh, unique directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "askit-shared-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(prompt: &str) -> CompletionRequest {
    CompletionRequest::from_prompt(prompt)
}

fn completion(text: &str) -> Completion {
    Completion {
        text: text.to_owned(),
        usage: TokenUsage {
            prompt_tokens: 3,
            completion_tokens: 7,
        },
        latency: Duration::from_millis(250),
    }
}

/// Every object file currently in the store (recursive).
fn object_count(dir: &std::path::Path) -> usize {
    fn walk(dir: &std::path::Path, count: &mut usize) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, count);
            } else if path.extension().is_some_and(|e| e == "obj") {
                *count += 1;
            }
        }
    }
    let mut count = 0;
    walk(&dir.join("objects"), &mut count);
    count
}

#[test]
fn shared_roundtrip_warm_starts_a_fresh_instance() {
    let dir = fresh_dir("roundtrip");
    let reqs: Vec<CompletionRequest> = (0..30).map(|i| request(&format!("prompt {i}"))).collect();

    let cache = CompletionCache::open_shared(1024, &dir, None).unwrap();
    assert!(cache.is_shared());
    for (i, req) in reqs.iter().enumerate() {
        cache.put(req, 0, completion(&format!("answer {i}")));
    }
    assert!(cache.remove(&reqs[4], 0), "reject one completion");
    cache.persist().unwrap();

    let warm = CompletionCache::open_shared(1024, &dir, None).unwrap();
    assert_eq!(warm.stats().loaded, 29, "all entries but the rejected one");
    for (i, req) in reqs.iter().enumerate() {
        match warm.get(req, 0) {
            Some(hit) => {
                assert_ne!(i, 4, "the rejected completion must not resurrect");
                assert_eq!(hit.text, format!("answer {i}"));
                assert_eq!(hit.latency, Duration::from_millis(250));
            }
            None => assert_eq!(i, 4),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_instances_union_instead_of_overwriting() {
    let dir = fresh_dir("union");
    // Both instances are open at once — under the old single-process
    // layout, whichever flushed last would wipe the other's entries.
    let a = CompletionCache::open_shared(1024, &dir, None).unwrap();
    let b = CompletionCache::open_shared(1024, &dir, None).unwrap();
    for i in 0..10 {
        a.put(&request(&format!("from-a {i}")), 0, completion("a"));
        b.put(&request(&format!("from-b {i}")), 0, completion("b"));
    }
    a.persist().unwrap();
    b.persist().unwrap();
    drop(a);
    drop(b);

    let merged = CompletionCache::open_shared(1024, &dir, None).unwrap();
    assert_eq!(merged.stats().loaded, 20, "both processes' entries survive");
    for i in 0..10 {
        assert_eq!(
            merged
                .get(&request(&format!("from-a {i}")), 0)
                .unwrap()
                .text,
            "a"
        );
        assert_eq!(
            merged
                .get(&request(&format!("from-b {i}")), 0)
                .unwrap()
                .text,
            "b"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_completions_dedupe_to_one_object() {
    let dir = fresh_dir("dedupe");
    let a = CompletionCache::open_shared(1024, &dir, None).unwrap();
    let b = CompletionCache::open_shared(1024, &dir, None).unwrap();
    // Two workers derive the same completion for the same request — the
    // deterministic-backend case the eval sweep exercises at scale.
    let req = request("the shared prompt");
    a.put(&req, 0, completion("the shared answer"));
    b.put(&req, 0, completion("the shared answer"));
    a.persist().unwrap();
    b.persist().unwrap();
    assert_eq!(
        object_count(&dir),
        1,
        "equal content must collapse to one write-once object"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalidations_survive_merges_from_other_instances() {
    let dir = fresh_dir("invalidate");
    let req = request("eventually rejected");

    let a = CompletionCache::open_shared(1024, &dir, None).unwrap();
    a.put(&req, 0, completion("bad answer"));
    a.persist().unwrap();

    // A second instance warm-starts, rejects the completion, and flushes.
    let b = CompletionCache::open_shared(1024, &dir, None).unwrap();
    assert!(b.get(&req, 0).is_some());
    assert!(b.remove(&req, 0));
    b.persist().unwrap();

    // The first instance still holds the entry in memory; its later
    // recency-only flush must not resurrect the rejected completion in the
    // merged index (a touch of a deleted record is a no-op).
    assert!(a.get(&req, 0).is_some(), "a's private view is untouched");
    a.persist().unwrap();

    let fresh = CompletionCache::open_shared(1024, &dir, None).unwrap();
    assert!(
        fresh.get(&req, 0).is_none(),
        "the rejected completion must stay dead after every merge"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejections_are_session_scoped_but_removals_are_permanent() {
    let dir = fresh_dir("reject");
    let req = request("fails validation");

    let cache = CompletionCache::open_shared(64, &dir, None).unwrap();
    cache.put(&req, 0, completion("bad but real"));
    // Rejection: this session must re-ask on the next lookup…
    assert!(cache.reject(&req, 0));
    assert!(
        cache.get(&req, 0).is_none(),
        "rejected entries miss in-session"
    );
    assert_eq!(cache.stats().invalidations, 1);
    cache.persist().unwrap();

    // …but the body persists: a warm start replays the conversation
    // without a model call (validation re-fails deterministically and the
    // cached retry turns follow).
    let warm = CompletionCache::open_shared(64, &dir, None).unwrap();
    assert_eq!(
        warm.get(&req, 0).unwrap().text,
        "bad but real",
        "rejection is session advice, not cache identity"
    );
    // A hard remove, by contrast, stays dead everywhere.
    assert!(warm.remove(&req, 0));
    warm.persist().unwrap();
    let fresh = CompletionCache::open_shared(64, &dir, None).unwrap();
    assert!(fresh.get(&req, 0).is_none(), "removals are permanent");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_persist_stress_keeps_the_directory_consistent() {
    let dir = fresh_dir("stress");
    // Four instances, overlapping key ranges, interleaved persists — the
    // in-process equivalent of a small worker fleet on one cache dir.
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let dir = dir.clone();
            scope.spawn(move || {
                let cache = CompletionCache::open_shared(4096, &dir, None).unwrap();
                for round in 0..5 {
                    for i in 0..20 {
                        // Half the keys are shared across every instance,
                        // half are private to this one.
                        let req = if i % 2 == 0 {
                            request(&format!("common {i}"))
                        } else {
                            request(&format!("private {t} {i}"))
                        };
                        if cache.get(&req, 0).is_none() {
                            cache.put(&req, 0, completion(&format!("answer {i}")));
                        }
                    }
                    cache
                        .persist()
                        .unwrap_or_else(|e| panic!("round {round}: {e}"));
                }
            });
        }
    });
    let merged = CompletionCache::open_shared(4096, &dir, None).unwrap();
    let stats = merged.stats();
    // 10 common keys + 4 × 10 private keys, every body loadable.
    assert_eq!(stats.loaded, 50, "union of all instances: {stats}");
    for i in (0..20).step_by(2) {
        assert_eq!(
            merged
                .get(&request(&format!("common {i}")), 0)
                .unwrap()
                .text,
            format!("answer {i}")
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engines_share_a_cache_dir_through_the_config_knob() {
    let dir = fresh_dir("engine");
    let config = || {
        EngineConfig::default()
            .with_workers(2)
            .with_cache_dir(&dir)
            .with_shared_cache(true)
    };
    // First engine populates; both engines are alive at once.
    let first = Engine::with_config(MockLlm::gpt4(), config());
    let second = Engine::with_config(MockLlm::gpt4(), config());
    let req = request("Hello there!");
    let answer = first.complete(&req).unwrap();
    first.persist().unwrap();
    drop(first);

    // The second engine opened before the flush, so it misses in memory —
    // but a third engine warm-starts from the merged directory.
    drop(second);
    let third = Engine::with_config(MockLlm::gpt4(), config());
    assert_eq!(third.complete(&req).unwrap(), answer);
    assert_eq!(
        third.model().calls(),
        0,
        "warm start serves from the shared store without a model call"
    );
    assert_eq!(third.cache_stats().hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_tempfile_race_regression() {
    // Regression: `write_snapshot` used one *fixed* temporary name per
    // shard, so two caches compacting the same directory could truncate
    // each other's in-flight temporary and rename garbage (or fail the
    // rename) — the drop-time-flush race. Unique tempfile names make every
    // compaction land whole. This drives the non-shared layout, where the
    // bug lived.
    let dir = fresh_dir("tmp-race");
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let dir = dir.clone();
            scope.spawn(move || {
                let cache = CompletionCache::open(256, &dir, None).unwrap();
                let reqs: Vec<CompletionRequest> =
                    (0..96).map(|i| request(&format!("prompt {i}"))).collect();
                for req in &reqs {
                    cache.put(req, 0, completion("answer"));
                }
                // Touch-heavy persist cycles force WAL growth past the
                // compaction threshold, so snapshot rewrites happen under
                // contention.
                for round in 0..12 {
                    for req in &reqs {
                        let _ = cache.get(req, 0);
                    }
                    cache
                        .persist()
                        .unwrap_or_else(|e| panic!("persist round {round} failed: {e}"));
                }
            });
        }
    });
    // Whatever interleaving happened, the directory must load cleanly and
    // no temporary may be left behind.
    let reloaded = CompletionCache::open(256, &dir, None).unwrap();
    assert!(reloaded.stats().loaded > 0, "snapshots stayed readable");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "leaked temporaries: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
