//! Durability tests for the persistent completion cache: kill-after-persist
//! replay, flush-on-drop, torn WAL tails, corrupt shard files, TTL expiry
//! across reloads, and warm-starting a whole engine from disk.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use askit_exec::{CompletionCache, Engine, EngineConfig, SHARD_COUNT};
use askit_llm::{Completion, CompletionRequest, LanguageModel, MockLlm, TokenUsage};

/// A fresh, unique directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "askit-persist-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(prompt: &str) -> CompletionRequest {
    CompletionRequest::from_prompt(prompt)
}

fn completion(text: &str) -> Completion {
    Completion {
        text: text.to_owned(),
        usage: TokenUsage {
            prompt_tokens: 3,
            completion_tokens: 7,
        },
        latency: Duration::from_millis(1234),
    }
}

/// Simulates `kill -9` right after a flush: the cache is leaked (its `Drop`
/// never runs) so only what `persist()` already wrote reaches the next
/// process.
fn kill_process(cache: CompletionCache) {
    std::mem::forget(cache);
}

#[test]
fn kill_after_persist_replays_to_an_identical_cache() {
    let dir = fresh_dir("replay");
    let reqs: Vec<CompletionRequest> = (0..40).map(|i| request(&format!("prompt {i}"))).collect();

    let cache = CompletionCache::open(1024, &dir, None).unwrap();
    for (i, req) in reqs.iter().enumerate() {
        cache.put(req, 0, completion(&format!("answer {i}")));
    }
    // Touch a few (recency records), reject one (invalidation record).
    assert!(cache.get(&reqs[3], 0).is_some());
    assert!(cache.get(&reqs[5], 0).is_some());
    assert!(cache.remove(&reqs[7], 0));
    let flushed = cache.persist().unwrap();
    assert!(
        flushed >= 40,
        "all puts plus bookkeeping flushed: {flushed}"
    );
    kill_process(cache);

    let warm = CompletionCache::open(1024, &dir, None).unwrap();
    let stats = warm.stats();
    assert_eq!(stats.loaded, 39, "all entries but the rejected one");
    assert_eq!((stats.hits, stats.misses), (0, 0), "load counts no lookups");
    // The exact hit/miss sequence of a replayed workload: every surviving
    // conversation hits with its original completion (latency included),
    // the rejected one misses.
    for (i, req) in reqs.iter().enumerate() {
        match warm.get(req, 0) {
            Some(hit) => {
                assert_ne!(i, 7, "the rejected completion must not resurrect");
                assert_eq!(hit.text, format!("answer {i}"));
                assert_eq!(hit.latency, Duration::from_millis(1234));
                assert_eq!(hit.usage.total(), 10);
            }
            None => assert_eq!(i, 7, "only the rejected entry may miss"),
        }
    }
    let stats = warm.stats();
    assert_eq!((stats.hits, stats.misses), (39, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_order_survives_a_reload() {
    let dir = fresh_dir("lru");
    // Find three requests colocated in one shard so capacity 2-per-shard
    // forces an eviction decision after the reload.
    let mut colocated: Vec<CompletionRequest> = Vec::new();
    let mut target = None;
    for i in 0..10_000 {
        let req = request(&format!("colocated {i}"));
        let shard = (req.fingerprint(0) as usize) % SHARD_COUNT;
        match target {
            None => {
                target = Some(shard);
                colocated.push(req);
            }
            Some(t) if shard == t => colocated.push(req),
            _ => {}
        }
        if colocated.len() == 3 {
            break;
        }
    }
    let [a, b, c]: [CompletionRequest; 3] = colocated.try_into().unwrap();

    let cache = CompletionCache::open(SHARD_COUNT * 2, &dir, None).unwrap();
    cache.put(&a, 0, completion("a"));
    cache.put(&b, 0, completion("b"));
    // Touch `a`, making `b` the LRU entry — the reload must remember that.
    assert!(cache.get(&a, 0).is_some());
    cache.persist().unwrap();
    kill_process(cache);

    let warm = CompletionCache::open(SHARD_COUNT * 2, &dir, None).unwrap();
    warm.put(&c, 0, completion("c"));
    assert!(
        warm.get(&b, 0).is_none(),
        "b was least recently used before the restart"
    );
    assert!(warm.get(&a, 0).is_some());
    assert!(warm.get(&c, 0).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_flushes_without_an_explicit_persist() {
    let dir = fresh_dir("drop");
    {
        let cache = CompletionCache::open(64, &dir, None).unwrap();
        cache.put(&request("q"), 0, completion("kept"));
        // No persist(): the destructor must flush.
    }
    let warm = CompletionCache::open(64, &dir, None).unwrap();
    assert_eq!(warm.stats().loaded, 1);
    assert_eq!(warm.get(&request("q"), 0).unwrap().text, "kept");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unflushed_writes_die_with_the_process() {
    let dir = fresh_dir("unflushed");
    let cache = CompletionCache::open(64, &dir, None).unwrap();
    cache.put(&request("early"), 0, completion("durable"));
    cache.persist().unwrap();
    cache.put(&request("late"), 0, completion("lost"));
    kill_process(cache); // killed before the second flush

    let warm = CompletionCache::open(64, &dir, None).unwrap();
    assert_eq!(warm.stats().loaded, 1);
    assert!(warm.get(&request("early"), 0).is_some());
    assert!(
        warm.get(&request("late"), 0).is_none(),
        "durability is batched: unflushed writes are gone"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_does_not_resurrect_on_reload() {
    let dir = fresh_dir("evict");
    // One slot per shard: the second colocated put evicts the first.
    let mut first = None;
    let mut second = None;
    for i in 0..10_000 {
        let req = request(&format!("evictable {i}"));
        let shard = (req.fingerprint(0) as usize) % SHARD_COUNT;
        match &first {
            None => {
                first = Some((shard, req));
            }
            Some((t, _)) if shard == *t && second.is_none() => {
                second = Some(req);
                break;
            }
            _ => {}
        }
    }
    let (_, a) = first.unwrap();
    let b = second.unwrap();

    let cache = CompletionCache::open(SHARD_COUNT, &dir, None).unwrap();
    cache.put(&a, 0, completion("a"));
    cache.put(&b, 0, completion("b")); // evicts a
    assert_eq!(cache.stats().evictions, 1);
    cache.persist().unwrap();
    kill_process(cache);

    // Reopen with room to spare: the evicted entry must still be gone,
    // because the eviction was logged as an invalidation record.
    let warm = CompletionCache::open(SHARD_COUNT * 8, &dir, None).unwrap();
    assert!(warm.get(&a, 0).is_none(), "evicted entries stay evicted");
    assert!(warm.get(&b, 0).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ttl_expiry_is_honored_across_a_reload() {
    let dir = fresh_dir("ttl");
    let cache = CompletionCache::open(64, &dir, Some(Duration::from_millis(40))).unwrap();
    let mut long_lived = request("long");
    long_lived.options.ttl = Some(Duration::from_secs(3600));
    cache.put(&request("short"), 0, completion("perishable"));
    cache.put(&long_lived, 0, completion("stays"));
    cache.persist().unwrap();
    kill_process(cache);

    std::thread::sleep(Duration::from_millis(60));
    let warm = CompletionCache::open(64, &dir, Some(Duration::from_millis(40))).unwrap();
    let stats = warm.stats();
    assert_eq!(stats.loaded, 1, "the lapsed entry is filtered at load");
    assert_eq!(stats.expired, 1);
    assert!(warm.get(&request("short"), 0).is_none());
    assert_eq!(
        warm.get(&long_lived, 0).unwrap().text,
        "stays",
        "the per-request TTL kept this one alive"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_dropped_and_the_log_stays_appendable() {
    let dir = fresh_dir("torn");
    let reqs: Vec<CompletionRequest> = (0..12).map(|i| request(&format!("torn {i}"))).collect();
    let cache = CompletionCache::open(1024, &dir, None).unwrap();
    for (i, req) in reqs.iter().enumerate() {
        cache.put(req, 0, completion(&format!("v{i}")));
    }
    cache.persist().unwrap();
    kill_process(cache);

    // Tear the tail off every WAL file — as if the machine died mid-append.
    // Each non-empty shard loses exactly its most recent record.
    let mut torn_shards = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "wal") {
            let len = std::fs::metadata(&path).unwrap().len();
            if len > 6 {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .unwrap()
                    .set_len(len - 3)
                    .unwrap();
                torn_shards += 1;
            }
        }
    }
    assert!(torn_shards > 0, "some shard held records");

    let warm = CompletionCache::open(1024, &dir, None).unwrap();
    let loaded = warm.stats().loaded;
    assert_eq!(
        loaded as usize,
        reqs.len() - torn_shards,
        "each torn shard loses exactly its final record"
    );
    // Survivors serve their exact completions.
    let mut served = 0;
    for (i, req) in reqs.iter().enumerate() {
        if let Some(hit) = warm.get(req, 0) {
            assert_eq!(hit.text, format!("v{i}"));
            served += 1;
        }
    }
    assert_eq!(served, loaded);

    // The loader truncated the torn tails, so new appends stay readable.
    warm.put(&request("after the tear"), 0, completion("fresh"));
    warm.persist().unwrap();
    kill_process(warm);
    let again = CompletionCache::open(1024, &dir, None).unwrap();
    assert_eq!(again.stats().loaded, loaded + 1);
    assert_eq!(
        again.get(&request("after the tear"), 0).unwrap().text,
        "fresh"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// FNV-1a, mirroring the record checksum, so the test can forge a frame
/// that checksums correctly but does not decode.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn checksummed_but_undecodable_record_is_truncated_away() {
    let dir = fresh_dir("poison");
    std::fs::create_dir_all(&dir).unwrap();
    // A WAL whose single record carries a valid checksum over an unknown op
    // tag — e.g. written by a newer format that forgot to bump the version.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ACWL");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    let body = [0xEEu8, 1, 2, 3];
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&body);
    bytes.extend_from_slice(&fnv64(&body).to_le_bytes());
    std::fs::write(dir.join("shard-00.wal"), &bytes).unwrap();

    let cache = CompletionCache::open(64, &dir, None).unwrap();
    assert_eq!(cache.stats().loaded, 0, "the poison record is not served");
    // The open must have truncated the poison frame away: a record
    // appended to that same shard afterwards would otherwise sit behind it
    // and be silently ignored by every future load.
    let req = (0..)
        .map(|i| request(&format!("poison probe {i}")))
        .find(|r| (r.fingerprint(0) as usize).is_multiple_of(SHARD_COUNT))
        .unwrap();
    cache.put(&req, 0, completion("revived"));
    cache.persist().unwrap();
    kill_process(cache);

    let warm = CompletionCache::open(64, &dir, None).unwrap();
    assert_eq!(warm.stats().loaded, 1);
    assert_eq!(
        warm.get(&req, 0).unwrap().text,
        "revived",
        "appends after the truncation replay on the next load"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_shard_files_are_discarded_not_a_panic() {
    let dir = fresh_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    // Garbage with a foreign header — and one file that is pure noise.
    std::fs::write(dir.join("shard-00.snap"), b"NOPE\x01\x00garbagegarbage").unwrap();
    std::fs::write(dir.join("shard-01.wal"), vec![0xAB; 512]).unwrap();
    std::fs::write(dir.join("shard-02.snap"), b"").unwrap();

    let cache = CompletionCache::open(64, &dir, None).unwrap();
    assert_eq!(cache.stats().loaded, 0, "bad files load as empty shards");
    // The cache is fully usable afterwards.
    cache.put(&request("q"), 0, completion("works"));
    cache.persist().unwrap();
    kill_process(cache);
    let warm = CompletionCache::open(64, &dir, None).unwrap();
    assert_eq!(warm.get(&request("q"), 0).unwrap().text, "works");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_folds_the_wal_into_a_snapshot() {
    let dir = fresh_dir("compact");
    let req = request("hot entry");
    let cache = CompletionCache::open(64, &dir, None).unwrap();
    cache.put(&req, 0, completion("v"));
    // Hammer hits across many flushes. Each flush dedupes the buffer to one
    // touch record, so after >64 flushes the one-entry shard crosses the
    // compaction threshold (WAL records > max(64, 2 × entries)) and folds
    // its log into a snapshot.
    for _ in 0..70 {
        assert!(cache.get(&req, 0).is_some());
        cache.persist().unwrap();
    }
    kill_process(cache);

    // The snapshot now carries the entry, and the WAL was truncated at
    // compaction (only the handful of post-compaction touches remain).
    let snapshots_with_data = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            let path = e.as_ref().unwrap().path();
            path.extension().is_some_and(|x| x == "snap")
                && std::fs::metadata(&path).unwrap().len() > 6
        })
        .count();
    assert_eq!(snapshots_with_data, 1, "the hot shard was compacted");
    let biggest_wal = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().is_some_and(|x| x == "wal"))
                .then(|| std::fs::metadata(&path).unwrap().len())
        })
        .max()
        .unwrap_or(0);
    assert!(
        biggest_wal < 200,
        "the log was truncated at compaction (len {biggest_wal})"
    );
    let warm = CompletionCache::open(64, &dir, None).unwrap();
    assert_eq!(warm.stats().loaded, 1);
    assert_eq!(warm.get(&req, 0).unwrap().text, "v");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_warm_starts_from_disk_without_model_calls() {
    let dir = fresh_dir("engine");
    let req = request("Hello there!");
    {
        let engine = Engine::with_config(
            MockLlm::gpt4(),
            EngineConfig::default().with_cache_dir(&dir),
        );
        let _ = engine.complete(&req).unwrap();
        assert_eq!(engine.model().calls(), 1);
        assert!(engine.persist().unwrap() > 0);
    }
    let warm = Engine::with_config(
        MockLlm::gpt4(),
        EngineConfig::default().with_cache_dir(&dir),
    );
    assert!(warm.cache_stats().loaded >= 1);
    let served = warm.complete(&req).unwrap();
    assert_eq!(
        warm.model().calls(),
        0,
        "the warm start serves cached conversations with zero re-queries"
    );
    assert!(!served.text.is_empty());
    assert_eq!(warm.cache_stats().hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejections_are_session_advice_not_cache_identity() {
    let dir = fresh_dir("reject");
    let req = request("Hello there!");
    {
        let engine = Engine::with_config(
            MockLlm::gpt4(),
            EngineConfig::default().with_cache_dir(&dir),
        );
        let _ = engine.complete(&req).unwrap();
        // Downstream validation failed: this session must re-ask…
        engine.reject_completion(&req, 0);
        let _ = engine.complete(&req).unwrap();
        assert_eq!(
            engine.model().calls(),
            2,
            "rejection forces an in-session re-ask"
        );
        engine.persist().unwrap();
    }
    // …but the retry's answer persists under the same key, so a warm
    // restart replays the whole exchange from cache with zero re-queries.
    let warm = Engine::with_config(
        MockLlm::gpt4(),
        EngineConfig::default().with_cache_dir(&dir),
    );
    assert!(warm.cache_stats().loaded >= 1);
    let _ = warm.complete(&req).unwrap();
    assert_eq!(warm.model().calls(), 0, "warm replay is fully cache-served");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_cache_ttl_flows_from_config() {
    let dir = fresh_dir("engine-ttl");
    {
        let engine = Engine::with_config(
            MockLlm::gpt4(),
            EngineConfig::default()
                .with_cache_dir(&dir)
                .with_cache_ttl(Duration::from_millis(30)),
        );
        let _ = engine.complete(&request("fleeting")).unwrap();
        engine.persist().unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    let warm = Engine::with_config(
        MockLlm::gpt4(),
        EngineConfig::default()
            .with_cache_dir(&dir)
            .with_cache_ttl(Duration::from_millis(30)),
    );
    let stats = warm.cache_stats();
    assert_eq!(stats.loaded, 0, "the entry lapsed while we were down");
    assert_eq!(stats.expired, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
