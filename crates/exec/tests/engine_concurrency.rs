//! Concurrent use of one shared engine: many OS threads batching through it
//! at once, the deadlock-prone nested map-inside-map shape, and the
//! speculative-prefetch lifecycle (landing, claiming, joining,
//! withdrawing).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use askit_exec::{Engine, EngineConfig};
use askit_llm::{
    Completion, CompletionRequest, FaultConfig, LanguageModel, LlmError, MockLlm, MockLlmConfig,
    Oracle, PreparedRequest, TokenUsage,
};

fn quiet_mock(seed: u64) -> MockLlm {
    MockLlm::new(
        MockLlmConfig::gpt4()
            .with_seed(seed)
            .with_faults(FaultConfig::none()),
        Oracle::standard(),
    )
}

fn arithmetic_prompt(i: usize) -> CompletionRequest {
    CompletionRequest::from_prompt(format!(
        "You are a helpful assistant that generates responses in JSON format \
         enclosed with ```json and ```.\nThe response in the JSON code block \
         should match the type defined as follows:\n```ts\n{{ reason: string, \
         answer: number }}\n```\nExplain your answer step-by-step in the \
         'reason' field.\n\nWhat is 'x' plus 'y'?\nwhere 'x' = {i}, 'y' = 3"
    ))
}

/// Several OS threads drive `complete_batch` on one shared engine
/// concurrently. Every thread must observe the single-threaded reference
/// responses — the pool, the cache, and the speculation ledger are all
/// shared state under contention here.
#[test]
fn shared_engine_serves_concurrent_batches_consistently() {
    const THREADS: usize = 8;
    const DISTINCT: usize = 31;

    let reference: Vec<String> = (0..DISTINCT)
        .map(|i| quiet_mock(7).complete(&arithmetic_prompt(i)).unwrap().text)
        .collect();

    let engine = Arc::new(Engine::with_config(
        quiet_mock(7),
        EngineConfig::default()
            .with_workers(4)
            .with_cache_capacity(1024),
    ));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            let reference = &reference;
            scope.spawn(move || {
                // Each thread batches a rotated view of the request set, so
                // batches overlap but never align.
                let requests: Vec<CompletionRequest> = (0..DISTINCT)
                    .map(|i| arithmetic_prompt((i + t) % DISTINCT))
                    .collect();
                let results = engine.complete_batch(&requests);
                for (i, result) in results.iter().enumerate() {
                    assert_eq!(
                        result.as_ref().unwrap().text,
                        reference[(i + t) % DISTINCT],
                        "thread {t} request {i} diverged"
                    );
                }
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * DISTINCT) as u64,
        "every lookup accounted for: {stats:?}"
    );
    assert_eq!(stats.entries, DISTINCT, "one entry per distinct request");
}

/// The deadlock-prone shape: an engine map whose items themselves submit
/// batches (which fan out on the same pool) and nested maps. The pool is
/// deliberately narrower than the outer fan-out, so progress depends
/// entirely on the caller-runs + help-while-waiting discipline.
#[test]
fn nested_map_inside_map_on_one_pool_completes() {
    let engine = Arc::new(Engine::with_config(
        quiet_mock(11),
        EngineConfig::default()
            .with_workers(2)
            .with_cache_capacity(4096),
    ));
    let outer: Vec<usize> = (0..12).collect();
    let started = Instant::now();
    let sums = engine.map(&outer, |_, &o| {
        // Each outer item batches its own requests (an inner pool fan-out)…
        let requests: Vec<CompletionRequest> =
            (0..6).map(|i| arithmetic_prompt(o * 6 + i)).collect();
        let batch_ok = engine
            .complete_batch(&requests)
            .into_iter()
            .filter(|r| r.is_ok())
            .count();
        // …and a nested map on top, the map-inside-map stress shape.
        let inner: Vec<usize> = (0..4).collect();
        let nested: usize = engine.map(&inner, |_, &i| i + o).into_iter().sum();
        batch_ok + nested
    });
    assert_eq!(sums.len(), 12);
    for (o, sum) in sums.iter().enumerate() {
        assert_eq!(*sum, 6 + (0..4).map(|i| i + o).sum::<usize>());
    }
    // Regression guard: the old spawn-per-call map completed this shape
    // too; the point is the persistent pool must not wedge. Give slow CI
    // plenty of slack while still catching a real deadlock (which would
    // hang forever, not just run slow).
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "nested fan-out took suspiciously long"
    );
}

/// A speculative prefetch lands in the cache in the background, and the
/// next submission of the same turn is a hit that performs no model call.
#[test]
fn prefetch_lands_and_serves_the_next_submission() {
    let engine = Engine::with_config(
        quiet_mock(13),
        EngineConfig::default()
            .with_workers(2)
            .with_cache_capacity(256),
    );
    let prepared = PreparedRequest::new(arithmetic_prompt(1));
    assert!(engine.prefetch(&prepared), "engine accepts speculation");
    // The background job owns the fetch; wait for it to land.
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.cache_stats().entries == 0 {
        assert!(Instant::now() < deadline, "prefetch never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
    let calls = engine.model().calls();
    let completion = engine.complete_prepared(&prepared, 0).unwrap();
    assert_eq!(
        engine.model().calls(),
        calls,
        "the prefetched turn is served from cache"
    );
    assert_eq!(engine.cache_stats().hits, 1);
    // And the completion is exactly what a plain submission derives.
    assert_eq!(
        completion.text,
        quiet_mock(13).complete(prepared.request()).unwrap().text
    );
    // A repeated prefetch of a warm turn is a cheap no-op.
    assert!(engine.prefetch(&prepared));
}

/// Withdrawn speculation must never be *served*, whatever the interleaving
/// between the background job and the rejection. (The entry may stay
/// resident — rejection is session-scoped and the body persists for warm
/// restarts — but every later submission this session must reach the
/// model.)
#[test]
fn rejected_speculation_is_evicted() {
    for round in 0..20u64 {
        let engine = Engine::with_config(
            quiet_mock(round),
            EngineConfig::default()
                .with_workers(2)
                .with_cache_capacity(256),
        );
        let prepared = PreparedRequest::new(arithmetic_prompt(round as usize));
        assert!(engine.prefetch(&prepared));
        // Reject at a racy moment: the job may be queued, running, or done.
        if round % 2 == 0 {
            std::thread::sleep(Duration::from_micros(50 * round));
        }
        engine.reject_completion(prepared.request(), 0);
        // Once the rejection has returned, *no* interleaving may serve the
        // withdrawn completion: a served completion would be a cache hit,
        // so the hit counter must not move across the re-submission.
        let hits = engine.cache_stats().hits;
        let _ = engine.complete_prepared(&prepared, 0).unwrap();
        assert_eq!(
            engine.cache_stats().hits,
            hits,
            "round {round}: a withdrawn speculation was served from the cache"
        );
        let model = engine.into_model();
        drop(model);
    }
    // Deterministic end-state check without the drop: reject after the
    // entry has certainly landed.
    let engine = Engine::with_config(quiet_mock(99), EngineConfig::default().with_workers(2));
    let prepared = PreparedRequest::new(arithmetic_prompt(5));
    assert!(engine.prefetch(&prepared));
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.cache_stats().entries == 0 {
        assert!(Instant::now() < deadline, "prefetch never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
    engine.reject_completion(prepared.request(), 0);
    assert_eq!(
        engine.cache_stats().invalidations,
        1,
        "the landed speculation was rejected in place"
    );
    let calls = engine.model().calls();
    let _ = engine.complete_prepared(&prepared, 0).unwrap();
    assert_eq!(engine.model().calls(), calls + 1, "retry re-asks the model");
}

/// A backend whose completions block until the test opens a gate: the
/// `Running` window of a speculation becomes arbitrarily wide, so the
/// join path is exercised deterministically instead of racily. Counts
/// every model call; optionally fails the first one.
struct GatedLlm {
    calls: AtomicUsize,
    gate: Mutex<bool>,
    opened: Condvar,
    fail_first: bool,
}

impl GatedLlm {
    fn closed(fail_first: bool) -> Self {
        GatedLlm {
            calls: AtomicUsize::new(0),
            gate: Mutex::new(false),
            opened: Condvar::new(),
            fail_first,
        }
    }

    fn open(&self) {
        *self.gate.lock().unwrap() = true;
        self.opened.notify_all();
    }

    fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }
}

impl LanguageModel for GatedLlm {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        let ordinal = self.calls.fetch_add(1, Ordering::SeqCst);
        let mut gate = self.gate.lock().unwrap();
        while !*gate {
            gate = self.opened.wait(gate).unwrap();
        }
        drop(gate);
        if self.fail_first && ordinal == 0 {
            return Err(LlmError::Transport("injected first-call failure".into()));
        }
        Ok(Completion {
            text: format!("gated answer to {:?}", request.last_user()),
            usage: TokenUsage {
                prompt_tokens: 1,
                completion_tokens: 1,
            },
            latency: Duration::from_millis(1),
        })
    }

    fn model_name(&self) -> &str {
        "gated"
    }
}

/// The speculation **join**: a foreground miss that finds its turn already
/// `Running` in the background must wait for that round trip and take its
/// published result — exactly one model call total, where the old claim
/// semantics would have paid a duplicate (fatal against a real network
/// backend).
#[test]
fn foreground_miss_joins_running_speculation_without_double_completing() {
    let engine = Arc::new(Engine::with_config(
        GatedLlm::closed(false),
        EngineConfig::default()
            .with_workers(2)
            .with_cache_capacity(256),
    ));
    let prepared = PreparedRequest::new(arithmetic_prompt(3));
    assert!(engine.prefetch(&prepared));
    // Wait until the background job is *inside* the model call (Running).
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.model().calls() == 0 {
        assert!(Instant::now() < deadline, "speculation never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Foreground submission of the same turn: must join, not re-complete.
    let foreground = {
        let engine = Arc::clone(&engine);
        let prepared = prepared.clone();
        std::thread::spawn(move || engine.complete_prepared(&prepared, 0))
    };
    // Give the foreground ample time to (wrongly) start a duplicate call.
    std::thread::sleep(Duration::from_millis(100));
    let calls_while_gated = engine.model().calls();
    let finished_while_gated = foreground.is_finished();
    // Open the gate *before* asserting: a failed assertion must not strand
    // the gated threads (the process would hang instead of failing).
    engine.model().open();
    assert_eq!(
        calls_while_gated, 1,
        "the foreground miss must wait on the running speculation, not re-ask"
    );
    assert!(!finished_while_gated, "nothing to return before the gate");
    let completion = foreground.join().unwrap().unwrap();
    assert!(completion.text.starts_with("gated answer"));
    assert_eq!(
        engine.model().calls(),
        1,
        "exactly one model call end-to-end"
    );
    let stats = engine.cache_stats();
    assert!(stats.hits >= 1, "the join re-probe was a hit: {stats:?}");
}

/// When the joined speculation *fails*, the foreground falls back to its
/// own completion instead of inheriting the error or hanging.
#[test]
fn joined_speculation_failure_falls_back_to_foreground_completion() {
    let engine = Arc::new(Engine::with_config(
        GatedLlm::closed(true),
        EngineConfig::default()
            .with_workers(2)
            .with_cache_capacity(256),
    ));
    let prepared = PreparedRequest::new(arithmetic_prompt(4));
    assert!(engine.prefetch(&prepared));
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.model().calls() == 0 {
        assert!(Instant::now() < deadline, "speculation never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    let foreground = {
        let engine = Arc::clone(&engine);
        let prepared = prepared.clone();
        std::thread::spawn(move || engine.complete_prepared(&prepared, 0))
    };
    engine.model().open();
    // The speculation errors (first call fails), publishes nothing; the
    // joiner re-probes, misses, and completes in the foreground.
    let completion = foreground.join().unwrap().unwrap();
    assert!(completion.text.starts_with("gated answer"));
    assert_eq!(
        engine.model().calls(),
        2,
        "failed speculation + foreground fallback"
    );
}

/// A foreground miss claims a still-queued speculation instead of waiting
/// on pool scheduling: whichever side computes, the result is identical and
/// the model is pure, so results never depend on the race.
#[test]
fn foreground_miss_races_speculation_safely() {
    for seed in 0..10u64 {
        let engine = Engine::with_config(
            quiet_mock(seed),
            EngineConfig::default()
                .with_workers(1)
                .with_cache_capacity(256),
        );
        let prepared = PreparedRequest::new(arithmetic_prompt(seed as usize));
        let reference = quiet_mock(seed).complete(prepared.request()).unwrap().text;
        assert!(engine.prefetch(&prepared));
        // Submit immediately — the speculation may or may not have started.
        let fore = engine.complete_prepared(&prepared, 0).unwrap();
        assert_eq!(fore.text, reference, "seed {seed}");
        // Let any still-running background twin settle before counting
        // model calls (two stable readings 20ms apart).
        let deadline = Instant::now() + Duration::from_secs(10);
        let calls = loop {
            let before = engine.model().calls();
            std::thread::sleep(Duration::from_millis(20));
            if engine.model().calls() == before {
                break before;
            }
            assert!(Instant::now() < deadline, "background job never settled");
        };
        let again = engine.complete_prepared(&prepared, 0).unwrap();
        assert_eq!(again.text, reference);
        assert_eq!(engine.model().calls(), calls, "second submission is warm");
    }
}
