//! Concurrency tests for the engine's completion cache: correctness of
//! hit/miss accounting and response stability under seeded fault injection
//! and arbitrary thread interleavings — including a 16-thread stress test
//! that funnels get/put/remove through a *single* shard, the interleaving
//! that would corrupt the LRU stamp queue if any operation touched it
//! outside its one shard-lock acquisition.

use askit_exec::{CompletionCache, Engine, EngineConfig, SHARD_COUNT};
use askit_llm::{
    Completion, CompletionRequest, FaultConfig, LanguageModel, MockLlm, MockLlmConfig, Oracle,
    TokenUsage,
};

/// A mock with aggressive first-attempt faults, so cached completions carry
/// the whole spectrum of malformed responses too.
fn faulty_mock(seed: u64) -> MockLlm {
    let config = MockLlmConfig::gpt4()
        .with_seed(seed)
        .with_faults(FaultConfig {
            direct_fault_rate: 0.5,
            code_bug_rate: 0.5,
            decay: 0.35,
        });
    MockLlm::new(config, Oracle::standard())
}

fn arithmetic_prompt(i: usize) -> CompletionRequest {
    // The Listing-2 shape the mock recognizes as a direct task.
    CompletionRequest::from_prompt(format!(
        "You are a helpful assistant that generates responses in JSON format \
         enclosed with ```json and ```.\nThe response in the JSON code block \
         should match the type defined as follows:\n```ts\n{{ reason: string, \
         answer: number }}\n```\nExplain your answer step-by-step in the \
         'reason' field.\n\nWhat is 'x' plus 'y'?\nwhere 'x' = {i}, 'y' = 7"
    ))
}

/// Every thread interleaving must observe the single-threaded reference
/// responses, and the counters must account for every lookup.
#[test]
fn concurrent_hits_and_misses_match_the_serial_reference() {
    const DISTINCT: usize = 23;
    const TOTAL: usize = 161; // not a multiple of DISTINCT: uneven reuse

    // Single-threaded reference over a fault-injecting model.
    let reference: Vec<String> = (0..DISTINCT)
        .map(|i| {
            faulty_mock(99)
                .complete(&arithmetic_prompt(i))
                .unwrap()
                .text
        })
        .collect();

    let engine = Engine::with_config(
        faulty_mock(99),
        EngineConfig::default()
            .with_workers(8)
            .with_cache_capacity(1024),
    );
    let requests: Vec<CompletionRequest> = (0..TOTAL)
        .map(|n| arithmetic_prompt(n % DISTINCT))
        .collect();
    let texts = engine.map(&requests, |_, request| {
        engine.complete(request).unwrap().text
    });

    for (n, text) in texts.iter().enumerate() {
        assert_eq!(text, &reference[n % DISTINCT], "request {n} diverged");
    }

    let stats = engine.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        TOTAL as u64,
        "every lookup counted"
    );
    assert_eq!(stats.entries, DISTINCT, "one entry per distinct request");
    // Workers may race the same request into a duplicate model call before
    // the first insert lands, but never more than once per worker.
    assert!(
        stats.hits >= (TOTAL - DISTINCT - 8) as u64,
        "hits {}",
        stats.hits
    );
    assert!(stats.evictions == 0);
}

/// A batched submission equals the serial submission, result for result,
/// including error slots.
#[test]
fn complete_batch_equals_serial_under_faults() {
    let requests: Vec<CompletionRequest> = (0..40).map(arithmetic_prompt).collect();
    let serial: Vec<_> = {
        let engine = Engine::with_config(faulty_mock(7), EngineConfig::default().with_workers(1));
        requests.iter().map(|r| engine.complete(r)).collect()
    };
    let batched = Engine::with_config(faulty_mock(7), EngineConfig::default().with_workers(8))
        .complete_batch(&requests);
    assert_eq!(serial, batched);
}

/// 16 threads hammering get/put/remove on eight keys that all live in ONE
/// shard, with a capacity of four slots in that shard so LRU eviction runs
/// constantly. Every operation must take the shard lock exactly once and do
/// *all* its work (entry map, stamp queue, pending buffer) under it; a
/// touch or remove that raced across two acquisitions would serve another
/// key's completion, resurrect a removed entry, or desync the stamp queue
/// until eviction walks off a dead pair. The assertions catch all three.
#[test]
fn single_shard_get_put_remove_stress() {
    const THREADS: usize = 16;
    const OPS_PER_THREAD: usize = 4_000;
    const KEYS: usize = 8;

    // Find eight requests colocated in one shard (fingerprints are stable,
    // so the probe is deterministic).
    let mut colocated: Vec<CompletionRequest> = Vec::new();
    let mut target = None;
    for i in 0..100_000 {
        let req = CompletionRequest::from_prompt(format!("stress key {i}"));
        let shard = (req.fingerprint(0) as usize) % SHARD_COUNT;
        match target {
            None => {
                target = Some(shard);
                colocated.push(req);
            }
            Some(t) if t == shard => colocated.push(req),
            _ => {}
        }
        if colocated.len() == KEYS {
            break;
        }
    }
    assert_eq!(colocated.len(), KEYS, "probe must converge");
    let expected: Vec<String> = (0..KEYS).map(|k| format!("stress answer {k}")).collect();
    let completion = |k: usize| Completion {
        text: expected[k].clone(),
        usage: TokenUsage {
            prompt_tokens: 1,
            completion_tokens: 1,
        },
        latency: std::time::Duration::from_millis(1),
    };

    // Four slots in the hot shard (capacity is divided across all shards).
    let cache = CompletionCache::new(SHARD_COUNT * 4);
    let gets = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let colocated = &colocated;
            let expected = &expected;
            let gets = &gets;
            scope.spawn(move || {
                // Thread-local mixing so the interleavings differ per run.
                let mut x = t as u64 + 1;
                for i in 0..OPS_PER_THREAD {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = (x >> 33) as usize % KEYS;
                    match (i + t) % 4 {
                        0 | 1 => {
                            if let Some(hit) = cache.get(&colocated[k], 0) {
                                assert_eq!(
                                    hit.text, expected[k],
                                    "a hit served another key's completion"
                                );
                            }
                            gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        2 => cache.put(&colocated[k], 0, completion(k)),
                        _ => {
                            let _ = cache.remove(&colocated[k], 0);
                        }
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        gets.load(std::sync::atomic::Ordering::Relaxed),
        "every lookup counted exactly once"
    );
    assert!(
        stats.entries <= 4,
        "the hot shard must respect its capacity share: {stats:?}"
    );
    // The final residents are exactly the keys still servable, and they
    // serve their own completions.
    let before = cache.stats();
    let mut servable = 0;
    for (k, req) in colocated.iter().enumerate() {
        if let Some(hit) = cache.get(req, 0) {
            assert_eq!(hit.text, expected[k]);
            servable += 1;
        }
    }
    assert_eq!(servable, before.entries, "stamp queue and entry map agree");
}

/// The cache never bleeds responses across different seeds (i.e. different
/// engines), and stats start at zero.
#[test]
fn engines_are_isolated() {
    let a = Engine::new(faulty_mock(1));
    let b = Engine::new(faulty_mock(2));
    assert_eq!(a.cache_stats().hits + b.cache_stats().misses, 0);
    let req = arithmetic_prompt(0);
    let _ = a.complete(&req).unwrap();
    assert_eq!(
        b.cache_stats().misses,
        0,
        "b's cache untouched by a's traffic"
    );
}
