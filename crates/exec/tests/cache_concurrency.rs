//! Concurrency tests for the engine's completion cache: correctness of
//! hit/miss accounting and response stability under seeded fault injection
//! and arbitrary thread interleavings.

use askit_exec::{Engine, EngineConfig};
use askit_llm::{CompletionRequest, FaultConfig, LanguageModel, MockLlm, MockLlmConfig, Oracle};

/// A mock with aggressive first-attempt faults, so cached completions carry
/// the whole spectrum of malformed responses too.
fn faulty_mock(seed: u64) -> MockLlm {
    let config = MockLlmConfig::gpt4()
        .with_seed(seed)
        .with_faults(FaultConfig {
            direct_fault_rate: 0.5,
            code_bug_rate: 0.5,
            decay: 0.35,
        });
    MockLlm::new(config, Oracle::standard())
}

fn arithmetic_prompt(i: usize) -> CompletionRequest {
    // The Listing-2 shape the mock recognizes as a direct task.
    CompletionRequest::from_prompt(format!(
        "You are a helpful assistant that generates responses in JSON format \
         enclosed with ```json and ```.\nThe response in the JSON code block \
         should match the type defined as follows:\n```ts\n{{ reason: string, \
         answer: number }}\n```\nExplain your answer step-by-step in the \
         'reason' field.\n\nWhat is 'x' plus 'y'?\nwhere 'x' = {i}, 'y' = 7"
    ))
}

/// Every thread interleaving must observe the single-threaded reference
/// responses, and the counters must account for every lookup.
#[test]
fn concurrent_hits_and_misses_match_the_serial_reference() {
    const DISTINCT: usize = 23;
    const TOTAL: usize = 161; // not a multiple of DISTINCT: uneven reuse

    // Single-threaded reference over a fault-injecting model.
    let reference: Vec<String> = (0..DISTINCT)
        .map(|i| {
            faulty_mock(99)
                .complete(&arithmetic_prompt(i))
                .unwrap()
                .text
        })
        .collect();

    let engine = Engine::with_config(
        faulty_mock(99),
        EngineConfig::default()
            .with_workers(8)
            .with_cache_capacity(1024),
    );
    let requests: Vec<CompletionRequest> = (0..TOTAL)
        .map(|n| arithmetic_prompt(n % DISTINCT))
        .collect();
    let texts = engine.map(&requests, |_, request| {
        engine.complete(request).unwrap().text
    });

    for (n, text) in texts.iter().enumerate() {
        assert_eq!(text, &reference[n % DISTINCT], "request {n} diverged");
    }

    let stats = engine.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        TOTAL as u64,
        "every lookup counted"
    );
    assert_eq!(stats.entries, DISTINCT, "one entry per distinct request");
    // Workers may race the same request into a duplicate model call before
    // the first insert lands, but never more than once per worker.
    assert!(
        stats.hits >= (TOTAL - DISTINCT - 8) as u64,
        "hits {}",
        stats.hits
    );
    assert!(stats.evictions == 0);
}

/// A batched submission equals the serial submission, result for result,
/// including error slots.
#[test]
fn complete_batch_equals_serial_under_faults() {
    let requests: Vec<CompletionRequest> = (0..40).map(arithmetic_prompt).collect();
    let serial: Vec<_> = {
        let engine = Engine::with_config(faulty_mock(7), EngineConfig::default().with_workers(1));
        requests.iter().map(|r| engine.complete(r)).collect()
    };
    let batched = Engine::with_config(faulty_mock(7), EngineConfig::default().with_workers(8))
        .complete_batch(&requests);
    assert_eq!(serial, batched);
}

/// The cache never bleeds responses across different seeds (i.e. different
/// engines), and stats start at zero.
#[test]
fn engines_are_isolated() {
    let a = Engine::new(faulty_mock(1));
    let b = Engine::new(faulty_mock(2));
    assert_eq!(a.cache_stats().hits + b.cache_stats().misses, 0);
    let req = arithmetic_prompt(0);
    let _ = a.complete(&req).unwrap();
    assert_eq!(
        b.cache_stats().misses,
        0,
        "b's cache untouched by a's traffic"
    );
}
