//! Routing-aware scheduling: per-model sub-pools with AIMD width adaptation.
//!
//! The worker pool fans tasks out; this module decides *how many of them may
//! be inside each model at once*. Under mixed-model traffic a single static
//! width is always wrong for someone: sized for the fast model it slams the
//! slow model into 429s, sized for the slow model it starves the fast one.
//! The scheduler gives every resolved [`ModelChoice`] its own admission gate
//! — a logical sub-pool over the shared thread substrate — whose width an
//! [`AimdController`] adapts from observed backend signals: additive
//! increase on successful completions, multiplicative decrease on throttles
//! and timeouts (the TCP congestion-control discipline, applied to model
//! concurrency).
//!
//! Signals arrive two ways, never both (see
//! [`askit_llm::LanguageModel::subscribe_load`]): backends that report
//! wire-level events push them through the [`LoadObserver`] impl — including
//! throttles their own retry loop absorbs — while for backends that report
//! nothing the scheduler classifies the results it can see itself.
//!
//! # Deadlock freedom
//!
//! Gate slots are held only across a *backend call* — the leaf of every
//! submission path. A backend call never submits pool work, never takes a
//! gate, and always terminates, so slot-holders make progress regardless of
//! pool capacity, and any thread waiting for a slot (pool worker or caller)
//! is eventually admitted. The pool's caller-runs/help-while-waiting
//! discipline for *map* work is untouched: gates sit strictly below it.
//! Deliberately, a thread waiting on a gate does **not** help-run queued
//! pool jobs: a queued job may block on the same gate, which would stack
//! unbounded re-entrant waits on one thread for no extra throughput (the
//! gate, not the thread supply, is the binding constraint).
//!
//! # Determinism
//!
//! Widths shape *when* requests run, never their content: every simulated
//! response is a pure function of the request, so adaptive scheduling keeps
//! results bit-identical at any thread count — exactly the invariant the
//! determinism suite pins for `--adaptive` sweeps.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use askit_llm::{BreakerState, Completion, LlmError, LoadObserver, LoadSignal, ModelChoice};
use askit_obs::TraceId;

use crate::lock;

/// Cached global-registry handles for the scheduler's metrics, one slot
/// per [`ModelChoice`], so the hot path never re-registers a series.
struct SchedMetrics {
    /// Backend call latency per model (`askit_request_latency_us`),
    /// observed around the gated completion — the per-model p50/p90/p99
    /// that `GET /metrics` exports.
    latency: [Arc<askit_obs::Histogram>; 3],
    /// Current admission width per model (`askit_sched_width`).
    width: [Arc<askit_obs::Gauge>; 3],
    /// Requests shed because their deadline expired before dispatch
    /// (`askit_sched_deadline_sheds_total`).
    sheds: Arc<askit_obs::Counter>,
}

fn sched_metrics() -> &'static SchedMetrics {
    static METRICS: OnceLock<SchedMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = askit_obs::metrics::global();
        SchedMetrics {
            latency: ALL_MODELS.map(|model| {
                registry.histogram(
                    "askit_request_latency_us",
                    "Backend completion latency per model, microseconds",
                    &[("model", model.tag())],
                )
            }),
            width: ALL_MODELS.map(|model| {
                registry.gauge(
                    "askit_sched_width",
                    "Current admission width per model sub-pool",
                    &[("model", model.tag())],
                )
            }),
            sheds: registry.counter(
                "askit_sched_deadline_sheds_total",
                "Requests shed at the scheduler because their deadline expired",
                &[],
            ),
        }
    })
}

/// Configuration of one sub-pool's [`AimdController`].
#[derive(Debug, Clone, PartialEq)]
pub struct AimdConfig {
    /// The width the controller may never cut below (≥ 1).
    pub floor: usize,
    /// The width the controller may never grow beyond.
    pub ceiling: usize,
    /// Additive width gain per successful completion.
    pub increase: f64,
    /// Multiplicative factor applied per throttle/timeout (in `(0, 1)`).
    pub cut: f64,
}

impl AimdConfig {
    /// A controller bounded to `[floor, ceiling]` with the default gains
    /// (+0.25 width per success, ×0.5 per throttle).
    pub fn new(floor: usize, ceiling: usize) -> Self {
        let floor = floor.max(1);
        AimdConfig {
            floor,
            ceiling: ceiling.max(floor),
            increase: 0.25,
            cut: 0.5,
        }
    }
}

/// The pure AIMD width controller for one model's sub-pool.
///
/// A deterministic fold over a signal sequence: starting at the ceiling
/// (optimistic — indistinguishable from static scheduling until the first
/// throttle), each [`on_success`](AimdController::on_success) adds
/// `increase` and each [`on_throttle`](AimdController::on_throttle)
/// multiplies by `cut`, clamped to `[floor, ceiling]`. No clocks, no
/// randomness — the unit tests drive exact width trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdController {
    config: AimdConfig,
    width: f64,
}

impl AimdController {
    /// A controller starting at its ceiling.
    pub fn new(config: AimdConfig) -> Self {
        let width = config.ceiling as f64;
        AimdController { config, width }
    }

    /// The integer width currently granted: `⌊width⌋`, clamped.
    pub fn width(&self) -> usize {
        (self.width as usize).clamp(self.config.floor, self.config.ceiling)
    }

    /// Records a successful completion (additive increase). Returns the new
    /// width.
    pub fn on_success(&mut self) -> usize {
        self.width = (self.width + self.config.increase).min(self.config.ceiling as f64);
        self.width()
    }

    /// Records a throttle or timeout (multiplicative decrease). Returns the
    /// new width.
    pub fn on_throttle(&mut self) -> usize {
        self.width = (self.width * self.config.cut).max(self.config.floor as f64);
        self.width()
    }

    /// The configured bounds and gains.
    pub fn config(&self) -> &AimdConfig {
        &self.config
    }
}

/// Width bounds for one model's sub-pool, as carried by
/// [`crate::EngineConfig::model_widths`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthBounds {
    /// Minimum width AIMD may cut to (≥ 1).
    pub floor: usize,
    /// Maximum width; `0` resolves from `ASKIT_WORKERS_<MODEL>` or the
    /// engine's global width.
    pub ceiling: usize,
}

impl WidthBounds {
    /// Bounds with an explicit ceiling and the default floor of 1.
    pub fn up_to(ceiling: usize) -> Self {
        WidthBounds { floor: 1, ceiling }
    }
}

impl Default for WidthBounds {
    /// Floor 1, ceiling resolved from the environment or the global width.
    fn default() -> Self {
        WidthBounds {
            floor: 1,
            ceiling: 0,
        }
    }
}

/// The `ASKIT_WORKERS_<MODEL>` width override for one model, if set to a
/// positive number (`ASKIT_WORKERS_GPT35`, `ASKIT_WORKERS_GPT4`,
/// `ASKIT_WORKERS_DEFAULT`).
pub fn env_width_override(model: ModelChoice) -> Option<usize> {
    let var = match model {
        ModelChoice::Default => "ASKIT_WORKERS_DEFAULT",
        ModelChoice::Gpt35 => "ASKIT_WORKERS_GPT35",
        ModelChoice::Gpt4 => "ASKIT_WORKERS_GPT4",
    };
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Resolves the sub-pool width ceiling for one model: an explicit
/// configuration wins, then the model's `ASKIT_WORKERS_<MODEL>` environment
/// override (which beats the global `ASKIT_WORKERS`-derived width), then the
/// engine's resolved global width.
pub fn resolve_model_workers(model: ModelChoice, configured: usize, global: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    env_width_override(model).unwrap_or(global)
}

/// One model's admission gate.
struct Gate {
    state: Mutex<GateState>,
    /// Signalled when a slot frees or the width grows.
    freed: Condvar,
}

struct GateState {
    controller: AimdController,
    in_flight: usize,
}

/// The per-model scheduling layer between the engine and its backend.
///
/// Holds up to one admission gate per [`ModelChoice`]; models without a
/// gate pass through untouched (zero overhead — the pre-scheduler
/// behaviour). See the module docs in `sched.rs` for the admission
/// discipline and its deadlock-freedom argument.
pub struct Scheduler {
    gates: [Option<Gate>; 3],
    adaptive: bool,
    /// Whether the backend pushes wire-level signals (see
    /// [`askit_llm::LanguageModel::subscribe_load`]). When it does, local
    /// result classification is disabled so events are never double-counted.
    external_signals: AtomicBool,
    /// Last-known circuit-breaker state per backend endpoint (index =
    /// failover order, 0 = primary), fed by [`LoadSignal::Breaker`] events.
    /// Empty until a breaker-reporting backend subscribes the scheduler.
    breakers: Mutex<Vec<BreakerState>>,
}

/// Dense index for per-model gates.
fn model_index(choice: ModelChoice) -> usize {
    match choice {
        ModelChoice::Default => 0,
        ModelChoice::Gpt35 => 1,
        ModelChoice::Gpt4 => 2,
    }
}

const ALL_MODELS: [ModelChoice; 3] = [ModelChoice::Default, ModelChoice::Gpt35, ModelChoice::Gpt4];

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("adaptive", &self.adaptive)
            .field("widths", &self.widths())
            .finish()
    }
}

impl Scheduler {
    /// Builds the scheduler for an engine of `global_width` threads.
    ///
    /// A model gets a gate when adaptation is on, when `bounds` configures
    /// it explicitly, or when its `ASKIT_WORKERS_<MODEL>` override is set;
    /// otherwise it passes through ungated. Ceilings resolve per
    /// [`resolve_model_workers`]; with adaptation off a gate is a *static*
    /// cap at its ceiling.
    pub fn new(adaptive: bool, global_width: usize, bounds: &[(ModelChoice, WidthBounds)]) -> Self {
        let global_width = global_width.max(1);
        let gates = ALL_MODELS.map(|model| {
            let explicit = bounds
                .iter()
                .rev() // the most recent configuration of a model wins
                .find(|(m, _)| *m == model)
                .map(|(_, b)| *b);
            let gated = adaptive || explicit.is_some() || env_width_override(model).is_some();
            if !gated {
                return None;
            }
            let bounds = explicit.unwrap_or_default();
            let ceiling = resolve_model_workers(model, bounds.ceiling, global_width);
            let mut config = AimdConfig::new(bounds.floor, ceiling);
            if !adaptive {
                // Static gate: the controller never moves off the ceiling.
                config.floor = ceiling;
            }
            Some(Gate {
                state: Mutex::new(GateState {
                    controller: AimdController::new(config),
                    in_flight: 0,
                }),
                freed: Condvar::new(),
            })
        });
        // Seed the width gauges so /metrics shows the resolved starting
        // widths before any adaptation has fired.
        for model in ALL_MODELS {
            if let Some(gate) = &gates[model_index(model)] {
                let width = lock(&gate.state).controller.width();
                sched_metrics().width[model_index(model)].set(width as i64);
            }
        }
        Scheduler {
            gates,
            adaptive,
            external_signals: AtomicBool::new(false),
            breakers: Mutex::new(Vec::new()),
        }
    }

    /// A scheduler with no gates at all (every model passes through).
    pub fn passthrough() -> Self {
        Scheduler {
            gates: [None, None, None],
            adaptive: false,
            external_signals: AtomicBool::new(false),
            breakers: Mutex::new(Vec::new()),
        }
    }

    /// Records whether the backend pushes wire-level signals. With external
    /// signals the scheduler stops classifying returned results itself.
    pub fn set_external_signals(&self, external: bool) {
        self.external_signals.store(external, Ordering::Release);
    }

    /// Whether AIMD adaptation is on.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// Whether `model` is admission-gated.
    pub fn is_gated(&self, model: ModelChoice) -> bool {
        self.gates[model_index(model)].is_some()
    }

    /// Last-known circuit-breaker state per backend endpoint (index 0 is
    /// the primary). Empty when no breaker-reporting backend is subscribed.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        lock(&self.breakers).clone()
    }

    /// Whether every known backend endpoint's breaker is open — i.e. no
    /// endpoint is currently accepting traffic. `false` when no breakers
    /// are reported (an in-process backend is always "ready").
    pub fn all_endpoints_open(&self) -> bool {
        let table = lock(&self.breakers);
        !table.is_empty() && table.iter().all(|s| *s == BreakerState::Open)
    }

    /// The current width of every gated model.
    pub fn widths(&self) -> Vec<(ModelChoice, usize)> {
        ALL_MODELS
            .iter()
            .filter_map(|&model| {
                self.gates[model_index(model)]
                    .as_ref()
                    .map(|gate| (model, lock(&gate.state).controller.width()))
            })
            .collect()
    }

    /// One line naming every model's resolved width, for startup diagnostics
    /// (e.g. `default=8 gpt35=8 gpt4=2(ASKIT_WORKERS_GPT4)[aimd 1..2]`).
    pub fn describe_widths(&self, global_width: usize) -> String {
        let mut parts = Vec::new();
        for model in ALL_MODELS {
            let mut part = match &self.gates[model_index(model)] {
                Some(gate) => {
                    let state = lock(&gate.state);
                    let config = state.controller.config();
                    let mut s = format!("{}={}", model.tag(), config.ceiling);
                    if env_width_override(model).is_some() {
                        s.push_str(&format!("(ASKIT_WORKERS_{})", model.tag().to_uppercase()));
                    }
                    if self.adaptive {
                        s.push_str(&format!("[aimd {}..{}]", config.floor, config.ceiling));
                    }
                    s
                }
                None => format!("{}={}", model.tag(), global_width),
            };
            part.push(' ');
            parts.push(part);
        }
        let mut out: String = parts.concat();
        out.pop();
        out
    }

    /// Runs one backend completion under `model`'s admission gate (if any),
    /// feeding the gate's controller from the result when the backend does
    /// not push its own signals.
    pub fn run_completion(
        &self,
        model: ModelChoice,
        f: impl FnOnce() -> Result<Completion, LlmError>,
    ) -> Result<Completion, LlmError> {
        self.run_completion_before(model, None, f)
    }

    /// [`run_completion`](Scheduler::run_completion) with an end-to-end
    /// deadline: work whose deadline has already passed — on arrival, or
    /// while queued behind the admission gate — is *shed* with
    /// [`LlmError::DeadlineExceeded`] instead of dispatched. Shedding while
    /// queued is re-checked every gate poll (10 ms), so no request starts
    /// more than one poll quantum past its deadline.
    pub fn run_completion_before(
        &self,
        model: ModelChoice,
        deadline: Option<Instant>,
        f: impl FnOnce() -> Result<Completion, LlmError>,
    ) -> Result<Completion, LlmError> {
        self.run_completion_traced(model, deadline, None, f)
    }

    /// [`run_completion_before`](Scheduler::run_completion_before) with the
    /// request's trace identity: the gate wait and the backend call get
    /// spans, sheds get instant events. This is the engine's entry point —
    /// it is also the one choke point every gated completion passes, so the
    /// per-model latency histograms are fed here.
    pub fn run_completion_traced(
        &self,
        model: ModelChoice,
        deadline: Option<Instant>,
        trace: Option<TraceId>,
        f: impl FnOnce() -> Result<Completion, LlmError>,
    ) -> Result<Completion, LlmError> {
        let expired = || matches!(deadline, Some(d) if d <= Instant::now());
        let shed = || {
            sched_metrics().sheds.inc();
            askit_obs::event(trace, "deadline_shed").arg("model", model.tag());
            Err(LlmError::DeadlineExceeded)
        };
        if expired() {
            return shed();
        }
        let Some(gate) = &self.gates[model_index(model)] else {
            // Ungated models still make a backend call — the span (and the
            // latency observation) must not depend on admission control.
            let call_span = askit_obs::span(trace, "backend_call").arg("model", model.tag());
            let started = Instant::now();
            let result = f();
            drop(call_span);
            if result.is_ok() {
                sched_metrics().latency[model_index(model)]
                    .observe(started.elapsed().as_micros() as u64);
            }
            return result;
        };
        // Admission: wait for in-flight to drop under the current width.
        // The timeout is defensive only (a lost wakeup costs 10 ms, not a
        // hang); every release and every width increase notifies.
        let state = {
            let mut wait_span = askit_obs::span(trace, "gate_wait");
            wait_span.set_arg("model", model.tag());
            let mut state = lock(&gate.state);
            while state.in_flight >= state.controller.width() {
                state = gate
                    .freed
                    .wait_timeout(state, Duration::from_millis(10))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
                if expired() {
                    // The budget ran out while this request sat in the
                    // queue: dispatching it now could only waste a backend
                    // round trip on an answer nobody is waiting for.
                    drop(state);
                    return shed();
                }
            }
            state
        };
        let mut state = state;
        state.in_flight += 1;
        drop(state);

        let call_span = askit_obs::span(trace, "backend_call").arg("model", model.tag());
        let started = Instant::now();
        let result = f();
        drop(call_span);
        if result.is_ok() {
            sched_metrics().latency[model_index(model)]
                .observe(started.elapsed().as_micros() as u64);
        }

        let external = self.external_signals.load(Ordering::Acquire);
        let mut state = lock(&gate.state);
        if self.adaptive && !external {
            let before = state.controller.width();
            match &result {
                Ok(_) => {
                    state.controller.on_success();
                }
                // Of the retryable failure classes, throttles and timeouts
                // are *backpressure* (the provider is telling us to slow
                // down) and cut the width; other retryable faults (torn
                // connections, 5xx) are the retry loop's business, not a
                // concurrency signal. Non-retryable errors say nothing
                // about load.
                Err(error) if error.is_retryable() => {
                    let backpressure = matches!(error, LlmError::Http { status: 429, .. })
                        || matches!(error, LlmError::Transport(m) if m.contains("timed out"));
                    if backpressure {
                        state.controller.on_throttle();
                    }
                }
                Err(_) => {}
            }
            record_width_change(model, before, state.controller.width());
        }
        state.in_flight -= 1;
        drop(state);
        gate.freed.notify_all();
        result
    }
}

/// Publishes an AIMD width move: gauge update plus a process-scope
/// instant event (width is shared state — no single request owns it).
fn record_width_change(model: ModelChoice, before: usize, after: usize) {
    if before == after {
        return;
    }
    sched_metrics().width[model_index(model)].set(after as i64);
    askit_obs::event(None, "aimd_width")
        .arg("model", model.tag())
        .arg("from", before)
        .arg("to", after);
}

impl LoadObserver for Scheduler {
    /// Wire-level signals from a subscribed backend drive the AIMD
    /// controllers directly — including throttles the backend's own retry
    /// loop absorbs before any caller sees them.
    fn observed(&self, model: ModelChoice, signal: LoadSignal) {
        if let LoadSignal::Breaker { endpoint, state } = signal {
            // Breaker transitions are recorded unconditionally (readiness
            // probes need them even on non-adaptive schedulers)...
            {
                let mut table = lock(&self.breakers);
                if table.len() <= endpoint {
                    table.resize(endpoint + 1, BreakerState::Closed);
                }
                table[endpoint] = state;
            }
            // ...and only an *opening* breaker doubles as a load signal: an
            // endpoint just got declared down, so the width should back off
            // too. (The failures that tripped it may have been silent
            // classes — 5xx, connect refusals — that never sent Throttled.)
            if state != BreakerState::Open {
                return;
            }
        }
        if !self.adaptive {
            return;
        }
        let Some(gate) = &self.gates[model_index(model)] else {
            return;
        };
        let grew = {
            let mut state = lock(&gate.state);
            let before = state.controller.width();
            let after = match signal {
                LoadSignal::Completed { .. } => state.controller.on_success(),
                LoadSignal::Throttled | LoadSignal::TimedOut | LoadSignal::Breaker { .. } => {
                    state.controller.on_throttle()
                }
            };
            record_width_change(model, before, after);
            after > before
        };
        if grew {
            // Waiting admissions may fit under the new width.
            gate.freed.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration as StdDuration;

    fn completion() -> Completion {
        Completion {
            text: "ok".to_owned(),
            usage: Default::default(),
            latency: StdDuration::from_millis(1),
        }
    }

    fn width_of(sched: &Scheduler, model: ModelChoice) -> usize {
        sched
            .widths()
            .into_iter()
            .find(|(m, _)| *m == model)
            .map(|(_, w)| w)
            .expect("model is gated")
    }

    // --- AIMD controller: pure, deterministic trajectories ----------------

    #[test]
    fn aimd_starts_at_the_ceiling() {
        let c = AimdController::new(AimdConfig::new(1, 8));
        assert_eq!(c.width(), 8);
    }

    #[test]
    fn aimd_growth_is_additive_and_ceiling_clamped() {
        let mut c = AimdController::new(AimdConfig::new(1, 8));
        c.on_throttle(); // 4.0
        assert_eq!(c.width(), 4);
        // +0.25 per success: exactly 4 successes per integer step.
        for expected in [4, 4, 4, 5] {
            assert_eq!(c.on_success(), expected);
        }
        // 16 more successes saturate at the ceiling and stay there.
        for _ in 0..16 {
            c.on_success();
        }
        assert_eq!(c.width(), 8);
        c.on_success();
        assert_eq!(c.width(), 8, "ceiling clamps growth");
    }

    #[test]
    fn aimd_cut_is_multiplicative_and_floor_clamped() {
        let mut c = AimdController::new(AimdConfig::new(2, 16));
        assert_eq!(c.on_throttle(), 8);
        assert_eq!(c.on_throttle(), 4);
        assert_eq!(c.on_throttle(), 2);
        assert_eq!(c.on_throttle(), 2, "floor clamps the cut");
        assert_eq!(c.on_throttle(), 2);
    }

    #[test]
    fn aimd_recovers_after_a_burst() {
        let mut c = AimdController::new(AimdConfig::new(1, 8));
        for _ in 0..3 {
            c.on_throttle();
        }
        assert_eq!(c.width(), 1);
        // Recovery: 28 successes climb 1.0 → 8.0.
        for _ in 0..28 {
            c.on_success();
        }
        assert_eq!(c.width(), 8);
    }

    #[test]
    fn aimd_trajectory_is_deterministic() {
        let run = || {
            let mut c = AimdController::new(AimdConfig::new(1, 10));
            let mut widths = Vec::new();
            for step in 0..50 {
                if step % 7 == 3 {
                    c.on_throttle();
                } else {
                    c.on_success();
                }
                widths.push(c.width());
            }
            widths
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn aimd_config_sanitizes_degenerate_bounds() {
        let c = AimdConfig::new(0, 0);
        assert_eq!((c.floor, c.ceiling), (1, 1));
        let c = AimdConfig::new(5, 2);
        assert_eq!((c.floor, c.ceiling), (5, 5));
    }

    // --- Scheduler gates --------------------------------------------------

    #[test]
    fn ungated_models_pass_through() {
        let sched = Scheduler::new(false, 4, &[]);
        assert!(!sched.is_gated(ModelChoice::Gpt4));
        assert!(sched.widths().is_empty());
        let out = sched.run_completion(ModelChoice::Gpt4, || Ok(completion()));
        assert!(out.is_ok());
    }

    #[test]
    fn static_gate_caps_concurrent_admissions() {
        let sched = Arc::new(Scheduler::new(
            false,
            8,
            &[(ModelChoice::Gpt4, WidthBounds::up_to(2))],
        ));
        assert!(sched.is_gated(ModelChoice::Gpt4));
        assert!(!sched.is_gated(ModelChoice::Gpt35));
        let current = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let sched = Arc::clone(&sched);
                let current = Arc::clone(&current);
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    sched
                        .run_completion(ModelChoice::Gpt4, || {
                            let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::sleep(StdDuration::from_millis(20));
                            current.fetch_sub(1, Ordering::SeqCst);
                            Ok(completion())
                        })
                        .unwrap();
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "cap 2 admitted {} at once",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn adaptive_gate_cuts_width_on_throttled_results() {
        let sched = Scheduler::new(true, 8, &[(ModelChoice::Gpt4, WidthBounds::up_to(8))]);
        let throttled = || {
            Err(LlmError::Http {
                status: 429,
                message: "too many requests".to_owned(),
            })
        };
        assert!(sched.run_completion(ModelChoice::Gpt4, throttled).is_err());
        assert_eq!(width_of(&sched, ModelChoice::Gpt4), 4);
        assert!(sched.run_completion(ModelChoice::Gpt4, throttled).is_err());
        assert_eq!(width_of(&sched, ModelChoice::Gpt4), 2);
        // Successes grow it back, a quarter step at a time.
        for _ in 0..8 {
            sched
                .run_completion(ModelChoice::Gpt4, || Ok(completion()))
                .unwrap();
        }
        assert_eq!(width_of(&sched, ModelChoice::Gpt4), 4);
    }

    #[test]
    fn timeouts_also_cut_the_width() {
        let sched = Scheduler::new(true, 8, &[(ModelChoice::Gpt35, WidthBounds::up_to(8))]);
        let timed_out = || Err(LlmError::Transport("read timed out after 30s".to_owned()));
        assert!(sched.run_completion(ModelChoice::Gpt35, timed_out).is_err());
        assert_eq!(width_of(&sched, ModelChoice::Gpt35), 4);
        // Non-timeout transport errors leave the width alone.
        let torn = || Err(LlmError::Transport("connection reset".to_owned()));
        assert!(sched.run_completion(ModelChoice::Gpt35, torn).is_err());
        assert_eq!(width_of(&sched, ModelChoice::Gpt35), 4);
    }

    #[test]
    fn external_signals_replace_local_classification() {
        let sched = Scheduler::new(true, 8, &[(ModelChoice::Gpt4, WidthBounds::up_to(8))]);
        sched.set_external_signals(true);
        let throttled = || {
            Err(LlmError::Http {
                status: 429,
                message: "too many requests".to_owned(),
            })
        };
        // The returned error is no longer classified (the backend reported
        // the throttle itself, at the wire)...
        assert!(sched.run_completion(ModelChoice::Gpt4, throttled).is_err());
        assert_eq!(width_of(&sched, ModelChoice::Gpt4), 8);
        // ...and the pushed signal is what cuts the width.
        sched.observed(ModelChoice::Gpt4, LoadSignal::Throttled);
        assert_eq!(width_of(&sched, ModelChoice::Gpt4), 4);
        sched.observed(
            ModelChoice::Gpt4,
            LoadSignal::Completed {
                latency: StdDuration::from_millis(5),
            },
        );
        assert_eq!(width_of(&sched, ModelChoice::Gpt4), 4);
    }

    #[test]
    fn adaptive_gates_cover_every_model() {
        let sched = Scheduler::new(true, 4, &[]);
        for model in ALL_MODELS {
            assert!(sched.is_gated(model));
        }
        assert_eq!(sched.widths().len(), 3);
    }

    #[test]
    fn describe_widths_names_every_model() {
        let sched = Scheduler::new(false, 4, &[(ModelChoice::Gpt4, WidthBounds::up_to(2))]);
        let line = sched.describe_widths(4);
        assert!(line.contains("default=4"), "{line}");
        assert!(line.contains("gpt35=4"), "{line}");
        assert!(line.contains("gpt4=2"), "{line}");
    }

    #[test]
    fn expired_deadlines_are_shed_not_dispatched() {
        let sched = Scheduler::new(false, 4, &[(ModelChoice::Gpt4, WidthBounds::up_to(2))]);
        let called = AtomicUsize::new(0);
        // A deadline at (or before) "now" sheds without running the closure,
        // on gated...
        let err = sched
            .run_completion_before(ModelChoice::Gpt4, Some(Instant::now()), || {
                called.fetch_add(1, Ordering::SeqCst);
                Ok(completion())
            })
            .unwrap_err();
        assert_eq!(err, LlmError::DeadlineExceeded);
        // ...and ungated models alike.
        let err = sched
            .run_completion_before(ModelChoice::Gpt35, Some(Instant::now()), || {
                called.fetch_add(1, Ordering::SeqCst);
                Ok(completion())
            })
            .unwrap_err();
        assert_eq!(err, LlmError::DeadlineExceeded);
        assert_eq!(called.load(Ordering::SeqCst), 0, "shed work never runs");
        // A live deadline dispatches normally.
        let deadline = Instant::now() + StdDuration::from_secs(60);
        sched
            .run_completion_before(ModelChoice::Gpt4, Some(deadline), || {
                called.fetch_add(1, Ordering::SeqCst);
                Ok(completion())
            })
            .unwrap();
        assert_eq!(called.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn breaker_signals_populate_the_state_table() {
        let sched = Scheduler::new(true, 4, &[]);
        assert!(sched.breaker_states().is_empty());
        assert!(!sched.all_endpoints_open(), "no breakers = always ready");
        // An initial-state report for endpoint 1 sizes the table, defaulting
        // unreported slots to closed.
        sched.observed(
            ModelChoice::Default,
            LoadSignal::Breaker {
                endpoint: 1,
                state: BreakerState::Closed,
            },
        );
        assert_eq!(
            sched.breaker_states(),
            vec![BreakerState::Closed, BreakerState::Closed]
        );
        sched.observed(
            ModelChoice::Default,
            LoadSignal::Breaker {
                endpoint: 0,
                state: BreakerState::Open,
            },
        );
        assert!(!sched.all_endpoints_open(), "one endpoint still closed");
        sched.observed(
            ModelChoice::Default,
            LoadSignal::Breaker {
                endpoint: 1,
                state: BreakerState::Open,
            },
        );
        assert!(sched.all_endpoints_open());
        // Each opening doubled as a throttle on the signalling model's gate:
        // 4 → 2 → 1.
        assert_eq!(width_of(&sched, ModelChoice::Default), 1);
        // A half-open probe is recorded (and ends the all-open condition)
        // without cutting anything further.
        sched.observed(
            ModelChoice::Default,
            LoadSignal::Breaker {
                endpoint: 0,
                state: BreakerState::HalfOpen,
            },
        );
        assert!(!sched.all_endpoints_open());
        assert_eq!(
            sched.breaker_states(),
            vec![BreakerState::HalfOpen, BreakerState::Open]
        );
        assert_eq!(width_of(&sched, ModelChoice::Default), 1);
    }

    #[test]
    fn resolve_model_workers_precedence() {
        // Explicit configuration wins over everything.
        assert_eq!(resolve_model_workers(ModelChoice::Gpt35, 3, 8), 3);
        // No explicit config, no env: the global width.
        assert_eq!(resolve_model_workers(ModelChoice::Gpt35, 0, 8), 8);
    }
}
