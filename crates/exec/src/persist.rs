//! The on-disk format behind [`crate::CompletionCache`] persistence.
//!
//! Each of the cache's [`crate::SHARD_COUNT`] shards owns two files in the
//! cache directory:
//!
//! * `shard-NN.snap` — a **snapshot**: the shard's live entries in
//!   least-recently-used-first order, rewritten wholesale at compaction time;
//! * `shard-NN.wal` — an **append-only write-ahead log** of put / touch /
//!   invalidate records accumulated since the snapshot.
//!
//! Loading replays the snapshot and then the WAL in order, which *is* the
//! compaction: the in-memory state that results is the minimal live view.
//! When the WAL outgrows the live entry set, [`write_snapshot`] folds it
//! back into a fresh snapshot and truncates the log.
//!
//! Both files share one framing: a 6-byte header (4-byte magic + `u16`
//! format version), then records of `len: u32 | body | fnv64(body): u64`.
//! Every read is checksummed and bounds-checked; the first frame that fails
//! ends the file — a torn tail (the process died mid-append) costs exactly
//! the records it tore, never a panic, and the loader truncates the WAL back
//! to its valid prefix so later appends stay readable. A file whose header
//! is foreign or from another format version is discarded entirely.
//!
//! Entry bodies carry the full [`CompletionRequest`] (so 64-bit key
//! collisions stay disambiguated after a reload) and the key is *recomputed
//! and verified* against the stored one at load time, which silently retires
//! entries written under an older fingerprint algorithm.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use askit_llm::{
    CachePolicy, ChatMessage, Completion, CompletionRequest, ModelChoice, RequestOptions, Role,
    TokenUsage,
};

/// Magic prefix of snapshot files.
const SNAP_MAGIC: [u8; 4] = *b"ACSN";
/// Magic prefix of write-ahead-log files.
const WAL_MAGIC: [u8; 4] = *b"ACWL";
/// On-disk format version; bump on any incompatible layout change.
const FORMAT_VERSION: u16 = 1;
/// Sanity bound on a single record body (a larger length is corruption).
const MAX_RECORD_LEN: usize = 1 << 26;
/// Header length: magic + little-endian version.
const HEADER_LEN: usize = 6;

/// WAL operation tags.
const OP_PUT: u8 = 1;
const OP_TOUCH: u8 = 2;
const OP_INVALIDATE: u8 = 3;

/// Milliseconds since the UNIX epoch — the wall clock TTLs are measured
/// against (it must survive process restarts, so `Instant` cannot serve).
pub(crate) fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One durable cache entry, as stored in snapshots and WAL put records.
pub(crate) struct DiskEntry {
    /// The request fingerprint the entry is keyed by (verified on load).
    pub key: u64,
    /// The sample ordinal of the completion.
    pub sample: u64,
    /// Absolute expiry in ms since the epoch; `0` = never expires.
    pub expires_at_ms: u64,
    /// The full request (collision disambiguation).
    pub request: CompletionRequest,
    /// The completion served on hits.
    pub completion: Completion,
}

/// One replayable operation decoded from a shard's files.
pub(crate) enum LoadedOp {
    /// Insert (or overwrite) an entry, making it most recently used.
    Put(DiskEntry),
    /// Refresh an entry's recency.
    Touch(u64),
    /// Drop an entry (validation rejection or LRU eviction).
    Invalidate(u64),
}

/// One operation to be written out, borrowing the live entry data.
pub(crate) enum WalRecord<'a> {
    /// Store `(key, sample)` → completion with the given expiry.
    Put {
        /// The entry's cache key.
        key: u64,
        /// The sample ordinal.
        sample: u64,
        /// Absolute expiry (ms since epoch, `0` = never).
        expires_at_ms: u64,
        /// The request stored for collision disambiguation.
        request: &'a CompletionRequest,
        /// The cached completion.
        completion: &'a Completion,
    },
    /// Mark `key` most recently used.
    Touch(u64),
    /// Drop `key`.
    Invalidate(u64),
}

/// What [`load_shard`] recovered from disk.
pub(crate) struct LoadedShard {
    /// Snapshot entries (as leading puts) followed by WAL ops, in replay
    /// order.
    pub ops: Vec<LoadedOp>,
    /// Records currently resident in the WAL file (compaction accounting).
    pub wal_records: u64,
}

/// The snapshot path for shard `index`.
pub(crate) fn snapshot_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:02}.snap"))
}

/// The WAL path for shard `index`.
pub(crate) fn wal_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:02}.wal"))
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

/// FNV-1a over a byte slice — the record checksum. (Also reused by the
/// shared-mode index files in `cache.rs`, which frame with
/// [`write_frame`]/[`scan_frames`] under their own magic.)
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over a record body; every getter returns `None`
/// past the end instead of panicking.
struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn exhausted(&self) -> bool {
        self.at == self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// Entry codec
// ---------------------------------------------------------------------------

fn role_tag(role: Role) -> u8 {
    match role {
        Role::System => 0,
        Role::User => 1,
        Role::Assistant => 2,
    }
}

fn role_from(tag: u8) -> Option<Role> {
    match tag {
        0 => Some(Role::System),
        1 => Some(Role::User),
        2 => Some(Role::Assistant),
        _ => None,
    }
}

fn model_tag(model: ModelChoice) -> u8 {
    match model {
        ModelChoice::Default => 0,
        ModelChoice::Gpt35 => 1,
        ModelChoice::Gpt4 => 2,
    }
}

fn model_from(tag: u8) -> Option<ModelChoice> {
    match tag {
        0 => Some(ModelChoice::Default),
        1 => Some(ModelChoice::Gpt35),
        2 => Some(ModelChoice::Gpt4),
        _ => None,
    }
}

/// `None` TTLs are stored as this sentinel (an entry cannot meaningfully
/// live 2^64−1 ms anyway).
const TTL_NONE: u64 = u64::MAX;

pub(crate) fn encode_entry(out: &mut Vec<u8>, record: &WalRecord<'_>) {
    let WalRecord::Put {
        key,
        sample,
        expires_at_ms,
        request,
        completion,
    } = record
    else {
        unreachable!("encode_entry takes put records only");
    };
    put_u64(out, *key);
    put_u64(out, *sample);
    put_u64(out, *expires_at_ms);
    put_u64(out, request.temperature.to_bits());
    out.push(model_tag(request.options.model));
    out.push(match request.options.cache {
        CachePolicy::Use => 0,
        CachePolicy::Bypass => 1,
    });
    put_u64(
        out,
        request
            .options
            .ttl
            .map(|t| t.as_millis() as u64)
            .unwrap_or(TTL_NONE),
    );
    put_u32(out, request.messages.len() as u32);
    for message in &request.messages {
        out.push(role_tag(message.role));
        put_str(out, &message.content);
    }
    put_str(out, &completion.text);
    put_u64(out, completion.usage.prompt_tokens as u64);
    put_u64(out, completion.usage.completion_tokens as u64);
    put_u64(out, completion.latency.as_nanos() as u64);
}

fn decode_entry(dec: &mut Dec<'_>) -> Option<DiskEntry> {
    let key = dec.u64()?;
    let sample = dec.u64()?;
    let expires_at_ms = dec.u64()?;
    let temperature = f64::from_bits(dec.u64()?);
    let model = model_from(dec.u8()?)?;
    let cache = match dec.u8()? {
        0 => CachePolicy::Use,
        1 => CachePolicy::Bypass,
        _ => return None,
    };
    let ttl = match dec.u64()? {
        TTL_NONE => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    };
    let message_count = dec.u32()? as usize;
    if message_count > MAX_RECORD_LEN {
        return None;
    }
    let mut messages = Vec::with_capacity(message_count.min(64));
    for _ in 0..message_count {
        let role = role_from(dec.u8()?)?;
        let content = dec.str()?;
        messages.push(ChatMessage { role, content });
    }
    let text = dec.str()?;
    let prompt_tokens = dec.u64()? as usize;
    let completion_tokens = dec.u64()? as usize;
    let latency = std::time::Duration::from_nanos(dec.u64()?);
    Some(DiskEntry {
        key,
        sample,
        expires_at_ms,
        request: CompletionRequest {
            messages,
            temperature,
            // The request timeout and deadline are per-process service
            // advice (how long a network backend may spend); they are
            // neither identity nor worth persisting, so reloaded entries
            // carry none.
            options: RequestOptions {
                model,
                cache,
                ttl,
                timeout: None,
                deadline: None,
                hedge: false,
                trace: None,
            },
        },
        completion: Completion {
            text,
            usage: TokenUsage {
                prompt_tokens,
                completion_tokens,
            },
            latency,
        },
    })
}

/// Decodes one standalone entry body (a shared-store object): the
/// [`encode_entry`] layout, required to consume the whole buffer.
pub(crate) fn decode_entry_bytes(bytes: &[u8]) -> Option<DiskEntry> {
    let mut dec = Dec::new(bytes);
    let entry = decode_entry(&mut dec)?;
    dec.exhausted().then_some(entry)
}

fn encode_wal_record(out: &mut Vec<u8>, record: &WalRecord<'_>) {
    match record {
        WalRecord::Put { .. } => {
            out.push(OP_PUT);
            encode_entry(out, record);
        }
        WalRecord::Touch(key) => {
            out.push(OP_TOUCH);
            put_u64(out, *key);
        }
        WalRecord::Invalidate(key) => {
            out.push(OP_INVALIDATE);
            put_u64(out, *key);
        }
    }
}

fn decode_wal_record(body: &[u8]) -> Option<LoadedOp> {
    let mut dec = Dec::new(body);
    let op = match dec.u8()? {
        OP_PUT => LoadedOp::Put(decode_entry(&mut dec)?),
        OP_TOUCH => LoadedOp::Touch(dec.u64()?),
        OP_INVALIDATE => LoadedOp::Invalidate(dec.u64()?),
        _ => return None,
    };
    dec.exhausted().then_some(op)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

pub(crate) fn header(magic: [u8; 4]) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&magic);
    h[4..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

pub(crate) fn write_frame(out: &mut Vec<u8>, body: &[u8]) {
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
    put_u64(out, fnv64(body));
}

/// Splits a file's bytes into verified record bodies.
///
/// Returns `None` when the header is missing or foreign (callers treat the
/// whole file as "rewrite from scratch"); otherwise each body is paired
/// with the byte offset *after* its frame, so a caller that fails to decode
/// a body can truncate the file right before it. The first
/// missing/oversized/corrupt frame ends the scan: a torn append costs the
/// records it tore and nothing before them.
#[allow(clippy::type_complexity)]
pub(crate) fn scan_frames(bytes: &[u8], magic: [u8; 4]) -> Option<Vec<(&[u8], usize)>> {
    if bytes.len() < HEADER_LEN || bytes[..HEADER_LEN] != header(magic) {
        return None;
    }
    let mut bodies = Vec::new();
    let mut at = HEADER_LEN;
    while let Some(len_bytes) = bytes.get(at..at + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        if len > MAX_RECORD_LEN {
            break;
        }
        let body_start = at + 4;
        let Some(body) = bytes.get(body_start..body_start + len) else {
            break;
        };
        let check_start = body_start + len;
        let Some(check) = bytes.get(check_start..check_start + 8) else {
            break;
        };
        if u64::from_le_bytes(check.try_into().unwrap()) != fnv64(body) {
            break;
        }
        at = check_start + 8;
        bodies.push((body, at));
    }
    Some(bodies)
}

// ---------------------------------------------------------------------------
// File operations
// ---------------------------------------------------------------------------

fn read_file(path: &Path) -> io::Result<Option<Vec<u8>>> {
    match File::open(path) {
        Ok(mut file) => {
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            Ok(Some(bytes))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Recovers one shard's durable state.
///
/// Never fails on *content*: unreadable snapshots are discarded, and the
/// WAL is truncated back to its last fully *decodable* record — whether the
/// tail failed its checksum (torn append) or checksummed but no longer
/// decodes (format drift, a byte flip that survived FNV) — so future
/// appends always land where a later load will replay them. I/O errors
/// (permissions, a directory in the way) do surface, so the caller can fall
/// back to an in-memory cache.
pub(crate) fn load_shard(dir: &Path, index: usize) -> io::Result<LoadedShard> {
    let mut ops = Vec::new();

    if let Some(bytes) = read_file(&snapshot_path(dir, index))? {
        for (body, _) in scan_frames(&bytes, SNAP_MAGIC).unwrap_or_default() {
            let mut dec = Dec::new(body);
            match decode_entry(&mut dec) {
                Some(entry) if dec.exhausted() => ops.push(LoadedOp::Put(entry)),
                // A frame that checksums but no longer decodes is a format
                // drift inside one record: stop trusting the rest. (The
                // stale tail is rewritten away at the next compaction.)
                _ => break,
            }
        }
    }

    let mut wal_records = 0u64;
    let path = wal_path(dir, index);
    if let Some(bytes) = read_file(&path)? {
        // Everything past the last decodable record must be cut away:
        // appends land at the end of the file, and replay stops at the
        // first bad frame — a poison frame left in place would orphan every
        // record written after it (including invalidations).
        let mut keep_len = 0usize; // foreign/missing header: rewrite whole file
        if let Some(frames) = scan_frames(&bytes, WAL_MAGIC) {
            keep_len = HEADER_LEN;
            for (body, frame_end) in frames {
                match decode_wal_record(body) {
                    Some(op) => {
                        ops.push(op);
                        wal_records += 1;
                        keep_len = frame_end;
                    }
                    None => break,
                }
            }
        }
        if keep_len < bytes.len() {
            OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(keep_len as u64)?;
        }
    }

    Ok(LoadedShard { ops, wal_records })
}

/// Appends records to a shard's WAL, creating the file (with its header)
/// when absent. Returns the number of records written.
pub(crate) fn append_wal(dir: &Path, index: usize, records: &[WalRecord<'_>]) -> io::Result<u64> {
    if records.is_empty() {
        return Ok(0);
    }
    let path = wal_path(dir, index);
    let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
    let mut out = Vec::new();
    if file.metadata()?.len() == 0 {
        out.extend_from_slice(&header(WAL_MAGIC));
    }
    let mut body = Vec::new();
    for record in records {
        body.clear();
        encode_wal_record(&mut body, record);
        write_frame(&mut out, &body);
    }
    file.write_all(&out)?;
    file.flush()?;
    Ok(records.len() as u64)
}

/// Atomically replaces a shard's snapshot with `entries` (LRU-first put
/// records) and truncates its WAL back to a bare header. Returns the number
/// of entries written.
///
/// Both replacements go through [`crate::store::write_atomic`], which
/// renames a *uniquely named* temporary into place: two caches flushing the
/// same directory (e.g. a drop-time flush racing another process's
/// compaction) each publish a complete file and the last rename wins whole
/// — the old fixed `shard-NN.snap.tmp` name let one writer truncate the
/// other's in-flight temporary and then rename garbage into place.
pub(crate) fn write_snapshot(
    dir: &Path,
    index: usize,
    entries: &[WalRecord<'_>],
) -> io::Result<u64> {
    let mut out = Vec::new();
    out.extend_from_slice(&header(SNAP_MAGIC));
    let mut body = Vec::new();
    for entry in entries {
        body.clear();
        encode_entry(&mut body, entry);
        write_frame(&mut out, &body);
    }
    crate::store::write_atomic(&snapshot_path(dir, index), &out)?;
    crate::store::write_atomic(&wal_path(dir, index), &header(WAL_MAGIC))?;
    Ok(entries.len() as u64)
}
