//! The sharded prompt→completion cache.
//!
//! Keys are full [`CompletionRequest`]s plus the sample ordinal (so resends
//! of an identical prompt by a retry loop are distinct entries). Entries are
//! spread across [`SHARD_COUNT`] mutex-guarded segments by an FNV-1a hash, so
//! concurrent workers rarely contend on the same lock. Each shard evicts in
//! FIFO order once it reaches its capacity share.
//!
//! Caveat for non-deterministic backends: the cache stores completions
//! whether or not downstream validation accepts them. With the workspace's
//! simulated models this is lossless (responses are pure per request), but a
//! temperature-sampled network backend retried *across* separate
//! `compile()` invocations would replay its earlier rejected samples. Cache
//! invalidation on validation failure is tracked in ROADMAP.md.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use askit_llm::{Completion, CompletionRequest};

/// Number of independent cache segments.
pub const SHARD_COUNT: usize = 16;

/// Counter snapshot of a [`CompletionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the model.
    pub misses: u64,
    /// Completions stored.
    pub insertions: u64,
    /// Entries dropped to respect capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached completion, keyed by the request that produced it.
struct CacheEntry {
    /// The exact request (kept to disambiguate 64-bit hash collisions).
    request: CompletionRequest,
    /// The sample ordinal the completion was produced under.
    sample: u64,
    /// The completion served on hits.
    completion: Completion,
}

/// One mutex-guarded segment.
#[derive(Default)]
struct Shard {
    entries: HashMap<u64, CacheEntry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
}

/// A concurrency-friendly completion cache (see the [module docs](self)).
pub struct CompletionCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for CompletionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CompletionCache {
    /// Creates a cache holding at most `capacity` completions (rounded up to
    /// a multiple of [`SHARD_COUNT`]).
    pub fn new(capacity: usize) -> Self {
        CompletionCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard: capacity.div_ceil(SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cache key: the request's canonical fingerprint salted with the
    /// sample ordinal (see [`CompletionRequest::fingerprint`]).
    fn key(request: &CompletionRequest, sample: u64) -> u64 {
        request.fingerprint(sample)
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Looks up a completion, counting the hit or miss.
    pub fn get(&self, request: &CompletionRequest, sample: u64) -> Option<Completion> {
        let key = Self::key(request, sample);
        let shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let found = shard
            .entries
            .get(&key)
            .filter(|entry| entry.sample == sample && entry.request == *request);
        match found {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.completion.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a completion, evicting the oldest entry of the target shard
    /// when it is full.
    pub fn put(&self, request: &CompletionRequest, sample: u64, completion: Completion) {
        let key = Self::key(request, sample);
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match shard.entries.entry(key) {
            Entry::Occupied(mut slot) => {
                // Same key raced in twice (or a hash collision): keep the
                // newest completion, no order change.
                slot.insert(CacheEntry {
                    request: request.clone(),
                    sample,
                    completion,
                });
            }
            Entry::Vacant(slot) => {
                slot.insert(CacheEntry {
                    request: request.clone(),
                    sample,
                    completion,
                });
                shard.order.push_back(key);
                self.insertions.fetch_add(1, Ordering::Relaxed);
                while shard.order.len() > self.capacity_per_shard {
                    if let Some(oldest) = shard.order.pop_front() {
                        shard.entries.remove(&oldest);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .entries
                        .len()
                })
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_llm::TokenUsage;
    use std::time::Duration;

    fn request(prompt: &str) -> CompletionRequest {
        CompletionRequest::from_prompt(prompt)
    }

    fn completion(text: &str) -> Completion {
        Completion {
            text: text.to_owned(),
            usage: TokenUsage {
                prompt_tokens: 1,
                completion_tokens: 1,
            },
            latency: Duration::from_millis(5),
        }
    }

    #[test]
    fn hit_after_put_and_sample_isolation() {
        let cache = CompletionCache::new(64);
        let req = request("q");
        assert!(cache.get(&req, 0).is_none());
        cache.put(&req, 0, completion("a"));
        assert_eq!(cache.get(&req, 0).unwrap().text, "a");
        // The same prompt at a different sample ordinal is a different entry.
        assert!(cache.get(&req, 1).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn temperature_distinguishes_requests() {
        let cache = CompletionCache::new(64);
        let mut warm = request("q");
        warm.temperature = 1.0;
        let mut cold = request("q");
        cold.temperature = 0.0;
        cache.put(&warm, 0, completion("warm"));
        assert!(cache.get(&cold, 0).is_none());
        assert_eq!(cache.get(&warm, 0).unwrap().text, "warm");
    }

    #[test]
    fn capacity_evicts_fifo_and_counts() {
        // Capacity 16 → one slot per shard; every extra insert into an
        // occupied shard evicts that shard's oldest entry.
        let cache = CompletionCache::new(SHARD_COUNT);
        for i in 0..200 {
            let req = request(&format!("prompt {i}"));
            cache.put(&req, 0, completion("x"));
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, 200);
        assert!(stats.entries <= SHARD_COUNT, "entries {}", stats.entries);
        assert_eq!(stats.evictions, stats.insertions - stats.entries as u64);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = std::sync::Arc::new(CompletionCache::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        let req = request(&format!("shared {}", i % 25));
                        if let Some(hit) = cache.get(&req, 0) {
                            assert_eq!(hit.text, format!("answer {}", i % 25));
                        } else {
                            cache.put(&req, 0, completion(&format!("answer {}", i % 25)));
                        }
                        let _ = t;
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert_eq!(stats.entries, 25);
    }
}
