//! The sharded prompt→completion cache.
//!
//! Keys are full [`CompletionRequest`]s plus the sample ordinal (so resends
//! of an identical prompt by a retry loop are distinct entries). The request
//! fingerprint covers the conversation, the temperature, *and* the routed
//! model choice, so the same prompt served by different models occupies
//! distinct entries. Entries are spread across [`SHARD_COUNT`] mutex-guarded
//! segments by an FNV-1a hash, so concurrent workers rarely contend on the
//! same lock. Each shard evicts its **least-recently-used** entry once it
//! reaches its capacity share (hits refresh recency).
//!
//! Completions the caller rejects (downstream validation failure) are
//! evicted through [`CompletionCache::remove`] — the engine wires this to
//! [`askit_llm::LanguageModel::reject_completion`] — so a
//! temperature-sampled backend retried across invocations is re-asked
//! instead of being replayed a known-bad answer.
//!
//! # Durability
//!
//! A cache opened with [`CompletionCache::open`] is **persistent**: each
//! shard mirrors itself to a snapshot + write-ahead-log pair under the cache
//! directory (format in [`crate::persist`](self)), so a later process
//! warm-starts from the same entries, in the same recency order, with
//! rejected completions still gone. Durability is *batched*, not per-write:
//! mutations accumulate in memory and reach disk on
//! [`CompletionCache::persist`] (which the engine exposes and also runs on
//! drop). Entries may carry a TTL — lapsed entries are dropped lazily on
//! [`get`](CompletionCache::get), swept when a snapshot is written, and
//! filtered out at load.
//!
//! # Locking discipline
//!
//! Every public operation takes its target shard's lock **exactly once** and
//! performs all of its work — entry map, recency stamp queue, and the
//! pending WAL buffer — under that one acquisition. The stamp queue and the
//! WAL buffer must never be mutated outside the shard lock: a touch that
//! raced a remove across two acquisitions could stamp a dead key or log a
//! put after its invalidation record, resurrecting a rejected completion on
//! reload. The 16-thread single-shard stress test in
//! `tests/cache_concurrency.rs` exercises exactly that interleaving.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::lock;
use std::time::Duration;

use askit_llm::{Completion, CompletionRequest};

use crate::cas::Cid;
use crate::persist::{self, now_ms, LoadedOp, WalRecord};
use crate::store::{write_atomic, ObjectStore};

/// Number of independent cache segments.
pub const SHARD_COUNT: usize = 16;

/// Process-wide hit/miss counters mirrored into the global metrics
/// registry (`askit_cache_{hits,misses}_total`), alongside the cache's own
/// per-instance atomics. Registered lazily on first cache traffic.
struct CacheMetrics {
    hits: std::sync::Arc<askit_obs::Counter>,
    misses: std::sync::Arc<askit_obs::Counter>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: std::sync::OnceLock<CacheMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = askit_obs::metrics::global();
        CacheMetrics {
            hits: registry.counter(
                "askit_cache_hits_total",
                "Completion-cache probes answered from the cache",
                &[],
            ),
            misses: registry.counter(
                "askit_cache_misses_total",
                "Completion-cache probes that fell through to the backend",
                &[],
            ),
        }
    })
}

// ---------------------------------------------------------------------------
// Shared-mode index files
// ---------------------------------------------------------------------------
//
// A cache opened with [`CompletionCache::open_shared`] keeps entry *bodies*
// in the directory's content-addressed [`ObjectStore`] (write-once, named
// by CID, so concurrent writers dedupe) and per shard one small **index**
// file listing the live entries in LRU order:
//
// ```text
// refs/completions/shard-NN.idx
//   header: magic "ACIX" + format version
//   frames: len | body | fnv64(body)      (persist.rs framing)
//   body:   key u64 | sample u64 | expires_at_ms u64
//           | request_cid u128 | object_cid u128
// ```
//
// The index is the only mutable file, and it is only ever rewritten whole
// (unique tempfile + rename) while holding the shard's advisory file lock —
// so persistence is a read-merge-write, never a blind overwrite.

/// Magic prefix of shared-mode index files.
const INDEX_MAGIC: [u8; 4] = *b"ACIX";

/// One line of a shared shard index: where one live entry's body lives and
/// when it lapses. Expiry is index-side state (not part of the object), so
/// identical completions cached under different TTL configurations still
/// collapse to one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexRecord {
    /// The 64-bit cache fingerprint (shard routing + fast lookup).
    key: u64,
    /// The sample ordinal.
    sample: u64,
    /// Absolute expiry in ms since the epoch; `0` = never.
    expires_at_ms: u64,
    /// CID of the request's identity bytes — the 128-bit disambiguation of
    /// `key`, checkable without fetching the object.
    request_cid: Cid,
    /// CID of the entry body in the object store.
    object_cid: Cid,
}

fn encode_index_record(out: &mut Vec<u8>, record: &IndexRecord) {
    out.extend_from_slice(&record.key.to_le_bytes());
    out.extend_from_slice(&record.sample.to_le_bytes());
    out.extend_from_slice(&record.expires_at_ms.to_le_bytes());
    out.extend_from_slice(&record.request_cid.as_u128().to_le_bytes());
    out.extend_from_slice(&record.object_cid.as_u128().to_le_bytes());
}

fn decode_index_record(body: &[u8]) -> Option<IndexRecord> {
    if body.len() != 8 * 3 + 16 * 2 {
        return None;
    }
    let u64_at = |at: usize| u64::from_le_bytes(body[at..at + 8].try_into().unwrap());
    let u128_at = |at: usize| u128::from_le_bytes(body[at..at + 16].try_into().unwrap());
    Some(IndexRecord {
        key: u64_at(0),
        sample: u64_at(8),
        expires_at_ms: u64_at(16),
        request_cid: Cid::from_u128(u128_at(24)),
        object_cid: Cid::from_u128(u128_at(40)),
    })
}

/// The shared index path for shard `index`.
fn index_path(dir: &Path, index: usize) -> PathBuf {
    dir.join("refs")
        .join("completions")
        .join(format!("shard-{index:02}.idx"))
}

/// The advisory-lock name guarding shard `index`'s index file.
fn shard_lock_name(index: usize) -> String {
    format!("completions-shard-{index:02}")
}

/// Reads a shared shard index: absent file = empty, corrupt frames end the
/// scan (the records before them survive), a foreign header discards the
/// file.
fn read_index(path: &Path) -> std::io::Result<Vec<IndexRecord>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    for (body, _) in persist::scan_frames(&bytes, INDEX_MAGIC).unwrap_or_default() {
        match decode_index_record(body) {
            Some(record) => records.push(record),
            None => break,
        }
    }
    Ok(records)
}

/// Atomically replaces a shared shard index (callers hold the shard lock).
fn write_index(path: &Path, records: &[IndexRecord]) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(6 + records.len() * 68);
    out.extend_from_slice(&persist::header(INDEX_MAGIC));
    let mut body = Vec::with_capacity(56);
    for record in records {
        body.clear();
        encode_index_record(&mut body, record);
        persist::write_frame(&mut out, &body);
    }
    write_atomic(path, &out)
}

/// Encodes a live entry as a shared-store object body: the snapshot entry
/// layout with the expiry zeroed (expiry lives in the index record), so the
/// same completion under any TTL configuration is one object.
fn encode_object_body(key: u64, entry: &CacheEntry) -> Vec<u8> {
    let mut body = Vec::new();
    persist::encode_entry(
        &mut body,
        &WalRecord::Put {
            key,
            sample: entry.sample,
            expires_at_ms: 0,
            request: &entry.request,
            completion: &entry.completion,
        },
    );
    body
}

/// Counter snapshot of a [`CompletionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the model.
    pub misses: u64,
    /// Completions stored.
    pub insertions: u64,
    /// Entries dropped to respect capacity (LRU order).
    pub evictions: u64,
    /// Entries evicted because the caller rejected the completion
    /// (validation failure — see [`CompletionCache::remove`]).
    pub invalidations: u64,
    /// Entries restored from disk when the cache was opened.
    pub loaded: u64,
    /// Entries dropped because their TTL lapsed (on lookup, at snapshot
    /// sweep, or at load).
    pub expired: u64,
    /// Records written to disk by [`CompletionCache::persist`] (WAL appends
    /// plus snapshot entries at compaction).
    pub flushed: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    /// One summary line, e.g.
    /// `hits 120 / misses 30 (80.0% hit rate), 150 entries, 2 evicted, 1
    /// invalidated, 0 expired, 10 loaded, 40 flushed`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits {} / misses {} ({:.1}% hit rate), {} entries, {} evicted, \
             {} invalidated, {} expired, {} loaded, {} flushed",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.evictions,
            self.invalidations,
            self.expired,
            self.loaded,
            self.flushed,
        )
    }
}

/// One cached completion, keyed by the request that produced it.
struct CacheEntry {
    /// The exact request (kept to disambiguate 64-bit hash collisions).
    request: CompletionRequest,
    /// The sample ordinal the completion was produced under.
    sample: u64,
    /// The completion served on hits.
    completion: Completion,
    /// The shard-clock reading of the entry's most recent use. Only the
    /// queue pair carrying this exact stamp is live; older pairs for the
    /// same key are stale and skipped at eviction time.
    stamp: u64,
    /// Absolute expiry in milliseconds since the UNIX epoch; `0` = never.
    expires_at_ms: u64,
    /// The caller rejected this completion (validation failure) *this
    /// session*: lookups miss so a retry re-asks a sampled backend, but the
    /// body still persists — rejection is session advice, not cache
    /// identity, and on a warm start the deterministic replay walks the
    /// same (fully cached) retry conversation instead of re-querying the
    /// model. Never serialized; a loaded entry always starts unrejected.
    rejected: bool,
}

impl CacheEntry {
    fn is_expired(&self, now: u64) -> bool {
        self.expires_at_ms != 0 && now >= self.expires_at_ms
    }
}

/// A mutation waiting to be written to the shard's WAL. Puts store only the
/// key: the entry body is serialized from the live map at flush time, so an
/// entry that was meanwhile evicted or invalidated is never flushed (its
/// invalidation record is).
enum PendingOp {
    Put(u64),
    Touch(u64),
    Invalidate(u64),
}

impl PendingOp {
    fn key(&self) -> u64 {
        match self {
            PendingOp::Put(key) | PendingOp::Touch(key) | PendingOp::Invalidate(key) => *key,
        }
    }
}

/// One mutex-guarded segment.
///
/// Recency is tracked with a stamped queue so the hot paths stay O(1)
/// amortized under the shard lock: a hit pushes a fresh `(key, stamp)` pair
/// instead of scanning for the old one, eviction pops and discards pairs
/// whose stamp no longer matches the entry, and the queue is compacted
/// whenever stale pairs dominate. The queue, the entry map, and the pending
/// WAL buffer are only ever mutated together, under one lock acquisition
/// (see the module docs).
#[derive(Default)]
struct Shard {
    entries: HashMap<u64, CacheEntry>,
    /// `(key, stamp)` pairs in use order: front = least recently used.
    /// May contain stale pairs (superseded stamps, removed keys).
    order: VecDeque<(u64, u64)>,
    /// Monotonic use counter stamping every insert and touch.
    clock: u64,
    /// Whether mutations should be buffered for the WAL.
    persistent: bool,
    /// Mutations since the last flush (persistent shards only).
    pending: Vec<PendingOp>,
    /// Records resident in the on-disk WAL (compaction accounting).
    wal_records: u64,
}

impl Shard {
    /// Buffers one mutation for the WAL (persistent shards only), keeping
    /// the buffer bounded: hit-heavy workloads push one touch per lookup,
    /// so once the buffer dwarfs the live entry set it is compressed down
    /// to one record per key (an exact rewrite — see
    /// [`Shard::compress_pending`]).
    fn note(&mut self, op: PendingOp) {
        if !self.persistent {
            return;
        }
        self.pending.push(op);
        if self.pending.len() >= 1024 && self.pending.len() >= 4 * self.entries.len() {
            self.compress_pending();
        }
    }

    /// Rewrites the pending buffer to at most one record per key without
    /// changing what a replay reconstructs. Correctness argument: replayed
    /// state is (a) which keys are live, (b) each live key's body, and
    /// (c) recency order. Puts serialize from the live map at flush time,
    /// so only each key's *last* pending op matters for (b) and (c); keys
    /// live now need a Put (if one was buffered — the body may have
    /// changed) or a Touch (recency only), and keys no longer live need an
    /// Invalidate so earlier on-disk records never resurrect them.
    fn compress_pending(&mut self) {
        // key → (index of last op for the key, whether any op was a put)
        let mut last: HashMap<u64, (usize, bool)> = HashMap::new();
        for (i, op) in self.pending.iter().enumerate() {
            let put = matches!(op, PendingOp::Put(_));
            let slot = last.entry(op.key()).or_insert((i, false));
            slot.0 = i;
            slot.1 |= put;
        }
        let old = std::mem::take(&mut self.pending);
        let entries = &self.entries;
        self.pending = old
            .into_iter()
            .enumerate()
            .filter_map(|(i, op)| {
                let key = op.key();
                let (last_index, ever_put) = last[&key];
                if i != last_index {
                    return None;
                }
                Some(if !entries.contains_key(&key) {
                    PendingOp::Invalidate(key)
                } else if ever_put {
                    PendingOp::Put(key)
                } else {
                    PendingOp::Touch(key)
                })
            })
            .collect();
    }

    /// Marks an existing entry most-recently-used.
    fn touch(&mut self, key: u64) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.stamp = stamp;
            self.order.push_back((key, stamp));
            self.note(PendingOp::Touch(key));
        }
    }

    /// Evicts least-recently-used entries until at most `capacity` remain;
    /// returns how many were dropped. Compacts the queue when stale pairs
    /// outnumber live ones (amortized O(1) per operation). Evictions are
    /// logged as invalidation records so a reload never resurrects them.
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > capacity {
            let Some((key, stamp)) = self.order.pop_front() else {
                break;
            };
            if self
                .entries
                .get(&key)
                .is_some_and(|entry| entry.stamp == stamp)
            {
                self.entries.remove(&key);
                self.note(PendingOp::Invalidate(key));
                evicted += 1;
            }
        }
        if self.order.len() > self.entries.len().saturating_mul(2).max(capacity * 2) {
            let entries = &self.entries;
            self.order
                .retain(|(key, stamp)| entries.get(key).is_some_and(|entry| entry.stamp == *stamp));
        }
        evicted
    }

    /// Replays one durable operation at load time. `expired_keys` collects
    /// the keys whose *final* durable state lapsed its TTL — a set, not a
    /// counter, so several stale put records for one key (or a lapsed put
    /// later superseded by a live one) count as at most one expiry.
    fn replay(&mut self, op: LoadedOp, now: u64, expired_keys: &mut HashSet<u64>) {
        match op {
            LoadedOp::Put(entry) => {
                // Verify the stored key against the live fingerprint
                // algorithm; a mismatch means the record predates a format
                // change and must not be served.
                if entry.request.fingerprint(entry.sample) != entry.key {
                    return;
                }
                // An expired put still supersedes earlier state for its key.
                if entry.expires_at_ms != 0 && now >= entry.expires_at_ms {
                    self.entries.remove(&entry.key);
                    expired_keys.insert(entry.key);
                    return;
                }
                self.clock += 1;
                let stamp = self.clock;
                self.order.push_back((entry.key, stamp));
                self.entries.insert(
                    entry.key,
                    CacheEntry {
                        request: entry.request,
                        sample: entry.sample,
                        completion: entry.completion,
                        stamp,
                        expires_at_ms: entry.expires_at_ms,
                        rejected: false,
                    },
                );
                expired_keys.remove(&entry.key);
            }
            LoadedOp::Touch(key) => {
                // Recency only: must not create a pending record during load.
                self.clock += 1;
                let stamp = self.clock;
                if let Some(entry) = self.entries.get_mut(&key) {
                    entry.stamp = stamp;
                    self.order.push_back((key, stamp));
                }
            }
            LoadedOp::Invalidate(key) => {
                self.entries.remove(&key);
                // Dropped for rejection (or eviction), not for its TTL.
                expired_keys.remove(&key);
            }
        }
    }
}

/// A concurrency-friendly completion cache (see the module docs above).
pub struct CompletionCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    /// Persistence root; `None` = in-memory only.
    dir: Option<PathBuf>,
    /// The directory's content-addressed store; `Some` = shared mode (the
    /// durable state is a per-shard index into the store, merged under an
    /// advisory file lock, instead of this process's private snapshot+WAL).
    store: Option<ObjectStore>,
    /// TTL applied to entries whose request carries none.
    default_ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    loaded: AtomicU64,
    expired: AtomicU64,
    flushed: AtomicU64,
}

impl std::fmt::Debug for CompletionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("dir", &self.dir)
            .field("default_ttl", &self.default_ttl)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CompletionCache {
    /// Creates an in-memory cache holding at most `capacity` completions
    /// (rounded up to a multiple of [`SHARD_COUNT`]).
    pub fn new(capacity: usize) -> Self {
        CompletionCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard: capacity.div_ceil(SHARD_COUNT).max(1),
            dir: None,
            store: None,
            default_ttl: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            loaded: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
        }
    }

    /// Sets the TTL stamped on entries whose request does not carry its own
    /// ([`askit_llm::RequestOptions::ttl`] wins per entry). `None` = entries
    /// never expire. A zero TTL expires entries immediately — effectively a
    /// write-only cache, useful for tests.
    #[must_use]
    pub fn with_default_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.default_ttl = ttl;
        self
    }

    /// Opens a **persistent** cache rooted at `dir`, restoring whatever a
    /// previous process [`persist`](CompletionCache::persist)ed there.
    ///
    /// Content problems never fail the open: a corrupt snapshot is
    /// discarded, a torn WAL tail is dropped (and truncated away so future
    /// appends stay readable), and entries whose TTL lapsed while the cache
    /// was cold are skipped — all visible in [`CacheStats::loaded`] /
    /// [`CacheStats::expired`].
    ///
    /// No cross-process locking is performed: two live processes sharing one
    /// directory will race each other's flushes (each flush lands whole —
    /// snapshot replacement is atomic — but the last writer's view wins per
    /// shard). For a directory that is *meant* to be shared by concurrent
    /// processes, use [`CompletionCache::open_shared`], whose flushes merge
    /// under per-shard advisory file locks instead.
    ///
    /// # Errors
    ///
    /// I/O errors only (the directory cannot be created, a shard file cannot
    /// be read or truncated).
    pub fn open(
        capacity: usize,
        dir: impl Into<PathBuf>,
        default_ttl: Option<Duration>,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut cache = CompletionCache::new(capacity).with_default_ttl(default_ttl);
        let now = now_ms();
        let mut loaded = 0u64;
        let mut expired = 0u64;
        let mut evicted = 0u64;
        for (index, slot) in cache.shards.iter().enumerate() {
            let recovered = persist::load_shard(&dir, index)?;
            let mut shard = lock(slot);
            shard.persistent = true;
            shard.wal_records = recovered.wal_records;
            let mut expired_keys = HashSet::new();
            for op in recovered.ops {
                shard.replay(op, now, &mut expired_keys);
            }
            expired += expired_keys.len() as u64;
            // Respect a capacity smaller than what the directory holds.
            evicted += shard.evict_to(cache.capacity_per_shard);
            loaded += shard.entries.len() as u64;
        }
        cache.loaded.store(loaded, Ordering::Relaxed);
        cache.expired.store(expired, Ordering::Relaxed);
        cache.evictions.store(evicted, Ordering::Relaxed);
        cache.dir = Some(dir);
        Ok(cache)
    }

    /// Opens a **shared** persistent cache rooted at `dir`: any number of
    /// concurrent processes may open the same directory and their flushes
    /// *merge* instead of overwriting each other.
    ///
    /// Entry bodies live in the directory's content-addressed
    /// [`ObjectStore`] (write-once, so equal completions from different
    /// workers dedupe to one object) and each shard's live set is a small
    /// index file updated only under that shard's advisory file lock — see
    /// [`CompletionCache::persist`] for the merge protocol. Loading takes
    /// each shard's lock briefly, so an open concurrent with another
    /// process's flush sees a complete index, never a torn one.
    ///
    /// Everything [`CompletionCache::open`] tolerates, this mode tolerates
    /// too: a damaged object or index record degrades to a miss (the entry
    /// is simply not loaded), lapsed TTLs are filtered, and every loaded
    /// entry's key is re-verified against the live fingerprint algorithm
    /// *and* its 128-bit identity CID.
    ///
    /// # Errors
    ///
    /// I/O errors only (directories cannot be created, a lock cannot be
    /// taken, an index cannot be read).
    pub fn open_shared(
        capacity: usize,
        dir: impl Into<PathBuf>,
        default_ttl: Option<Duration>,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        let store = ObjectStore::open(&dir)?;
        std::fs::create_dir_all(dir.join("refs").join("completions"))?;
        let mut cache = CompletionCache::new(capacity).with_default_ttl(default_ttl);
        let now = now_ms();
        let mut loaded = 0u64;
        let mut expired = 0u64;
        let mut evicted = 0u64;
        for (index, slot) in cache.shards.iter().enumerate() {
            let _guard = store.lock(&shard_lock_name(index))?;
            let records = read_index(&index_path(&dir, index))?;
            let mut shard = lock(slot);
            shard.persistent = true;
            let mut expired_keys = HashSet::new();
            for record in records {
                if record.expires_at_ms != 0 && now >= record.expires_at_ms {
                    expired_keys.insert(record.key);
                    continue;
                }
                // A missing or damaged object is a miss, not an error.
                let Some(bytes) = store.get(record.object_cid)? else {
                    continue;
                };
                let Some(mut entry) = persist::decode_entry_bytes(&bytes) else {
                    continue;
                };
                // The object stores expiry as 0; the index record is the
                // truth for this directory's TTL configuration.
                entry.expires_at_ms = record.expires_at_ms;
                if entry.key != record.key || entry.sample != record.sample {
                    continue;
                }
                // 128-bit identity check: the index record must name the
                // same request the object decodes to (fast-rejects foreign
                // records without trusting 64 bits alone). `replay` then
                // re-verifies the 64-bit fingerprint algorithm itself.
                if Cid::of(&entry.request.identity_bytes(entry.sample)) != record.request_cid {
                    continue;
                }
                shard.replay(LoadedOp::Put(entry), now, &mut expired_keys);
            }
            expired += expired_keys.len() as u64;
            evicted += shard.evict_to(cache.capacity_per_shard);
            loaded += shard.entries.len() as u64;
        }
        cache.loaded.store(loaded, Ordering::Relaxed);
        cache.expired.store(expired, Ordering::Relaxed);
        cache.evictions.store(evicted, Ordering::Relaxed);
        cache.dir = Some(dir);
        cache.store = Some(store);
        Ok(cache)
    }

    /// The persistence root, when this cache is durable.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Whether this cache is in shared (multi-process) mode.
    pub fn is_shared(&self) -> bool {
        self.store.is_some()
    }

    /// The cache key: the request's canonical fingerprint salted with the
    /// sample ordinal (see [`CompletionRequest::fingerprint`]).
    fn key(request: &CompletionRequest, sample: u64) -> u64 {
        request.fingerprint(sample)
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Looks up a completion, counting the hit or miss. A hit refreshes the
    /// entry's recency (it becomes the last evicted in its shard); an entry
    /// whose TTL lapsed is dropped and reported as a miss (counted under
    /// [`CacheStats::expired`]).
    pub fn get(&self, request: &CompletionRequest, sample: u64) -> Option<Completion> {
        self.get_keyed(Self::key(request, sample), request, sample)
    }

    /// [`CompletionCache::get`] with the fingerprint already computed by the
    /// caller (`key` **must** equal `request.fingerprint(sample)`; debug
    /// builds assert it). This is the zero-rehash hot path: the engine
    /// computes one fingerprint per submission and reuses it for the probe
    /// and the post-completion insert.
    pub fn get_keyed(
        &self,
        key: u64,
        request: &CompletionRequest,
        sample: u64,
    ) -> Option<Completion> {
        debug_assert_eq!(key, Self::key(request, sample), "stale precomputed key");
        let mut shard = lock(self.shard(key));
        // Resolve the lookup to an owned verdict first so the borrow of the
        // entry map ends before the queue/pending mutations below. The
        // clock is only read for entries that actually carry a TTL — the
        // common no-TTL hot path takes no syscall under the shard lock.
        enum Verdict {
            Hit(Completion),
            Expired,
            Miss,
        }
        let verdict = match shard.entries.get(&key) {
            Some(entry) if entry.rejected => Verdict::Miss,
            Some(entry) if entry.sample == sample && entry.request.same_identity(request) => {
                if entry.expires_at_ms != 0 && entry.is_expired(now_ms()) {
                    Verdict::Expired
                } else {
                    Verdict::Hit(entry.completion.clone())
                }
            }
            _ => Verdict::Miss,
        };
        match verdict {
            Verdict::Hit(completion) => {
                shard.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                cache_metrics().hits.inc();
                Some(completion)
            }
            Verdict::Expired => {
                // Lazy expiry: drop the body now; no WAL record is needed
                // because loading re-checks expiry against the stored stamp.
                shard.entries.remove(&key);
                self.expired.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                cache_metrics().misses.inc();
                None
            }
            Verdict::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                cache_metrics().misses.inc();
                None
            }
        }
    }

    /// Stores a completion, evicting the least-recently-used entry of the
    /// target shard when it is full. The entry's TTL is the request's own
    /// ([`askit_llm::RequestOptions::ttl`]) or, absent that, the cache's
    /// default.
    pub fn put(&self, request: &CompletionRequest, sample: u64, completion: Completion) {
        self.put_keyed(Self::key(request, sample), request, sample, completion);
    }

    /// [`CompletionCache::put`] with the fingerprint already computed (see
    /// [`CompletionCache::get_keyed`]).
    pub fn put_keyed(
        &self,
        key: u64,
        request: &CompletionRequest,
        sample: u64,
        completion: Completion,
    ) {
        debug_assert_eq!(key, Self::key(request, sample), "stale precomputed key");
        let expires_at_ms = request
            .options
            .ttl
            .or(self.default_ttl)
            .map(|ttl| now_ms().saturating_add(ttl.as_millis() as u64))
            .unwrap_or(0);
        let mut shard = lock(self.shard(key));
        shard.clock += 1;
        let stamp = shard.clock;
        let fresh = !shard.entries.contains_key(&key);
        match shard.entries.entry(key) {
            Entry::Occupied(mut slot) => {
                // Same key raced in twice (or a hash collision): keep the
                // newest completion and refresh its recency. A rejected
                // entry is superseded the same way — the fresh completion
                // starts unrejected.
                slot.insert(CacheEntry {
                    request: request.clone(),
                    sample,
                    completion,
                    stamp,
                    expires_at_ms,
                    rejected: false,
                });
            }
            Entry::Vacant(slot) => {
                slot.insert(CacheEntry {
                    request: request.clone(),
                    sample,
                    completion,
                    stamp,
                    expires_at_ms,
                    rejected: false,
                });
            }
        }
        shard.order.push_back((key, stamp));
        shard.note(PendingOp::Put(key));
        if fresh {
            self.insertions.fetch_add(1, Ordering::Relaxed);
            let evicted = shard.evict_to(self.capacity_per_shard);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Whether an entry keyed by `key` is resident. Counts no statistics
    /// and refreshes no recency — this is the speculative-prefetch peek
    /// ("is this turn already warm?"), not a lookup. TTLs are deliberately
    /// not checked: a lapsed resident entry just means one speculation is
    /// skipped and the foreground path re-derives the completion.
    pub fn peek_key(&self, key: u64) -> bool {
        lock(self.shard(key)).entries.contains_key(&key)
    }

    /// Evicts the entry for `(request, sample)`, if resident, because the
    /// caller rejected its completion. Returns whether an entry was dropped
    /// (counted under [`CacheStats::invalidations`]). The recency queue's
    /// pair goes stale and is discarded lazily at eviction time; on a
    /// persistent cache an invalidation record is logged, so the rejected
    /// completion never resurrects on reload.
    pub fn remove(&self, request: &CompletionRequest, sample: u64) -> bool {
        self.remove_keyed(Self::key(request, sample), request, sample)
    }

    /// [`CompletionCache::remove`] with the fingerprint already computed
    /// (see [`CompletionCache::get_keyed`]).
    pub fn remove_keyed(&self, key: u64, request: &CompletionRequest, sample: u64) -> bool {
        debug_assert_eq!(key, Self::key(request, sample), "stale precomputed key");
        let mut shard = lock(self.shard(key));
        let resident = shard
            .entries
            .get(&key)
            .is_some_and(|entry| entry.sample == sample && entry.request.same_identity(request));
        if resident {
            shard.entries.remove(&key);
            shard.note(PendingOp::Invalidate(key));
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Marks the entry for `(request, sample)` rejected *for this session*
    /// — the advice-flavored sibling of [`CompletionCache::remove`].
    /// Subsequent same-session lookups miss (so a sampled backend is
    /// re-asked instead of replaying the known-bad answer), and the
    /// rejection is counted under [`CacheStats::invalidations`]; but unlike
    /// `remove`, the completion body still persists. The backend really did
    /// answer this for this request — rejection is a *session* judgement,
    /// not part of the entry's identity — so a later warm start replays the
    /// conversation from disk: the rejected turn hits, fails validation
    /// again, and the (also cached) retry turns follow, all without a
    /// model round trip. A fresh [`CompletionCache::put`] for the key
    /// supersedes the rejection.
    pub fn reject(&self, request: &CompletionRequest, sample: u64) -> bool {
        self.reject_keyed(Self::key(request, sample), request, sample)
    }

    /// [`CompletionCache::reject`] with the fingerprint already computed
    /// (see [`CompletionCache::get_keyed`]).
    pub fn reject_keyed(&self, key: u64, request: &CompletionRequest, sample: u64) -> bool {
        debug_assert_eq!(key, Self::key(request, sample), "stale precomputed key");
        let mut shard = lock(self.shard(key));
        if let Some(entry) = shard.entries.get_mut(&key) {
            if entry.sample == sample && entry.request.same_identity(request) && !entry.rejected {
                entry.rejected = true;
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Flushes buffered mutations to disk; a no-op (returning 0) on
    /// in-memory caches. Runs automatically when the cache is dropped.
    ///
    /// Per shard, pending records are appended to the WAL — unless the log
    /// would outgrow the live entry set, in which case the shard is
    /// **compacted**: lapsed entries are swept, the live set is rewritten as
    /// a fresh snapshot (atomic rename), and the WAL is truncated. Returns
    /// the number of records written (also accumulated in
    /// [`CacheStats::flushed`]).
    ///
    /// In **shared** mode ([`CompletionCache::open_shared`]) a flush is a
    /// per-shard *merge* instead: under the shard's advisory file lock it
    /// re-reads the on-disk index (which other processes may have advanced),
    /// applies this process's buffered operations — puts publish their
    /// bodies to the object store and upsert, touches refresh recency,
    /// invalidations delete — sweeps lapsed records, trims the union to the
    /// shard's capacity (LRU-first), and atomically republishes the index.
    /// Other processes' entries are preserved; a rejected completion stays
    /// dead because its invalidation is applied to the *merged* view.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying filesystem.
    pub fn persist(&self) -> std::io::Result<u64> {
        let Some(dir) = &self.dir else {
            return Ok(0);
        };
        if let Some(store) = &self.store {
            return self.persist_shared(dir, store);
        }
        let mut flushed = 0u64;
        let mut expired_total = 0u64;
        for (index, slot) in self.shards.iter().enumerate() {
            let mut shard = lock(slot);
            if shard.pending.is_empty() {
                continue;
            }
            // One record per key is all a replay needs; dedupe before
            // deciding between an append and a compaction.
            shard.compress_pending();
            let pending = std::mem::take(&mut shard.pending);
            let would_hold = shard.wal_records + pending.len() as u64;
            let compact = would_hold > 64.max(2 * shard.entries.len() as u64);
            if compact {
                // Sweep lapsed entries so the snapshot only carries live ones.
                let now = now_ms();
                let lapsed: Vec<u64> = shard
                    .entries
                    .iter()
                    .filter(|(_, entry)| entry.is_expired(now))
                    .map(|(key, _)| *key)
                    .collect();
                expired_total += lapsed.len() as u64;
                for key in lapsed {
                    shard.entries.remove(&key);
                }
                // Live entries in LRU order: walk the stamp queue, taking
                // each entry at its live (newest) pair only.
                let records: Vec<WalRecord<'_>> = shard
                    .order
                    .iter()
                    .filter_map(|(key, stamp)| {
                        let entry = shard.entries.get(key)?;
                        if entry.stamp != *stamp {
                            return None;
                        }
                        Some(WalRecord::Put {
                            key: *key,
                            sample: entry.sample,
                            expires_at_ms: entry.expires_at_ms,
                            request: &entry.request,
                            completion: &entry.completion,
                        })
                    })
                    .collect();
                let written = persist::write_snapshot(dir, index, &records)?;
                drop(records);
                shard.wal_records = 0;
                flushed += written;
            } else {
                let records: Vec<WalRecord<'_>> = pending
                    .iter()
                    .filter_map(|op| match op {
                        // Serialize the entry as it stands now; a put whose
                        // entry has since been evicted or replaced flushes
                        // the current truth (or nothing), never a stale body.
                        PendingOp::Put(key) => shard.entries.get(key).map(|entry| WalRecord::Put {
                            key: *key,
                            sample: entry.sample,
                            expires_at_ms: entry.expires_at_ms,
                            request: &entry.request,
                            completion: &entry.completion,
                        }),
                        PendingOp::Touch(key) => Some(WalRecord::Touch(*key)),
                        PendingOp::Invalidate(key) => Some(WalRecord::Invalidate(*key)),
                    })
                    .collect();
                let written = persist::append_wal(dir, index, &records)?;
                drop(records);
                shard.wal_records += written;
                flushed += written;
            }
        }
        self.flushed.fetch_add(flushed, Ordering::Relaxed);
        if expired_total > 0 {
            self.expired.fetch_add(expired_total, Ordering::Relaxed);
        }
        Ok(flushed)
    }

    /// The shared-mode flush: read-merge-write per shard, under that
    /// shard's advisory file lock (see [`CompletionCache::persist`]).
    fn persist_shared(&self, dir: &Path, store: &ObjectStore) -> std::io::Result<u64> {
        let now = now_ms();
        let mut flushed = 0u64;
        let mut expired_total = 0u64;
        let mut evicted_total = 0u64;
        for (index, slot) in self.shards.iter().enumerate() {
            let mut shard = lock(slot);
            if shard.pending.is_empty() {
                continue;
            }
            // At most one op per key, in last-op order — the merge below
            // then applies each key's final verdict exactly once.
            shard.compress_pending();
            let pending = std::mem::take(&mut shard.pending);

            // The critical section: everything from re-reading the index to
            // renaming its replacement happens with the shard lock held, so
            // concurrent processes serialize their read-merge-write cycles.
            let _guard = store.lock(&shard_lock_name(index))?;
            let disk = read_index(&index_path(dir, index))?;
            // `slots` keeps the merged index in recency order (front = LRU);
            // `pos` maps a key to its current slot for O(1) upsert/delete.
            let mut slots: Vec<Option<IndexRecord>> = disk.into_iter().map(Some).collect();
            let mut pos: HashMap<u64, usize> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| Some((slot.as_ref()?.key, i)))
                .collect();
            for op in &pending {
                match op {
                    PendingOp::Put(key) => match shard.entries.get(key) {
                        Some(entry) => {
                            let object_cid = store.put_bytes(&encode_object_body(*key, entry))?;
                            let request_cid = Cid::of(&entry.request.identity_bytes(entry.sample));
                            if let Some(i) = pos.remove(key) {
                                slots[i] = None;
                            }
                            pos.insert(*key, slots.len());
                            slots.push(Some(IndexRecord {
                                key: *key,
                                sample: entry.sample,
                                expires_at_ms: entry.expires_at_ms,
                                request_cid,
                                object_cid,
                            }));
                        }
                        // The entry vanished between buffering and flushing
                        // (evicted/invalidated after the last compression):
                        // its absence is the durable truth.
                        None => {
                            if let Some(i) = pos.remove(key) {
                                slots[i] = None;
                            }
                        }
                    },
                    PendingOp::Touch(key) => {
                        if let Some(i) = pos.remove(key) {
                            let record = slots[i].take();
                            if let Some(record) = record {
                                pos.insert(*key, slots.len());
                                slots.push(Some(record));
                            }
                        }
                    }
                    PendingOp::Invalidate(key) => {
                        if let Some(i) = pos.remove(key) {
                            slots[i] = None;
                        }
                    }
                }
            }
            // Sweep lapsed records and close the holes.
            let mut merged: Vec<IndexRecord> = Vec::with_capacity(pos.len());
            for record in slots.into_iter().flatten() {
                if record.expires_at_ms != 0 && now >= record.expires_at_ms {
                    expired_total += 1;
                } else {
                    merged.push(record);
                }
            }
            // The union of several processes' views can exceed the shard's
            // capacity; trim least-recently-used records (their objects
            // stay — only the index forgets them).
            if merged.len() > self.capacity_per_shard {
                let excess = merged.len() - self.capacity_per_shard;
                merged.drain(..excess);
                evicted_total += excess as u64;
            }
            write_index(&index_path(dir, index), &merged)?;
            flushed += pending.len() as u64;
        }
        self.flushed.fetch_add(flushed, Ordering::Relaxed);
        if expired_total > 0 {
            self.expired.fetch_add(expired_total, Ordering::Relaxed);
        }
        if evicted_total > 0 {
            self.evictions.fetch_add(evicted_total, Ordering::Relaxed);
        }
        Ok(flushed)
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            flushed: self.flushed.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| lock(s).entries.len()).sum(),
        }
    }
}

impl Drop for CompletionCache {
    /// Best-effort flush: a persistent cache writes its pending mutations
    /// out when it goes out of scope, so plain program exit is durable
    /// without an explicit [`CompletionCache::persist`] call. I/O errors are
    /// swallowed (there is no one to report them to in a destructor).
    fn drop(&mut self) {
        if self.dir.is_some() {
            let _ = self.persist();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_llm::TokenUsage;
    use std::time::Duration;

    fn request(prompt: &str) -> CompletionRequest {
        CompletionRequest::from_prompt(prompt)
    }

    fn completion(text: &str) -> Completion {
        Completion {
            text: text.to_owned(),
            usage: TokenUsage {
                prompt_tokens: 1,
                completion_tokens: 1,
            },
            latency: Duration::from_millis(5),
        }
    }

    #[test]
    fn hit_after_put_and_sample_isolation() {
        let cache = CompletionCache::new(64);
        let req = request("q");
        assert!(cache.get(&req, 0).is_none());
        cache.put(&req, 0, completion("a"));
        assert_eq!(cache.get(&req, 0).unwrap().text, "a");
        // The same prompt at a different sample ordinal is a different entry.
        assert!(cache.get(&req, 1).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn temperature_distinguishes_requests() {
        let cache = CompletionCache::new(64);
        let mut warm = request("q");
        warm.temperature = 1.0;
        let mut cold = request("q");
        cold.temperature = 0.0;
        cache.put(&warm, 0, completion("warm"));
        assert!(cache.get(&cold, 0).is_none());
        assert_eq!(cache.get(&warm, 0).unwrap().text, "warm");
    }

    #[test]
    fn capacity_evicts_and_counts() {
        // Capacity 16 → one slot per shard; every extra insert into an
        // occupied shard evicts that shard's least-recently-used entry.
        let cache = CompletionCache::new(SHARD_COUNT);
        for i in 0..200 {
            let req = request(&format!("prompt {i}"));
            cache.put(&req, 0, completion("x"));
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, 200);
        assert!(stats.entries <= SHARD_COUNT, "entries {}", stats.entries);
        assert_eq!(stats.evictions, stats.insertions - stats.entries as u64);
    }

    /// Finds three distinct requests whose keys land in the same shard (the
    /// FNV fingerprint is deterministic, so the probe always converges).
    fn shard_colocated_trio() -> [CompletionRequest; 3] {
        let mut by_shard: HashMap<usize, Vec<CompletionRequest>> = HashMap::new();
        for i in 0..10_000 {
            let req = request(&format!("colocated {i}"));
            let shard = (req.fingerprint(0) as usize) % SHARD_COUNT;
            let list = by_shard.entry(shard).or_default();
            list.push(req);
            if list.len() == 3 {
                let mut it = list.drain(..);
                return [it.next().unwrap(), it.next().unwrap(), it.next().unwrap()];
            }
        }
        unreachable!("10k probes must fill some shard three times");
    }

    #[test]
    fn eviction_is_lru_not_fifo() {
        // Two slots per shard; a, b, c all land in one shard.
        let cache = CompletionCache::new(SHARD_COUNT * 2);
        let [a, b, c] = shard_colocated_trio();
        cache.put(&a, 0, completion("a"));
        cache.put(&b, 0, completion("b"));
        // Touch `a`. Under FIFO it would still be evicted first; under LRU
        // the hit makes `b` the oldest.
        assert!(cache.get(&a, 0).is_some());
        cache.put(&c, 0, completion("c"));
        assert!(
            cache.get(&b, 0).is_none(),
            "LRU must evict the least recently used entry (b), not the oldest insert (a)"
        );
        assert!(cache.get(&a, 0).is_some());
        assert!(cache.get(&c, 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn repeated_hits_pile_up_stale_pairs_but_evict_correctly() {
        let cache = CompletionCache::new(SHARD_COUNT * 2);
        let [a, b, c] = shard_colocated_trio();
        cache.put(&a, 0, completion("a"));
        cache.put(&b, 0, completion("b"));
        // Hammer hits so the recency queue accumulates (and compacts) stale
        // stamped pairs; the final round leaves `b` least recently used.
        for _ in 0..100 {
            assert!(cache.get(&b, 0).is_some());
            assert!(cache.get(&a, 0).is_some());
        }
        cache.put(&c, 0, completion("c"));
        assert!(cache.get(&b, 0).is_none(), "b was LRU after the last round");
        assert!(cache.get(&a, 0).is_some());
        assert!(cache.get(&c, 0).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn rejected_completions_are_evicted() {
        let cache = CompletionCache::new(64);
        let req = request("q");
        assert!(!cache.remove(&req, 0), "nothing resident yet");
        cache.put(&req, 0, completion("bad answer"));
        assert!(cache.remove(&req, 0), "the rejected entry is dropped");
        assert!(cache.get(&req, 0).is_none(), "the retry must miss");
        // Other sample ordinals are untouched.
        cache.put(&req, 1, completion("other sample"));
        assert!(!cache.remove(&req, 0));
        assert!(cache.get(&req, 1).is_some());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn default_ttl_expires_entries_lazily() {
        let cache = CompletionCache::new(64).with_default_ttl(Some(Duration::from_millis(30)));
        let req = request("perishable");
        cache.put(&req, 0, completion("fresh"));
        assert_eq!(cache.get(&req, 0).unwrap().text, "fresh");
        std::thread::sleep(Duration::from_millis(45));
        assert!(cache.get(&req, 0).is_none(), "TTL lapsed");
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.entries, 0, "the lapsed body is dropped");
        // A fresh put revives the key with a fresh deadline.
        cache.put(&req, 0, completion("again"));
        assert_eq!(cache.get(&req, 0).unwrap().text, "again");
    }

    #[test]
    fn per_request_ttl_beats_the_default() {
        let cache = CompletionCache::new(64).with_default_ttl(Some(Duration::from_millis(5)));
        let mut durable = request("long-lived");
        durable.options.ttl = Some(Duration::from_secs(3600));
        cache.put(&durable, 0, completion("stays"));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(
            cache.get(&durable, 0).unwrap().text,
            "stays",
            "the request's own TTL overrides the cache default"
        );
        assert_eq!(cache.stats().expired, 0);
    }

    #[test]
    fn ttl_mismatch_does_not_defeat_identity() {
        // The TTL is service advice, like the cache policy: a request that
        // asks for a different TTL must still *find* the entry.
        let cache = CompletionCache::new(64);
        let mut stamped = request("q");
        stamped.options.ttl = Some(Duration::from_secs(3600));
        cache.put(&stamped, 0, completion("a"));
        let plain = request("q");
        assert_eq!(cache.get(&plain, 0).unwrap().text, "a");
        assert!(cache.remove(&plain, 0));
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = std::sync::Arc::new(CompletionCache::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        let req = request(&format!("shared {}", i % 25));
                        if let Some(hit) = cache.get(&req, 0) {
                            assert_eq!(hit.text, format!("answer {}", i % 25));
                        } else {
                            cache.put(&req, 0, completion(&format!("answer {}", i % 25)));
                        }
                        let _ = t;
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert_eq!(stats.entries, 25);
    }
}
