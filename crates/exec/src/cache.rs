//! The sharded prompt→completion cache.
//!
//! Keys are full [`CompletionRequest`]s plus the sample ordinal (so resends
//! of an identical prompt by a retry loop are distinct entries). The request
//! fingerprint covers the conversation, the temperature, *and* the routed
//! model choice, so the same prompt served by different models occupies
//! distinct entries. Entries are spread across [`SHARD_COUNT`] mutex-guarded
//! segments by an FNV-1a hash, so concurrent workers rarely contend on the
//! same lock. Each shard evicts its **least-recently-used** entry once it
//! reaches its capacity share (hits refresh recency).
//!
//! Completions the caller rejects (downstream validation failure) are
//! evicted through [`CompletionCache::remove`] — the engine wires this to
//! [`askit_llm::LanguageModel::reject_completion`] — so a
//! temperature-sampled backend retried across invocations is re-asked
//! instead of being replayed a known-bad answer.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use askit_llm::{Completion, CompletionRequest};

/// Number of independent cache segments.
pub const SHARD_COUNT: usize = 16;

/// Counter snapshot of a [`CompletionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the model.
    pub misses: u64,
    /// Completions stored.
    pub insertions: u64,
    /// Entries dropped to respect capacity (LRU order).
    pub evictions: u64,
    /// Entries evicted because the caller rejected the completion
    /// (validation failure — see [`CompletionCache::remove`]).
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached completion, keyed by the request that produced it.
struct CacheEntry {
    /// The exact request (kept to disambiguate 64-bit hash collisions).
    request: CompletionRequest,
    /// The sample ordinal the completion was produced under.
    sample: u64,
    /// The completion served on hits.
    completion: Completion,
    /// The shard-clock reading of the entry's most recent use. Only the
    /// queue pair carrying this exact stamp is live; older pairs for the
    /// same key are stale and skipped at eviction time.
    stamp: u64,
}

/// One mutex-guarded segment.
///
/// Recency is tracked with a stamped queue so the hot paths stay O(1)
/// amortized under the shard lock: a hit pushes a fresh `(key, stamp)` pair
/// instead of scanning for the old one, eviction pops and discards pairs
/// whose stamp no longer matches the entry, and the queue is compacted
/// whenever stale pairs dominate.
#[derive(Default)]
struct Shard {
    entries: HashMap<u64, CacheEntry>,
    /// `(key, stamp)` pairs in use order: front = least recently used.
    /// May contain stale pairs (superseded stamps, removed keys).
    order: VecDeque<(u64, u64)>,
    /// Monotonic use counter stamping every insert and touch.
    clock: u64,
}

impl Shard {
    /// Marks an existing entry most-recently-used.
    fn touch(&mut self, key: u64) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.stamp = stamp;
            self.order.push_back((key, stamp));
        }
    }

    /// Evicts least-recently-used entries until at most `capacity` remain;
    /// returns how many were dropped. Compacts the queue when stale pairs
    /// outnumber live ones (amortized O(1) per operation).
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > capacity {
            let Some((key, stamp)) = self.order.pop_front() else {
                break;
            };
            if self
                .entries
                .get(&key)
                .is_some_and(|entry| entry.stamp == stamp)
            {
                self.entries.remove(&key);
                evicted += 1;
            }
        }
        if self.order.len() > self.entries.len().saturating_mul(2).max(capacity * 2) {
            let entries = &self.entries;
            self.order
                .retain(|(key, stamp)| entries.get(key).is_some_and(|entry| entry.stamp == *stamp));
        }
        evicted
    }
}

/// A concurrency-friendly completion cache (see the module docs above).
pub struct CompletionCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for CompletionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CompletionCache {
    /// Creates a cache holding at most `capacity` completions (rounded up to
    /// a multiple of [`SHARD_COUNT`]).
    pub fn new(capacity: usize) -> Self {
        CompletionCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard: capacity.div_ceil(SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The cache key: the request's canonical fingerprint salted with the
    /// sample ordinal (see [`CompletionRequest::fingerprint`]).
    fn key(request: &CompletionRequest, sample: u64) -> u64 {
        request.fingerprint(sample)
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Looks up a completion, counting the hit or miss. A hit refreshes the
    /// entry's recency (it becomes the last evicted in its shard).
    pub fn get(&self, request: &CompletionRequest, sample: u64) -> Option<Completion> {
        let key = Self::key(request, sample);
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let found = shard
            .entries
            .get(&key)
            .filter(|entry| entry.sample == sample && entry.request == *request)
            .map(|entry| entry.completion.clone());
        match found {
            Some(completion) => {
                shard.touch(key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(completion)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a completion, evicting the least-recently-used entry of the
    /// target shard when it is full.
    pub fn put(&self, request: &CompletionRequest, sample: u64, completion: Completion) {
        let key = Self::key(request, sample);
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.entries.entry(key) {
            Entry::Occupied(mut slot) => {
                // Same key raced in twice (or a hash collision): keep the
                // newest completion and refresh its recency.
                slot.insert(CacheEntry {
                    request: request.clone(),
                    sample,
                    completion,
                    stamp,
                });
                shard.order.push_back((key, stamp));
            }
            Entry::Vacant(slot) => {
                slot.insert(CacheEntry {
                    request: request.clone(),
                    sample,
                    completion,
                    stamp,
                });
                shard.order.push_back((key, stamp));
                self.insertions.fetch_add(1, Ordering::Relaxed);
                let evicted = shard.evict_to(self.capacity_per_shard);
                if evicted > 0 {
                    self.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
            }
        }
    }

    /// Evicts the entry for `(request, sample)`, if resident, because the
    /// caller rejected its completion. Returns whether an entry was dropped
    /// (counted under [`CacheStats::invalidations`]). The recency queue's
    /// pair goes stale and is discarded lazily at eviction time.
    pub fn remove(&self, request: &CompletionRequest, sample: u64) -> bool {
        let key = Self::key(request, sample);
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let resident = shard
            .entries
            .get(&key)
            .is_some_and(|entry| entry.sample == sample && entry.request == *request);
        if resident {
            shard.entries.remove(&key);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .entries
                        .len()
                })
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_llm::TokenUsage;
    use std::time::Duration;

    fn request(prompt: &str) -> CompletionRequest {
        CompletionRequest::from_prompt(prompt)
    }

    fn completion(text: &str) -> Completion {
        Completion {
            text: text.to_owned(),
            usage: TokenUsage {
                prompt_tokens: 1,
                completion_tokens: 1,
            },
            latency: Duration::from_millis(5),
        }
    }

    #[test]
    fn hit_after_put_and_sample_isolation() {
        let cache = CompletionCache::new(64);
        let req = request("q");
        assert!(cache.get(&req, 0).is_none());
        cache.put(&req, 0, completion("a"));
        assert_eq!(cache.get(&req, 0).unwrap().text, "a");
        // The same prompt at a different sample ordinal is a different entry.
        assert!(cache.get(&req, 1).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn temperature_distinguishes_requests() {
        let cache = CompletionCache::new(64);
        let mut warm = request("q");
        warm.temperature = 1.0;
        let mut cold = request("q");
        cold.temperature = 0.0;
        cache.put(&warm, 0, completion("warm"));
        assert!(cache.get(&cold, 0).is_none());
        assert_eq!(cache.get(&warm, 0).unwrap().text, "warm");
    }

    #[test]
    fn capacity_evicts_and_counts() {
        // Capacity 16 → one slot per shard; every extra insert into an
        // occupied shard evicts that shard's least-recently-used entry.
        let cache = CompletionCache::new(SHARD_COUNT);
        for i in 0..200 {
            let req = request(&format!("prompt {i}"));
            cache.put(&req, 0, completion("x"));
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, 200);
        assert!(stats.entries <= SHARD_COUNT, "entries {}", stats.entries);
        assert_eq!(stats.evictions, stats.insertions - stats.entries as u64);
    }

    /// Finds three distinct requests whose keys land in the same shard (the
    /// FNV fingerprint is deterministic, so the probe always converges).
    fn shard_colocated_trio() -> [CompletionRequest; 3] {
        let mut by_shard: HashMap<usize, Vec<CompletionRequest>> = HashMap::new();
        for i in 0..10_000 {
            let req = request(&format!("colocated {i}"));
            let shard = (req.fingerprint(0) as usize) % SHARD_COUNT;
            let list = by_shard.entry(shard).or_default();
            list.push(req);
            if list.len() == 3 {
                let mut it = list.drain(..);
                return [it.next().unwrap(), it.next().unwrap(), it.next().unwrap()];
            }
        }
        unreachable!("10k probes must fill some shard three times");
    }

    #[test]
    fn eviction_is_lru_not_fifo() {
        // Two slots per shard; a, b, c all land in one shard.
        let cache = CompletionCache::new(SHARD_COUNT * 2);
        let [a, b, c] = shard_colocated_trio();
        cache.put(&a, 0, completion("a"));
        cache.put(&b, 0, completion("b"));
        // Touch `a`. Under FIFO it would still be evicted first; under LRU
        // the hit makes `b` the oldest.
        assert!(cache.get(&a, 0).is_some());
        cache.put(&c, 0, completion("c"));
        assert!(
            cache.get(&b, 0).is_none(),
            "LRU must evict the least recently used entry (b), not the oldest insert (a)"
        );
        assert!(cache.get(&a, 0).is_some());
        assert!(cache.get(&c, 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn repeated_hits_pile_up_stale_pairs_but_evict_correctly() {
        let cache = CompletionCache::new(SHARD_COUNT * 2);
        let [a, b, c] = shard_colocated_trio();
        cache.put(&a, 0, completion("a"));
        cache.put(&b, 0, completion("b"));
        // Hammer hits so the recency queue accumulates (and compacts) stale
        // stamped pairs; the final round leaves `b` least recently used.
        for _ in 0..100 {
            assert!(cache.get(&b, 0).is_some());
            assert!(cache.get(&a, 0).is_some());
        }
        cache.put(&c, 0, completion("c"));
        assert!(cache.get(&b, 0).is_none(), "b was LRU after the last round");
        assert!(cache.get(&a, 0).is_some());
        assert!(cache.get(&c, 0).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn rejected_completions_are_evicted() {
        let cache = CompletionCache::new(64);
        let req = request("q");
        assert!(!cache.remove(&req, 0), "nothing resident yet");
        cache.put(&req, 0, completion("bad answer"));
        assert!(cache.remove(&req, 0), "the rejected entry is dropped");
        assert!(cache.get(&req, 0).is_none(), "the retry must miss");
        // Other sample ordinals are untouched.
        cache.put(&req, 1, completion("other sample"));
        assert!(!cache.remove(&req, 0));
        assert!(cache.get(&req, 1).is_some());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = std::sync::Arc::new(CompletionCache::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        let req = request(&format!("shared {}", i % 25));
                        if let Some(hit) = cache.get(&req, 0) {
                            assert_eq!(hit.text, format!("answer {}", i % 25));
                        } else {
                            cache.put(&req, 0, completion(&format!("answer {}", i % 25)));
                        }
                        let _ = t;
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 400);
        assert_eq!(stats.entries, 25);
    }
}
