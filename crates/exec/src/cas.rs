//! Content identifiers and the canonical encoding they are computed over.
//!
//! A [`Cid`] names a byte string by its content: the 128-bit FNV-1a hash of
//! the bytes. Two processes (or machines) that serialize the same value the
//! same way derive the same CID without coordinating — which is the whole
//! trick behind the shared store in [`crate::ObjectStore`]: concurrent
//! workers *dedupe* instead of conflicting, because equal content collapses
//! to one object file.
//!
//! That only works if serialization is **canonical**: one value, one byte
//! string, forever. [`CanonicalEncoder`] provides the deterministic
//! encoding — a small CBOR-inspired tagged format with fixed-width integers
//! and length-prefixed strings, no floats-as-text, no map-order ambiguity
//! (callers emit map keys in sorted order; the encoder has no unordered
//! container type to get it wrong with). The encoding is *versioned by
//! convention*: every top-level value starts with a caller-chosen schema
//! string (e.g. `"askit.code_cache.v1"`), so a layout change produces new
//! CIDs instead of misdecodes.
//!
//! Request identity reuses `askit-llm`'s single definition: the byte stream
//! [`askit_llm::RequestHasher`] folds into the 64-bit cache fingerprint is
//! exposed as [`askit_llm::RequestHasher::identity_bytes`] and hashed here
//! with the wider CID hash — the CID and the cache key can never drift,
//! because they read the same bytes.

/// FNV-1a offset basis, 128-bit variant.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a prime, 128-bit variant.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// A content identifier: the 128-bit FNV-1a hash of a canonical byte
/// string, printed as 32 lowercase hex digits.
///
/// CIDs are *names*, not proofs: FNV is not collision-resistant against an
/// adversary, so readers that care verify fetched bytes re-hash to the CID
/// (see [`crate::ObjectStore::get`]) and, where 64-bit keys already exist,
/// keep the full value around for disambiguation — the same discipline the
/// completion cache applies to its fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cid(u128);

impl Cid {
    /// The CID of a byte string.
    pub fn of(bytes: &[u8]) -> Cid {
        let mut h = FNV128_OFFSET;
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(FNV128_PRIME);
        }
        Cid(h)
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Rebuilds a CID from its raw value (e.g. read back from an index
    /// record).
    pub fn from_u128(raw: u128) -> Cid {
        Cid(raw)
    }

    /// The 32-hex-digit rendering used in file names and link files.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`Cid::to_hex`] rendering; `None` on anything that is not
    /// exactly 32 hex digits.
    pub fn parse_hex(text: &str) -> Option<Cid> {
        let text = text.trim();
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Cid)
    }
}

impl std::fmt::Display for Cid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Type tags of the canonical encoding. One byte each, chosen disjoint so a
/// decoder (or a human with `xxd`) can tell values apart; the format is
/// append-only — new tags may be added, existing ones never change meaning.
mod tag {
    pub const U64: u8 = 0x01;
    pub const F64: u8 = 0x02;
    pub const STR: u8 = 0x03;
    pub const BYTES: u8 = 0x04;
    pub const ARRAY: u8 = 0x05;
    pub const BOOL: u8 = 0x06;
}

/// A deterministic, self-delimiting value encoder (see the module docs).
///
/// Every method appends one tagged value. Composite values declare their
/// length up front ([`CanonicalEncoder::array`]), so the encoding of a value
/// never depends on what follows it — a prefix property the incremental
/// hashing in `askit-llm` relies on, preserved here.
///
/// ```
/// use askit_exec::{CanonicalEncoder, Cid};
/// let mut enc = CanonicalEncoder::new("example.v1");
/// enc.str("hello");
/// enc.u64(42);
/// let cid = enc.cid();
/// // The same value encodes to the same bytes, hence the same CID.
/// let mut again = CanonicalEncoder::new("example.v1");
/// again.str("hello");
/// again.u64(42);
/// assert_eq!(cid, again.cid());
/// ```
#[derive(Debug, Clone)]
pub struct CanonicalEncoder {
    buf: Vec<u8>,
}

impl CanonicalEncoder {
    /// Starts an encoding under `schema` — a caller-chosen version string
    /// that namespaces the resulting CIDs (change the layout ⇒ change the
    /// schema ⇒ disjoint CIDs, never a misdecode).
    pub fn new(schema: &str) -> Self {
        let mut enc = CanonicalEncoder { buf: Vec::new() };
        enc.str(schema);
        enc
    }

    /// Appends an unsigned integer (fixed 8-byte little-endian: one value,
    /// one encoding — no varint ambiguity).
    pub fn u64(&mut self, v: u64) {
        self.buf.push(tag::U64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a float by its exact bit pattern (`-0.0` and `0.0` encode
    /// differently, NaN payloads are preserved: bitwise identity is the
    /// only equality canonical encodings can promise).
    pub fn f64(&mut self, v: f64) {
        self.buf.push(tag::F64);
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a boolean.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(tag::BOOL);
        self.buf.push(u8::from(v));
    }

    /// Appends a UTF-8 string (length-prefixed; no terminator to collide
    /// with content).
    pub fn str(&mut self, v: &str) {
        self.buf.push(tag::STR);
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a raw byte string (length-prefixed).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.push(tag::BYTES);
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v);
    }

    /// Declares an array of `len` values; the caller appends exactly that
    /// many values next. (The encoder is write-only — it trusts the caller's
    /// count the way a hasher trusts its input — so the count is part of the
    /// hashed bytes and a miscount changes the CID rather than aliasing.)
    pub fn array(&mut self, len: usize) {
        self.buf.push(tag::ARRAY);
        self.buf.extend_from_slice(&(len as u64).to_le_bytes());
    }

    /// The canonical bytes accumulated so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Finishes the encoding, returning the canonical bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The CID of the bytes accumulated so far.
    pub fn cid(&self) -> Cid {
        Cid::of(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_is_stable_and_content_sensitive() {
        let a = Cid::of(b"hello");
        assert_eq!(a, Cid::of(b"hello"));
        assert_ne!(a, Cid::of(b"hello!"));
        assert_ne!(a, Cid::of(b""));
        // Pinned value: the on-disk object names depend on this hash never
        // changing.
        assert_eq!(
            Cid::of(b"hello").to_hex(),
            format!("{:032x}", {
                let mut h = FNV128_OFFSET;
                for &b in b"hello" {
                    h ^= u128::from(b);
                    h = h.wrapping_mul(FNV128_PRIME);
                }
                h
            })
        );
    }

    #[test]
    fn hex_roundtrip() {
        let cid = Cid::of(b"roundtrip");
        assert_eq!(Cid::parse_hex(&cid.to_hex()), Some(cid));
        assert_eq!(Cid::parse_hex("nope"), None);
        assert_eq!(Cid::parse_hex(""), None);
        // Wrong length, even if valid hex.
        assert_eq!(Cid::parse_hex("abcd"), None);
        // Whitespace tolerated (link files end with a newline).
        assert_eq!(Cid::parse_hex(&format!("{}\n", cid.to_hex())), Some(cid));
    }

    #[test]
    fn canonical_encoding_is_deterministic_and_unambiguous() {
        let encode = |s: &str, n: u64| {
            let mut enc = CanonicalEncoder::new("test.v1");
            enc.str(s);
            enc.u64(n);
            enc.into_bytes()
        };
        assert_eq!(encode("a", 1), encode("a", 1));
        assert_ne!(encode("a", 1), encode("a", 2));
        // Field-boundary ambiguity check: ("ab", "c") and ("a", "bc") must
        // not encode alike — length prefixes keep them apart.
        let two = |x: &str, y: &str| {
            let mut enc = CanonicalEncoder::new("test.v1");
            enc.array(2);
            enc.str(x);
            enc.str(y);
            enc.into_bytes()
        };
        assert_ne!(two("ab", "c"), two("a", "bc"));
        // Schema strings namespace CIDs.
        let mut v1 = CanonicalEncoder::new("test.v1");
        v1.u64(7);
        let mut v2 = CanonicalEncoder::new("test.v2");
        v2.u64(7);
        assert_ne!(v1.cid(), v2.cid());
    }

    #[test]
    fn floats_encode_by_bit_pattern() {
        let bits = |v: f64| {
            let mut enc = CanonicalEncoder::new("f.v1");
            enc.f64(v);
            enc.cid()
        };
        assert_ne!(bits(0.0), bits(-0.0));
        assert_eq!(bits(1.5), bits(1.5));
    }
}
