//! # askit-exec
//!
//! The execution engine between the AskIt DSL (`askit-core`) and the model
//! substrate (`askit-llm`).
//!
//! LMQL and APPL both observe that a runtime layer between a prompt-program
//! DSL and the model is the right home for scheduling and caching; this crate
//! is that layer for AskIt. An [`Engine`] wraps any
//! [`LanguageModel`](askit_llm::LanguageModel) and adds:
//!
//! * a **worker pool** ([`Engine::map`]) that fans independent tasks out
//!   across scoped threads with dynamic load balancing;
//! * **batched submission**
//!   ([`complete_batch`](askit_llm::LanguageModel::complete_batch) on the
//!   engine) that splits a request batch across the pool;
//! * a **sharded completion cache** ([`CompletionCache`]) fronting the
//!   model: FNV-sharded mutex segments, LRU eviction, entry TTLs, and
//!   hit/miss/eviction counters exposed as [`CacheStats`];
//! * **cache persistence**: with [`EngineConfig::with_cache_dir`] the cache
//!   spills to a versioned per-shard snapshot + write-ahead-log layout and a
//!   later process warm-starts from it ([`Engine::persist`] flushes, so does
//!   drop; corruption costs at most the torn tail of a log, never a panic);
//! * a **content-addressed shared store** ([`ObjectStore`] + [`Cid`]): with
//!   [`EngineConfig::with_shared_cache`] any number of *processes* share one
//!   cache directory safely — completion bodies are write-once objects named
//!   by the 128-bit hash of a canonical encoding ([`CanonicalEncoder`]), and
//!   each shard's index is merged (not overwritten) under a per-shard
//!   advisory file lock ([`LockGuard`], plain `std` file locking);
//! * a **routing-aware scheduler** ([`Scheduler`]): per-model admission
//!   gates over the shared pool, with optional AIMD width adaptation
//!   ([`AimdController`]) fed by backend load signals
//!   ([`askit_llm::LoadObserver`]) — grow on success, cut on 429/timeout.
//!
//! The engine itself implements [`LanguageModel`](askit_llm::LanguageModel),
//! so the whole AskIt stack (the `run_direct` retry loop, the codegen
//! pipeline, the eval drivers) runs through it unchanged — submissions just
//! gain caching and concurrency. Per-request [`askit_llm::RequestOptions`]
//! steer it: the routed model is part of the cache key, and
//! [`askit_llm::CachePolicy::Bypass`] requests skip the cache entirely.
//!
//! Results are deterministic in the thread count: the engine never reorders
//! per-request semantics, and the workspace's simulated models derive their
//! randomness per request rather than from shared state.

// `unsafe` is denied crate-wide and allowed in exactly one place: the
// worker pool's scoped-job lifetime erasure (see `pool.rs`'s module docs
// for the soundness argument). Everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cas;
mod engine;
mod persist;
#[allow(unsafe_code)]
mod pool;
mod sched;
mod store;

pub use cache::{CacheStats, CompletionCache, SHARD_COUNT};
pub use cas::{CanonicalEncoder, Cid};
pub use store::{LockGuard, ObjectStore};

/// Locks a mutex, recovering from poisoning: shard and pool state stay
/// usable after a panicking task (the panic is reported elsewhere; the
/// protected data is counters and queues whose invariants hold per
/// operation). Single definition for the whole crate.
pub(crate) fn lock<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
pub use engine::{resolve_workers, Engine, EngineConfig};
pub use pool::{spawn_map, WorkerPool};
pub use sched::{
    env_width_override, resolve_model_workers, AimdConfig, AimdController, Scheduler, WidthBounds,
};
