//! The scoped worker pool: an order-preserving parallel map.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Applies `f` to every item on up to `workers` scoped threads, returning
/// results in item order.
///
/// Work is claimed item-by-item from a shared atomic counter, so uneven task
/// costs (some problems retry, some do not) still balance across the pool.
/// With `workers <= 1` the map runs inline on the caller's thread.
pub fn parallel_map<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let (sender, receiver) = mpsc::channel::<(usize, U)>();
        for _ in 0..workers {
            let sender = sender.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else { break };
                if sender.send((index, f(index, item))).is_err() {
                    break;
                }
            });
        }
        drop(sender);
        for (index, value) in receiver {
            slots[index] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        for workers in [0, 1, 2, 8] {
            let out = parallel_map(workers, &items, |index, &item| {
                assert_eq!(index, item);
                item * 2
            });
            assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = parallel_map(4, &[] as &[u8], |_, &b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_still_completes() {
        let items: Vec<u64> = (0..40).collect();
        let out = parallel_map(4, &items, |_, &n| {
            if n % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            n + 1
        });
        assert_eq!(out.len(), 40);
        assert_eq!(out[39], 40);
    }
}
