//! The persistent worker pool: long-lived, channel-fed, work-claiming.
//!
//! Before this pool existed, every `Engine::map`/`complete_batch` spawned
//! and joined fresh OS threads (`std::thread::scope`). That costs tens of
//! microseconds per worker per call — invisible next to a model round trip,
//! dominant on a warm-cache sweep where the per-item work is a hash and a
//! map lookup. The pool amortizes thread creation to once per engine:
//!
//! * **Channel-fed**: jobs land in one injector queue (mutex + condvar);
//!   idle workers sleep on the condvar and wake per submission.
//! * **Work-claiming**: [`WorkerPool::map`] does not partition items.
//!   Workers claim the next index from a shared atomic counter, so uneven
//!   task costs (some problems retry, some do not) balance dynamically —
//!   the same discipline the old scoped map used.
//! * **Caller-runs**: the thread that calls `map` claims work alongside the
//!   pool, and while waiting for stragglers it *helps* by running other
//!   queued jobs. This is what makes nested submission safe: a worker whose
//!   map item itself calls `map` (eval fan-out over problems, each problem
//!   batching its own requests) completes the inner map on its own stack
//!   even when every pool thread is busy, instead of deadlocking on a full
//!   pool.
//! * **Panic-safe**: a panicking task is caught, the remaining work is
//!   cancelled, and the original payload is re-thrown to the `map` caller
//!   with [`std::panic::resume_unwind`] — never a secondary
//!   `expect`-flavoured panic that hides the real failure.
//! * Dropped on shutdown: the pool drains its queue, parks no thread
//!   forever, and joins every worker.
//!
//! [`spawn_map`] — the old spawn-per-call implementation — is kept,
//! unchanged in behaviour, as the measured baseline of the
//! `engine_overhead` bench.
//!
//! # Safety
//!
//! This module is the workspace's one `unsafe` island (the crate denies
//! `unsafe_code` elsewhere). `map` lends stack-borrowed state (`items`, the
//! closure, the result slots) to pool threads by erasing the job's
//! lifetime. Soundness rests on a single invariant, enforced by
//! `MapState::helpers` accounting: **`map` does not return — normally or by
//! unwind — until every helper job it injected has finished running**, so
//! no job can observe the borrowed state after it dies. See the safety
//! comments at the erasure and wait sites.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::lock;

/// A unit of pool work. Jobs must be `'static`; `map` manufactures its
/// borrowed helper jobs via the documented lifetime erasure.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared injector queue.
struct Injector {
    /// `(pending jobs, shutting down)`.
    queue: Mutex<(VecDeque<Job>, bool)>,
    /// Signals job arrival and shutdown.
    available: Condvar,
}

impl Injector {
    /// Pops one job if any is queued.
    fn try_pop(&self) -> Option<Job> {
        lock(&self.queue).0.pop_front()
    }
}

/// A long-lived pool of worker threads (see the module docs).
///
/// Threads are spawned **lazily**, on the first submission that can use
/// them: an engine that never fans out (single `complete` calls, unit
/// tests, narrow `--threads 1` runs) costs zero OS threads, which matters
/// now that the auto width is the machine's full parallelism.
pub struct WorkerPool {
    injector: Arc<Injector>,
    width: usize,
    spawned: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width)
            .field("queued", &lock(&self.injector.queue).0.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `width` threads (minimum 1). No thread exists
    /// until the first [`WorkerPool::submit`].
    pub fn new(width: usize) -> Self {
        WorkerPool {
            injector: Arc::new(Injector {
                queue: Mutex::new((VecDeque::new(), false)),
                available: Condvar::new(),
            }),
            width: width.max(1),
            spawned: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The number of pool threads.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Spawns the worker threads if they do not exist yet.
    fn ensure_workers(&self) {
        if self.spawned.load(Ordering::Acquire) {
            return;
        }
        let mut workers = lock(&self.workers);
        if self.spawned.load(Ordering::Acquire) {
            return;
        }
        *workers = (0..self.width)
            .map(|i| {
                let injector = Arc::clone(&self.injector);
                std::thread::Builder::new()
                    .name(format!("askit-worker-{i}"))
                    .spawn(move || worker_loop(&injector))
                    .expect("spawn pool worker")
            })
            .collect();
        self.spawned.store(true, Ordering::Release);
    }

    /// Enqueues a fire-and-forget job. A panic inside the job is swallowed
    /// (it must not kill a pool thread); jobs that care capture their own.
    pub fn submit(&self, job: Job) {
        self.ensure_workers();
        lock(&self.injector.queue).0.push_back(job);
        self.injector.available.notify_one();
    }

    /// Runs one queued job on the calling thread, if any is queued. This is
    /// the "help" primitive: threads that would otherwise block on pool
    /// progress drain the queue themselves. Returns whether a job ran.
    pub fn try_run_one(&self) -> bool {
        match self.injector.try_pop() {
            Some(job) => {
                run_job(job);
                true
            }
            None => false,
        }
    }

    /// Applies `f` to every item on the pool (plus the calling thread),
    /// returning results in item order. Work is claimed item-by-item; with
    /// an effective width of 1 the map runs inline on the caller.
    ///
    /// Safe to call concurrently from many threads and from inside another
    /// `map`'s task (see the module docs on caller-runs).
    ///
    /// # Panics
    ///
    /// If `f` panics for any item, the first panic payload is re-thrown on
    /// the calling thread after in-flight items settle; remaining unclaimed
    /// items are skipped.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let width = self.width.min(items.len());
        if width <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(index, item)| f(index, item))
                .collect();
        }

        // Spawn the workers *before* any helper accounting exists: a spawn
        // failure (thread limit) must panic cleanly here, not leave a
        // WaitGuard below waiting for helper jobs that were never queued.
        self.ensure_workers();

        // The caller claims work too, so `width - 1` helper jobs saturate
        // the configured parallelism.
        let helpers = width - 1;
        let state = MapState {
            items,
            f: &f,
            next: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            slots: (0..items.len()).map(|_| Mutex::new(None)).collect(),
            panic: Mutex::new(None),
            helper_count: helpers,
            started: AtomicUsize::new(0),
            helpers: Mutex::new(helpers),
            helpers_done: Condvar::new(),
        };
        // Ensure the helper-exit invariant holds even if this thread
        // unwinds below (the caller's own claim loop catches task panics,
        // but defense-in-depth is cheap and the guard documents the
        // obligation).
        let guard = WaitGuard {
            pool: self,
            state: &state,
        };

        for _ in 0..helpers {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
                state.started.fetch_add(1, Ordering::Relaxed);
                state.claim_loop();
                state.helper_exited();
            });
            // SAFETY: the job borrows `state` (which borrows `items` and
            // `f` from this stack frame). `WaitGuard` — run on every exit
            // path of this function — blocks until `state.helpers` reaches
            // zero, and each job decrements that counter only *after* its
            // last touch of `state` (the decrement itself happens under
            // `state.helpers`' mutex, which the waiter re-acquires before
            // proceeding). Therefore no job can run, or be mid-run, once
            // this frame is gone, and extending the job's lifetime to
            // `'static` is sound.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.submit(job);
        }

        // Caller-runs: claim work like any pool thread.
        state.claim_loop();
        drop(guard); // waits for helpers (helping the queue along)

        if let Some(payload) = lock(&state.panic).take() {
            resume_unwind(payload);
        }
        state
            .slots
            .iter()
            .map(|slot| {
                lock(slot)
                    .take()
                    .expect("all claims settled without panic, so every slot is filled")
            })
            .collect()
    }

    /// Blocks until every helper of `state` has exited, running other
    /// queued jobs meanwhile when (and only when) some of this map's
    /// helpers are still *queued* — the deadlock-freedom lever: a queued
    /// helper stuck behind busy workers is executed right here, on the
    /// waiting thread. Once every helper has started, helping would only
    /// drag unrelated (possibly long) jobs onto this map's critical path,
    /// so the wait becomes a plain sleep on the exit condvar.
    fn wait_for_helpers<T: Sync, U: Send, F>(&self, state: &MapState<'_, T, U, F>)
    where
        F: Fn(usize, &T) -> U + Sync,
    {
        loop {
            {
                let remaining = lock(&state.helpers);
                if *remaining == 0 {
                    return;
                }
            }
            let all_started = state.started.load(Ordering::Relaxed) >= state.helper_count;
            if !all_started && self.try_run_one() {
                continue;
            }
            // Nothing useful to run: our unstarted helpers (if any) will be
            // reached by draining the queue on later rounds, and started
            // ones are executing on pool threads right now. Sleep until one
            // exits; the timeout re-checks the queue in case new work
            // arrived that our helpers are queued behind.
            let remaining = lock(&state.helpers);
            if *remaining == 0 {
                return;
            }
            let (remaining, _) = state
                .helpers_done
                .wait_timeout(remaining, std::time::Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
            drop(remaining);
        }
    }
}

impl Drop for WorkerPool {
    /// Shuts the pool down: still-queued jobs are **discarded** — dropping
    /// a job box releases everything it captured, and running, say, a
    /// queued speculative prefetch at shutdown would pay a full model round
    /// trip for an answer nobody reads. (Map helpers can never be queued
    /// here: `&mut self` excludes in-flight maps.) Jobs already executing
    /// finish, then every worker is joined.
    fn drop(&mut self) {
        {
            let mut queue = lock(&self.injector.queue);
            queue.1 = true;
            queue.0.clear();
        }
        self.injector.available.notify_all();
        for worker in lock(&self.workers).drain(..) {
            let _ = worker.join();
        }
    }
}

/// Blocks in `drop` until the map's helpers have all exited — the soundness
/// anchor for the lifetime erasure in [`WorkerPool::map`].
struct WaitGuard<'a, T: Sync, U: Send, F: Fn(usize, &T) -> U + Sync> {
    pool: &'a WorkerPool,
    state: &'a MapState<'a, T, U, F>,
}

impl<T: Sync, U: Send, F: Fn(usize, &T) -> U + Sync> Drop for WaitGuard<'_, T, U, F> {
    fn drop(&mut self) {
        self.pool.wait_for_helpers(self.state);
    }
}

fn worker_loop(injector: &Injector) {
    loop {
        let job = {
            let mut queue = lock(&injector.queue);
            loop {
                if let Some(job) = queue.0.pop_front() {
                    break Some(job);
                }
                if queue.1 {
                    break None;
                }
                queue = injector
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => run_job(job),
            None => return,
        }
    }
}

/// Runs one job, containing any panic that escapes it: pool threads must
/// survive arbitrary jobs, and map tasks already route their payloads
/// through `MapState::panic`.
fn run_job(job: Job) {
    let _ = catch_unwind(AssertUnwindSafe(job));
}

/// Shared state of one in-flight `map` (lives on the caller's stack).
struct MapState<'scope, T, U, F> {
    items: &'scope [T],
    f: &'scope F,
    /// Next unclaimed item index.
    next: AtomicUsize,
    /// Set after a task panic: remaining unclaimed items are skipped.
    cancelled: AtomicBool,
    /// One slot per item, written exactly once by the claimant.
    slots: Vec<Mutex<Option<U>>>,
    /// First panic payload, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Helper jobs injected for this map.
    helper_count: usize,
    /// Helper jobs that have begun executing. Once this reaches
    /// `helper_count`, the waiting caller stops helping the queue (no
    /// queued helper of *this* map can need it).
    started: AtomicUsize,
    /// Helper jobs still alive (queued or running).
    helpers: Mutex<usize>,
    /// Signalled as each helper exits.
    helpers_done: Condvar,
}

impl<T: Sync, U: Send, F: Fn(usize, &T) -> U + Sync> MapState<'_, T, U, F> {
    /// Claims and runs items until none remain (or a sibling panicked).
    fn claim_loop(&self) {
        loop {
            if self.cancelled.load(Ordering::Relaxed) {
                return;
            }
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = self.items.get(index) else {
                return;
            };
            match catch_unwind(AssertUnwindSafe(|| (self.f)(index, item))) {
                Ok(value) => *lock(&self.slots[index]) = Some(value),
                Err(payload) => {
                    self.cancelled.store(true, Ordering::Relaxed);
                    let mut first = lock(&self.panic);
                    if first.is_none() {
                        *first = Some(payload);
                    }
                }
            }
        }
    }

    /// Marks one helper job finished. Must be the job's very last action.
    fn helper_exited(&self) {
        let mut remaining = lock(&self.helpers);
        *remaining -= 1;
        if *remaining == 0 {
            self.helpers_done.notify_all();
        }
    }
}

/// Applies `f` to every item on up to `workers` **freshly spawned** scoped
/// threads, returning results in item order.
///
/// This is the pre-pool implementation, retained verbatim as the measured
/// baseline of the `engine_overhead` bench: it pays thread creation and
/// teardown on every call, which is exactly the overhead [`WorkerPool`]
/// amortizes away. New code should go through an engine's pool.
pub fn spawn_map<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let (sender, receiver) = std::sync::mpsc::channel::<(usize, U)>();
        for _ in 0..workers {
            let sender = sender.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else { break };
                if sender.send((index, f(index, item))).is_err() {
                    break;
                }
            });
        }
        drop(sender);
        for (index, value) in receiver {
            slots[index] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        for width in [1, 2, 8] {
            let pool = WorkerPool::new(width);
            let out = pool.map(&items, |index, &item| {
                assert_eq!(index, item);
                item * 2
            });
            assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = WorkerPool::new(4);
        let out: Vec<u8> = pool.map(&[] as &[u8], |_, &b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_still_completes() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..40).collect();
        let out = pool.map(&items, |_, &n| {
            if n % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            n + 1
        });
        assert_eq!(out.len(), 40);
        assert_eq!(out[39], 40);
    }

    #[test]
    fn pool_is_reused_across_maps() {
        let pool = WorkerPool::new(4);
        for round in 0..50 {
            let items: Vec<usize> = (0..16).collect();
            let out = pool.map(&items, |_, &i| i + round);
            assert_eq!(out[15], 15 + round);
        }
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        // Deliberately narrower than the nesting demands: every pool thread
        // ends up inside an outer item, so inner maps can only finish via
        // caller-runs + helping.
        let pool = WorkerPool::new(2);
        let outer: Vec<usize> = (0..8).collect();
        let out = pool.map(&outer, |_, &o| {
            let inner: Vec<usize> = (0..8).collect();
            pool.map(&inner, |_, &i| i * o).into_iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..8).map(|o| (0..8).sum::<usize>() * o).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn deeply_nested_maps_terminate() {
        let pool = WorkerPool::new(3);
        fn depth_sum(pool: &WorkerPool, depth: usize) -> usize {
            if depth == 0 {
                return 1;
            }
            let items = [depth; 3];
            pool.map(&items, |_, _| depth_sum(pool, depth - 1))
                .into_iter()
                .sum()
        }
        assert_eq!(depth_sum(&pool, 3), 27);
    }

    #[test]
    fn panic_payload_is_propagated_verbatim() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &i| {
                if i == 13 {
                    panic!("task 13 exploded");
                }
                i
            })
        }))
        .expect_err("the task panic must surface");
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>");
        assert_eq!(message, "task 13 exploded", "original payload, verbatim");
        // The pool survives: a fresh map on the same pool still works.
        let ok = pool.map(&items, |_, &i| i);
        assert_eq!(ok.len(), 64);
    }

    #[test]
    fn submitted_jobs_run_on_a_live_pool() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2);
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while counter.load(Ordering::Relaxed) < 32 {
            assert!(std::time::Instant::now() < deadline, "jobs never ran");
            std::thread::yield_now();
        }
    }

    #[test]
    fn drop_discards_queued_jobs_and_releases_their_captures() {
        let ran = Arc::new(AtomicUsize::new(0));
        let resource = Arc::new(());
        {
            let pool = WorkerPool::new(2);
            // Park both workers so the counting jobs stay queued.
            let parked = Arc::new(AtomicUsize::new(0));
            for _ in 0..2 {
                let parked = Arc::clone(&parked);
                pool.submit(Box::new(move || {
                    parked.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(300));
                }));
            }
            while parked.load(Ordering::Relaxed) < 2 {
                std::thread::yield_now();
            }
            for _ in 0..10 {
                let ran = Arc::clone(&ran);
                let resource = Arc::clone(&resource);
                pool.submit(Box::new(move || {
                    let _ = &resource;
                    ran.fetch_add(1, Ordering::Relaxed);
                }));
            }
            // Drop while the workers are still parked: the 10 queued jobs
            // must be discarded, not executed at shutdown.
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0, "queued jobs were discarded");
        assert_eq!(
            Arc::strong_count(&resource),
            1,
            "discarding a job releases its captures"
        );
    }

    #[test]
    fn concurrent_maps_from_many_threads() {
        let pool = WorkerPool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let pool = &pool;
                scope.spawn(move || {
                    let items: Vec<usize> = (0..32).collect();
                    let out = pool.map(&items, |_, &i| i + t);
                    assert_eq!(out[31], 31 + t);
                });
            }
        });
    }

    #[test]
    fn spawn_map_baseline_still_works() {
        let items: Vec<usize> = (0..10).collect();
        let out = spawn_map(4, &items, |_, &i| i * 3);
        assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
    }
}
