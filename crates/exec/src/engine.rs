//! The [`Engine`]: cache-fronted, pool-backed completion submission.

use std::path::PathBuf;
use std::time::Duration;

use askit_llm::{CachePolicy, Completion, CompletionRequest, LanguageModel, LlmError};

use crate::cache::{CacheStats, CompletionCache};
use crate::pool::parallel_map;

/// Configuration of an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for batched submission and [`Engine::map`]. `0` means
    /// auto (the machine's available parallelism, capped at 8).
    pub workers: usize,
    /// Maximum cached completions. `0` disables the cache.
    pub cache_capacity: usize,
    /// Directory the completion cache persists to. `None` (the default)
    /// keeps the cache in memory only; with a directory, the engine
    /// warm-starts from whatever a previous process flushed there and spills
    /// back on [`Engine::persist`] / drop. No cross-process locking is done.
    pub cache_dir: Option<PathBuf>,
    /// Default time-to-live for cached completions. `None` = never expire.
    /// Per-request TTLs ([`askit_llm::RequestOptions::ttl`]) win per entry.
    pub cache_ttl: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            cache_capacity: 4096,
            cache_dir: None,
            cache_ttl: None,
        }
    }
}

impl EngineConfig {
    /// Overrides the worker count (`0` = auto).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the cache capacity (`0` disables caching).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Makes the cache durable under `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the default TTL for cached completions.
    #[must_use]
    pub fn with_cache_ttl(mut self, ttl: Duration) -> Self {
        self.cache_ttl = Some(ttl);
        self
    }
}

/// Resolves `0` to the machine's available parallelism (capped at 8).
fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
    }
}

/// The execution engine: owns a model, a worker-pool width, and an optional
/// completion cache. Implements [`LanguageModel`] so it slots anywhere a
/// model does — the whole AskIt stack submits through it.
pub struct Engine<L> {
    model: L,
    config: EngineConfig,
    workers: usize,
    cache: Option<CompletionCache>,
}

impl<L> std::fmt::Debug for Engine<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("cache", &self.cache)
            .finish()
    }
}

impl<L: LanguageModel> Engine<L> {
    /// Wraps a model with the default configuration.
    pub fn new(model: L) -> Self {
        Engine::with_config(model, EngineConfig::default())
    }

    /// Wraps a model with an explicit configuration.
    ///
    /// With a `cache_dir`, the completion cache is opened persistently and
    /// warm-starts from disk. An unusable directory is reported on stderr
    /// and degrades to an in-memory cache rather than failing construction —
    /// caching is an accelerator, not a correctness requirement.
    pub fn with_config(model: L, config: EngineConfig) -> Self {
        let cache = (config.cache_capacity > 0).then(|| match &config.cache_dir {
            Some(dir) => CompletionCache::open(config.cache_capacity, dir, config.cache_ttl)
                .unwrap_or_else(|e| {
                    eprintln!(
                        "askit-exec: cache dir {} unusable ({e}); using an in-memory cache",
                        dir.display()
                    );
                    CompletionCache::new(config.cache_capacity).with_default_ttl(config.cache_ttl)
                }),
            None => CompletionCache::new(config.cache_capacity).with_default_ttl(config.cache_ttl),
        });
        Engine {
            model,
            workers: resolve_workers(config.workers),
            cache,
            config,
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The wrapped model.
    pub fn model(&self) -> &L {
        &self.model
    }

    /// Unwraps the engine, returning the model (the cache is dropped).
    pub fn into_model(self) -> L {
        self.model
    }

    /// The resolved worker-pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cache counters (all zero when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(CompletionCache::stats)
            .unwrap_or_default()
    }

    /// Flushes the completion cache's buffered mutations to disk, returning
    /// the number of records written. A no-op (0) when the cache is disabled
    /// or in-memory. The flush also happens automatically when the engine is
    /// dropped, so plain program exit is durable; call this explicitly at
    /// checkpoints that must survive a later crash.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying filesystem.
    pub fn persist(&self) -> std::io::Result<u64> {
        self.cache.as_ref().map_or(Ok(0), CompletionCache::persist)
    }

    /// The cache this request may use: `None` when caching is disabled or
    /// the request asks to bypass it.
    fn cache_for(&self, request: &CompletionRequest) -> Option<&CompletionCache> {
        if request.options.cache == CachePolicy::Bypass {
            return None;
        }
        self.cache.as_ref()
    }

    /// Runs `f` over every item on the worker pool, preserving item order in
    /// the result. This is the task-level fan-out the eval drivers use:
    /// each item typically performs a whole retry conversation through
    /// [`Engine::complete_tagged`].
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        parallel_map(self.workers, items, f)
    }
}

impl<L: LanguageModel> LanguageModel for Engine<L> {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        self.complete_tagged(request, 0)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let Some(cache) = self.cache_for(request) else {
            return self.model.complete_tagged(request, sample);
        };
        if let Some(hit) = cache.get(request, sample) {
            return Ok(hit);
        }
        let completion = self.model.complete_tagged(request, sample)?;
        cache.put(request, sample, completion.clone());
        Ok(completion)
    }

    /// Splits the batch across the worker pool. Each request still goes
    /// through the cache individually (honoring its cache policy), and
    /// results come back in request order; chunks are handed to the model's
    /// own batched entry point.
    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        // Probe the cache up front so only true misses reach the model;
        // bypass requests never probe (and never pollute the miss counter).
        let mut results: Vec<Option<Result<Completion, LlmError>>> = requests
            .iter()
            .map(|r| self.cache_for(r).and_then(|cache| cache.get(r, 0).map(Ok)))
            .collect();
        let miss_indices: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| i)
            .collect();
        if !miss_indices.is_empty() {
            let chunk_size = miss_indices.len().div_ceil(self.workers.max(1)).max(1);
            let chunks: Vec<&[usize]> = miss_indices.chunks(chunk_size).collect();
            let completed: Vec<Vec<Result<Completion, LlmError>>> =
                parallel_map(self.workers, &chunks, |_, chunk| {
                    let batch: Vec<CompletionRequest> =
                        chunk.iter().map(|&i| requests[i].clone()).collect();
                    self.model.complete_batch(&batch)
                });
            for (chunk, outcomes) in chunks.iter().zip(completed) {
                for (&index, outcome) in chunk.iter().zip(outcomes) {
                    if let (Some(cache), Ok(completion)) =
                        (self.cache_for(&requests[index]), &outcome)
                    {
                        cache.put(&requests[index], 0, completion.clone());
                    }
                    results[index] = Some(outcome);
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every request resolved"))
            .collect()
    }

    /// Evicts the rejected completion so a retry re-asks the model instead
    /// of replaying a known-bad answer, then forwards the rejection to the
    /// wrapped backend (in case it memoizes too).
    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        if let Some(cache) = &self.cache {
            cache.remove(request, sample);
        }
        self.model.reject_completion(request, sample);
    }

    fn model_name(&self) -> &str {
        self.model.model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_llm::{ChatMessage, MockLlm, ScriptedLlm};

    fn request(prompt: &str) -> CompletionRequest {
        CompletionRequest::from_prompt(prompt)
    }

    #[test]
    fn cache_serves_repeats_without_model_calls() {
        let engine = Engine::new(MockLlm::gpt4());
        let req = request("Hello there!");
        let first = engine.complete(&req).unwrap();
        let calls_after_first = engine.model().calls();
        let second = engine.complete(&req).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            engine.model().calls(),
            calls_after_first,
            "hit skips the model"
        );
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn sample_ordinals_bypass_stale_entries() {
        let engine = Engine::new(MockLlm::gpt4());
        let req = request("Hello there!");
        let _ = engine.complete_tagged(&req, 0).unwrap();
        let calls = engine.model().calls();
        let _ = engine.complete_tagged(&req, 1).unwrap();
        assert_eq!(
            engine.model().calls(),
            calls + 1,
            "new ordinal reaches the model"
        );
    }

    #[test]
    fn disabled_cache_always_submits() {
        let engine = Engine::with_config(
            MockLlm::gpt4(),
            EngineConfig::default().with_cache_capacity(0),
        );
        let req = request("Hello there!");
        let _ = engine.complete(&req).unwrap();
        let _ = engine.complete(&req).unwrap();
        assert_eq!(engine.model().calls(), 2);
        assert_eq!(engine.cache_stats(), CacheStats::default());
    }

    #[test]
    fn batch_preserves_order_and_caches() {
        let engine = Engine::with_config(MockLlm::gpt4(), EngineConfig::default().with_workers(4));
        let requests: Vec<CompletionRequest> =
            (0..12).map(|i| request(&format!("Prompt {i}"))).collect();
        let serial: Vec<String> = requests
            .iter()
            .map(|r| engine.model().complete(r).unwrap().text)
            .collect();
        let batched = engine.complete_batch(&requests);
        for (expected, got) in serial.iter().zip(&batched) {
            assert_eq!(expected, &got.as_ref().unwrap().text);
        }
        // Everything is now resident: a second batch is pure hits.
        let calls = engine.model().calls();
        let again = engine.complete_batch(&requests);
        assert_eq!(engine.model().calls(), calls);
        assert_eq!(again.len(), 12);
        assert!(engine.cache_stats().hits >= 12);
    }

    #[test]
    fn batch_surfaces_per_request_errors_in_place() {
        let engine = Engine::with_config(
            ScriptedLlm::new(["only response"]),
            EngineConfig::default().with_workers(1),
        );
        let results = engine.complete_batch(&[request("a"), request("b")]);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(LlmError::Exhausted));
    }

    #[test]
    fn engine_is_a_language_model() {
        let engine = Engine::new(MockLlm::gpt4());
        assert_eq!(engine.model_name(), "sim-gpt-4");
        // Conversations with history flow through unchanged.
        let req = CompletionRequest {
            messages: vec![
                ChatMessage::user("Hello there!"),
                ChatMessage::assistant("Hi."),
                ChatMessage::user("And again!"),
            ],
            temperature: 1.0,
            options: askit_llm::RequestOptions::default(),
        };
        assert!(engine.complete(&req).is_ok());
    }

    #[test]
    fn bypass_policy_skips_the_cache_entirely() {
        let engine = Engine::new(MockLlm::gpt4());
        let cached = request("Hello there!");
        let bypass = cached.clone().with_options(askit_llm::RequestOptions {
            cache: CachePolicy::Bypass,
            ..askit_llm::RequestOptions::default()
        });
        // A bypass request reaches the model and stores nothing...
        let _ = engine.complete(&bypass).unwrap();
        let _ = engine.complete(&bypass).unwrap();
        assert_eq!(engine.model().calls(), 2, "bypass always reaches the model");
        let stats = engine.cache_stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (0, 0, 0),
            "bypass neither probes nor populates: {stats:?}"
        );
        // ...and an identical cache-friendly request still misses afterward.
        let _ = engine.complete(&cached).unwrap();
        assert_eq!(engine.model().calls(), 3);
        // Batched bypass requests behave the same way.
        let results = engine.complete_batch(&[bypass.clone(), bypass]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(engine.model().calls(), 5);
    }

    #[test]
    fn rejected_completions_are_evicted_and_refetched() {
        let engine = Engine::new(MockLlm::gpt4());
        let req = request("Hello there!");
        let first = engine.complete(&req).unwrap();
        // The caller rejects it (downstream validation failed).
        engine.reject_completion(&req, 0);
        assert_eq!(engine.cache_stats().invalidations, 1);
        // The retry misses the cache and reaches the model again.
        let calls = engine.model().calls();
        let second = engine.complete(&req).unwrap();
        assert_eq!(engine.model().calls(), calls + 1, "retry must re-ask");
        // The deterministic mock redraws the same response; a sampled
        // backend would now produce a fresh one.
        assert_eq!(first, second);
    }
}
