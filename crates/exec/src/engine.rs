//! The [`Engine`]: cache-fronted, pool-backed completion submission.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use crate::lock;
use std::time::Duration;

use askit_llm::{
    CachePolicy, Completion, CompletionRequest, LanguageModel, LlmError, LoadObserver, ModelChoice,
    PreparedRequest,
};

use crate::cache::{CacheStats, CompletionCache};
use crate::pool::WorkerPool;
use crate::sched::{Scheduler, WidthBounds};

/// Configuration of an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for batched submission and [`Engine::map`]. `0` means
    /// auto: the `ASKIT_WORKERS` environment variable if set, otherwise the
    /// machine's full available parallelism.
    pub workers: usize,
    /// Maximum cached completions. `0` disables the cache.
    pub cache_capacity: usize,
    /// Directory the completion cache persists to. `None` (the default)
    /// keeps the cache in memory only; with a directory, the engine
    /// warm-starts from whatever a previous process flushed there and spills
    /// back on [`Engine::persist`] / drop. No cross-process locking is done
    /// unless [`EngineConfig::shared_cache`] is also set.
    pub cache_dir: Option<PathBuf>,
    /// Opens the cache directory in **shared** mode
    /// ([`CompletionCache::open_shared`]): completion bodies live in a
    /// content-addressed object store and flushes merge per shard under
    /// advisory file locks, so any number of concurrent processes can point
    /// at one directory safely. Ignored without a `cache_dir`.
    pub shared_cache: bool,
    /// Default time-to-live for cached completions. `None` = never expire.
    /// Per-request TTLs ([`askit_llm::RequestOptions::ttl`]) win per entry.
    pub cache_ttl: Option<Duration>,
    /// Turns on AIMD width adaptation for the per-model sub-pools: every
    /// model gets an admission gate whose width grows additively on
    /// successful completions and is cut multiplicatively on observed
    /// 429s/timeouts. Off by default — widths stay static.
    pub adaptive: bool,
    /// Explicit per-model sub-pool width bounds. A listed model is
    /// admission-gated even without [`EngineConfig::adaptive`] (a static
    /// cap at its ceiling); ceilings of `0` resolve from
    /// `ASKIT_WORKERS_<MODEL>` or the global width. Unlisted models are
    /// gated only when adaptive is on or their environment override is set.
    pub model_widths: Vec<(ModelChoice, WidthBounds)>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            cache_capacity: 4096,
            cache_dir: None,
            shared_cache: false,
            cache_ttl: None,
            adaptive: false,
            model_widths: Vec::new(),
        }
    }
}

impl EngineConfig {
    /// Overrides the worker count (`0` = auto).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the cache capacity (`0` disables caching).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Makes the cache durable under `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Selects shared (multi-process) mode for the cache directory.
    #[must_use]
    pub fn with_shared_cache(mut self, shared: bool) -> Self {
        self.shared_cache = shared;
        self
    }

    /// Sets the default TTL for cached completions.
    #[must_use]
    pub fn with_cache_ttl(mut self, ttl: Duration) -> Self {
        self.cache_ttl = Some(ttl);
        self
    }

    /// Turns AIMD width adaptation on or off.
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Bounds one model's sub-pool width (repeatable; the last setting for
    /// a model wins).
    #[must_use]
    pub fn with_model_width(mut self, model: ModelChoice, bounds: WidthBounds) -> Self {
        self.model_widths.push((model, bounds));
        self
    }
}

/// Resolves `0` to the `ASKIT_WORKERS` environment variable (when set to a
/// positive number) or, failing that, the machine's full available
/// parallelism. An explicit configuration always wins. Public so CLIs can
/// report the width an engine *would* get (e.g. the eval harness prints
/// resolved per-model widths at startup) without building one.
pub fn resolve_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("ASKIT_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Lifecycle of one speculative prefetch, keyed by the request fingerprint.
///
/// The ledger makes speculation *withdrawable*: a rejected speculation must
/// never land in the cache after the rejection, whatever the interleaving
/// between the background job and the foreground path. Every transition
/// happens under one mutex:
///
/// * `prefetch` inserts `Queued` and submits the job;
/// * the job claims `Queued → Running`, completes the request, and — only
///   if still `Running` — publishes to the cache, then removes the entry
///   (notifying `settled`);
/// * a foreground miss *claims* a still-`Queued` key (removing it, so the
///   job abandons without computing) and completes the request itself — the
///   pool may be saturated, and blocking on a queued job would deadlock a
///   nested fan-out;
/// * a foreground miss that finds the key **`Running` joins it**: it waits
///   on `settled` until the job's entry is gone, then re-probes the cache.
///   Waiting on `Running` is deadlock-free — `Running` means a worker
///   thread is already executing the model call and needs no further pool
///   capacity to finish — and it is what keeps a network backend from
///   paying the same round trip twice when validation loses the race
///   against its own prefetch;
/// * `reject_completion` removes a `Queued` key or marks a `Running` one
///   `Cancelled`, so the job discards its result (joiners see the
///   `Cancelled` phase and fall back to completing in the foreground).
#[derive(Debug, PartialEq, Eq)]
enum SpecPhase {
    Queued,
    Running,
    Cancelled,
}

#[derive(Debug, Default)]
struct SpeculationLedger {
    phases: Mutex<HashMap<u64, SpecPhase>>,
    /// Notified whenever a `Running` entry is removed (published, failed,
    /// or cancelled-and-finished) so foreground joiners can re-probe.
    settled: Condvar,
}

/// The execution engine: owns a model, a persistent worker pool, and an
/// optional completion cache. Implements [`LanguageModel`] so it slots
/// anywhere a model does — the whole AskIt stack submits through it.
///
/// The model and cache live behind [`Arc`]s so background work (speculative
/// prefetch jobs) can hold them across submissions; the pool is joined on
/// drop, so no job outlives the engine.
pub struct Engine<L> {
    model: Arc<L>,
    config: EngineConfig,
    workers: usize,
    pool: WorkerPool,
    cache: Option<Arc<CompletionCache>>,
    speculative: Arc<SpeculationLedger>,
    /// Per-model admission gates between the pool and the backend. Every
    /// backend call — foreground, batched, or speculative — funnels through
    /// [`Scheduler::run_completion`]; ungated models pass through untouched.
    scheduler: Arc<Scheduler>,
}

impl<L> std::fmt::Debug for Engine<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("cache", &self.cache)
            .finish()
    }
}

impl<L: LanguageModel> Engine<L> {
    /// Wraps a model with the default configuration.
    pub fn new(model: L) -> Self {
        Engine::with_config(model, EngineConfig::default())
    }

    /// Wraps a model with an explicit configuration.
    ///
    /// With a `cache_dir`, the completion cache is opened persistently and
    /// warm-starts from disk. An unusable directory is reported on stderr
    /// and degrades to an in-memory cache rather than failing construction —
    /// caching is an accelerator, not a correctness requirement.
    pub fn with_config(model: L, config: EngineConfig) -> Self {
        let cache = (config.cache_capacity > 0).then(|| match &config.cache_dir {
            Some(dir) => {
                let opened = if config.shared_cache {
                    CompletionCache::open_shared(config.cache_capacity, dir, config.cache_ttl)
                } else {
                    CompletionCache::open(config.cache_capacity, dir, config.cache_ttl)
                };
                opened.unwrap_or_else(|e| {
                    askit_obs::warn!(
                        "askit_exec",
                        "cache dir {} unusable ({e}); using an in-memory cache",
                        dir.display()
                    );
                    CompletionCache::new(config.cache_capacity).with_default_ttl(config.cache_ttl)
                })
            }
            None => CompletionCache::new(config.cache_capacity).with_default_ttl(config.cache_ttl),
        });
        let workers = resolve_workers(config.workers);
        let scheduler = Arc::new(Scheduler::new(
            config.adaptive,
            workers,
            &config.model_widths,
        ));
        // Backends that can report wire-level load (throttles their own
        // retry loop absorbs, timeouts) push signals straight into the
        // scheduler; for the rest the scheduler classifies returned results
        // itself. `subscribe_load`'s answer decides which, never both.
        let external = model.subscribe_load(Arc::clone(&scheduler) as Arc<dyn LoadObserver>);
        scheduler.set_external_signals(external);
        Engine {
            model: Arc::new(model),
            workers,
            pool: WorkerPool::new(workers),
            cache: cache.map(Arc::new),
            speculative: Arc::new(SpeculationLedger::default()),
            scheduler,
            config,
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The wrapped model.
    pub fn model(&self) -> &L {
        &self.model
    }

    /// Unwraps the engine, returning the model (the cache is flushed and
    /// dropped, the worker pool is joined).
    pub fn into_model(self) -> L {
        let Engine {
            model, pool, cache, ..
        } = self;
        // Shut the pool down first: still-queued prefetch jobs are
        // discarded (releasing their `Arc` clones of the model and cache)
        // and executing ones are joined.
        drop(pool);
        drop(cache);
        match Arc::try_unwrap(model) {
            Ok(model) => model,
            Err(_) => unreachable!("joining the pool released every model handle"),
        }
    }

    /// The resolved worker-pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The per-model scheduling layer (admission gates, AIMD widths).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// One-line description of the per-model admission widths against this
    /// engine's own global width — shorthand for
    /// `engine.scheduler().describe_widths(engine.workers())`, which every
    /// stats surface (eval reports, benches, `askit-serve /stats`) was
    /// spelling out by hand.
    pub fn describe_widths(&self) -> String {
        self.scheduler.describe_widths(self.workers)
    }

    /// Cache counters (all zero when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_deref()
            .map(CompletionCache::stats)
            .unwrap_or_default()
    }

    /// Flushes the completion cache's buffered mutations to disk, returning
    /// the number of records written. A no-op (0) when the cache is disabled
    /// or in-memory. The flush also happens automatically when the engine is
    /// dropped, so plain program exit is durable; call this explicitly at
    /// checkpoints that must survive a later crash.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying filesystem.
    pub fn persist(&self) -> std::io::Result<u64> {
        self.cache
            .as_deref()
            .map_or(Ok(0), CompletionCache::persist)
    }

    /// The cache this request may use: `None` when caching is disabled or
    /// the request asks to bypass it.
    fn cache_for(&self, request: &CompletionRequest) -> Option<&Arc<CompletionCache>> {
        if request.options.cache == CachePolicy::Bypass {
            return None;
        }
        self.cache.as_ref()
    }

    /// Runs `f` over every item on the persistent worker pool, preserving
    /// item order in the result. This is the task-level fan-out the eval
    /// drivers use: each item typically performs a whole retry conversation
    /// through [`Engine::complete_tagged`].
    ///
    /// Nested use is safe and spawn-free: an item that itself calls
    /// [`Engine::map`] or `complete_batch` on this engine completes the
    /// inner work via the pool's caller-runs discipline even when every
    /// pool thread is occupied by outer items.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.pool.map(items, f)
    }

    /// Resolves a foreground miss against any speculation in flight for
    /// the same turn. Returns whether an in-flight speculation was
    /// **joined**: `true` means a `Running` job was waited out and the
    /// caller should re-probe the cache (the job published there on
    /// success) before paying for a completion of its own.
    ///
    /// A still-`Queued` speculation is *claimed* instead (removed, so the
    /// job abandons without computing, and the foreground completes it) —
    /// the pool may be saturated, and waiting on a job no worker has
    /// started would deadlock a nested fan-out. `Running` is safe to wait
    /// on: the executing worker needs no additional pool capacity to
    /// finish. This join is what the ROADMAP's speculation gap called for:
    /// on a network backend, "complete it again ourselves" costs a real
    /// duplicate round trip, so the foreground must wait for the in-flight
    /// request rather than double-complete.
    fn join_or_claim_speculation(&self, key: u64) -> bool {
        let mut phases = lock(&self.speculative.phases);
        loop {
            match phases.get(&key) {
                Some(SpecPhase::Queued) => {
                    phases.remove(&key);
                    return false;
                }
                Some(SpecPhase::Running) => {
                    phases = self
                        .speculative
                        .settled
                        .wait(phases)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if !phases.contains_key(&key) {
                        return true; // the job settled: re-probe the cache
                    }
                    // Spurious wake, another key settled, or this one was
                    // cancelled meanwhile: loop and re-inspect.
                }
                // No speculation, or one the caller's own rejection already
                // cancelled: the foreground completes it.
                Some(SpecPhase::Cancelled) | None => return false,
            }
        }
    }

    /// Withdraws a speculation whose prediction turned out wrong: a queued
    /// job is abandoned, a running one is told to discard its result. Any
    /// foreground joiner is woken so it sees the cancellation promptly
    /// instead of waiting out the doomed job.
    fn cancel_speculation(&self, key: u64) {
        let mut phases = lock(&self.speculative.phases);
        match phases.get_mut(&key) {
            Some(phase @ SpecPhase::Running) => *phase = SpecPhase::Cancelled,
            Some(SpecPhase::Queued) => {
                phases.remove(&key);
            }
            _ => {}
        }
        self.speculative.settled.notify_all();
    }
}

impl<L: LanguageModel + 'static> LanguageModel for Engine<L> {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        self.complete_tagged(request, 0)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let trace = request.options.trace;
        let Some(cache) = self.cache_for(request) else {
            return self.scheduler.run_completion_traced(
                request.options.model,
                request.options.deadline,
                trace,
                || self.model.complete_tagged(request, sample),
            );
        };
        // One fingerprint serves the probe and the insert.
        let key = request.fingerprint(sample);
        let probed = {
            let mut probe = askit_obs::span(trace, "cache_probe");
            let probed = cache.get_keyed(key, request, sample);
            probe.set_arg("hit", probed.is_some());
            probed
        };
        if let Some(hit) = probed {
            return Ok(hit);
        }
        if sample == 0 && self.join_or_claim_speculation(key) {
            // Joined an in-flight speculation: its completion (if it
            // succeeded) is in the cache now — no second model call.
            let warm = cache.get_keyed(key, request, sample);
            askit_obs::event(trace, "speculation_join").arg("hit", warm.is_some());
            if let Some(hit) = warm {
                return Ok(hit);
            }
        }
        let completion = self.scheduler.run_completion_traced(
            request.options.model,
            request.options.deadline,
            trace,
            || self.model.complete_tagged(request, sample),
        )?;
        cache.put_keyed(key, request, sample, completion.clone());
        Ok(completion)
    }

    /// The zero-rehash submission path: the prepared content hash is
    /// extended with the sample salt (eight bytes) to key the cache, and
    /// the wrapped model receives the prepared request so it never re-hashes
    /// either.
    fn complete_prepared(
        &self,
        prepared: &PreparedRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        let trace = prepared.request().options.trace;
        let Some(cache) = self.cache_for(prepared.request()) else {
            return self.scheduler.run_completion_traced(
                prepared.request().options.model,
                prepared.request().options.deadline,
                trace,
                || self.model.complete_prepared(prepared, sample),
            );
        };
        let key = prepared.fingerprint(sample);
        let probed = {
            let mut probe = askit_obs::span(trace, "cache_probe");
            let probed = cache.get_keyed(key, prepared.request(), sample);
            probe.set_arg("hit", probed.is_some());
            probed
        };
        if let Some(hit) = probed {
            return Ok(hit);
        }
        if sample == 0 && self.join_or_claim_speculation(key) {
            let warm = cache.get_keyed(key, prepared.request(), sample);
            askit_obs::event(trace, "speculation_join").arg("hit", warm.is_some());
            if let Some(hit) = warm {
                return Ok(hit);
            }
        }
        let completion = self.scheduler.run_completion_traced(
            prepared.request().options.model,
            prepared.request().options.deadline,
            trace,
            || self.model.complete_prepared(prepared, sample),
        )?;
        cache.put_keyed(key, prepared.request(), sample, completion.clone());
        Ok(completion)
    }

    /// Accepts the speculation when a cache can hold its result: the
    /// request is completed on the worker pool in the background and lands
    /// in the completion cache, so the foreground's next submission of the
    /// same turn is a hit. See the `SpeculationLedger` internals for how a
    /// wrong speculation is withdrawn without ever resurrecting in the
    /// cache.
    fn prefetch(&self, prepared: &PreparedRequest) -> bool {
        let Some(cache) = self.cache_for(prepared.request()) else {
            return false;
        };
        let key = prepared.fingerprint(0);
        if cache.peek_key(key) {
            return true; // already warm — the speculation is already paid for
        }
        {
            let mut phases = lock(&self.speculative.phases);
            match phases.get(&key) {
                Some(SpecPhase::Queued | SpecPhase::Running) => return true,
                Some(SpecPhase::Cancelled) => return false,
                None => phases.insert(key, SpecPhase::Queued),
            };
        }
        let model = Arc::clone(&self.model);
        let cache = Arc::clone(cache);
        let ledger = Arc::clone(&self.speculative);
        let scheduler = Arc::clone(&self.scheduler);
        let prepared = prepared.clone();
        self.pool.submit(Box::new(move || {
            {
                let mut phases = lock(&ledger.phases);
                match phases.get_mut(&key) {
                    Some(phase @ SpecPhase::Queued) => *phase = SpecPhase::Running,
                    // Claimed by a foreground miss or withdrawn: abandon.
                    _ => {
                        phases.remove(&key);
                        ledger.settled.notify_all();
                        return;
                    }
                }
            }
            // If the backend panics, the pool swallows the payload — so the
            // `Running` entry must not leak (later prefetches of this turn
            // would be no-op `true`s forever). The guard clears it on
            // unwind; the normal path disarms and cleans up itself.
            struct ClearOnUnwind {
                ledger: Arc<SpeculationLedger>,
                key: u64,
                armed: bool,
            }
            impl Drop for ClearOnUnwind {
                fn drop(&mut self) {
                    if self.armed {
                        lock(&self.ledger.phases).remove(&self.key);
                        // Wake joiners: they re-probe, miss, and complete
                        // in the foreground instead of waiting forever.
                        self.ledger.settled.notify_all();
                    }
                }
            }
            let mut guard = ClearOnUnwind {
                ledger: Arc::clone(&ledger),
                key,
                armed: true,
            };
            // Speculative work obeys the same admission gates as foreground
            // submissions — a prefetch burst must not let the pool stampede
            // a model whose width AIMD just cut.
            let outcome = scheduler.run_completion_traced(
                prepared.request().options.model,
                prepared.request().options.deadline,
                prepared.request().options.trace,
                || model.complete_prepared(&prepared, 0),
            );
            guard.armed = false;
            let mut phases = lock(&ledger.phases);
            if matches!(phases.get(&key), Some(SpecPhase::Running)) {
                if let Ok(completion) = outcome {
                    // Published under the ledger lock so a concurrent
                    // rejection either sees the phase (and cancels the put)
                    // or sees the entry (and evicts it) — never neither.
                    cache.put_keyed(key, prepared.request(), 0, completion);
                }
            }
            phases.remove(&key);
            // The entry is gone *and* the publish (if any) is visible:
            // joined foreground misses can re-probe now.
            ledger.settled.notify_all();
        }));
        true
    }

    /// Splits the batch across the persistent worker pool **by index**:
    /// misses are claimed item-by-item over the borrowed request slice, so
    /// no `CompletionRequest` is ever cloned and uneven per-request costs
    /// balance across workers. Each request still goes through the cache
    /// individually (honoring its cache policy, with at most one
    /// fingerprint computed per request), and results come back in request
    /// order.
    ///
    /// Note this deliberately does **not** forward to the wrapped model's
    /// own `complete_batch`: per-index claiming replaced the old
    /// chunk-and-clone scheme. A backend with a genuinely batched wire
    /// call would want a borrowed-slice batch entry point on the trait
    /// before being driven through an engine.
    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        // Probe the cache up front so only true misses reach the model;
        // bypass requests never probe (and are never fingerprinted — their
        // key would be dead weight). Each cacheable request is hashed
        // exactly once, shared between the probe and the post-miss insert.
        let mut keys: Vec<u64> = vec![0; requests.len()];
        let mut results: Vec<Option<Result<Completion, LlmError>>> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let cache = self.cache_for(r)?;
                let key = r.fingerprint(0);
                keys[i] = key;
                cache.get_keyed(key, r, 0).map(Ok)
            })
            .collect();
        let miss_indices: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| i)
            .collect();
        if !miss_indices.is_empty() {
            let completed: Vec<(usize, Result<Completion, LlmError>)> =
                self.pool.map(&miss_indices, |_, &index| {
                    // A miss the foreground is about to compute claims any
                    // still-queued speculation for the same turn (or joins
                    // a running one), exactly like the single-request
                    // paths — otherwise the pool would pay a duplicate
                    // model call.
                    if let Some(cache) = self.cache_for(&requests[index]) {
                        if self.join_or_claim_speculation(keys[index]) {
                            if let Some(hit) = cache.get_keyed(keys[index], &requests[index], 0) {
                                return (index, Ok(hit));
                            }
                        }
                    }
                    let outcome = self.scheduler.run_completion_traced(
                        requests[index].options.model,
                        requests[index].options.deadline,
                        requests[index].options.trace,
                        || self.model.complete_tagged(&requests[index], 0),
                    );
                    (index, outcome)
                });
            for (index, outcome) in completed {
                if let (Some(cache), Ok(completion)) = (self.cache_for(&requests[index]), &outcome)
                {
                    cache.put_keyed(keys[index], &requests[index], 0, completion.clone());
                }
                results[index] = Some(outcome);
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every request resolved"))
            .collect()
    }

    /// Evicts the rejected completion so a retry re-asks the model instead
    /// of replaying a known-bad answer, withdraws any in-flight speculation
    /// for the same turn, then forwards the rejection to the wrapped
    /// backend (in case it memoizes too). One fingerprint serves both the
    /// withdrawal and the eviction.
    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        if let Some(cache) = &self.cache {
            let key = request.fingerprint(sample);
            if sample == 0 {
                self.cancel_speculation(key);
            }
            // Session-scoped rejection: later submissions this session
            // re-ask the model, but the body stays persisted so a warm
            // restart replays the whole retry conversation from cache.
            cache.reject_keyed(key, request, sample);
        }
        self.model.reject_completion(request, sample);
    }

    /// [`LanguageModel::reject_completion`] minus the conversation re-hash:
    /// the withdrawal and the eviction both key off the prepared hash, so
    /// rejection cost stays constant as the retry conversation grows.
    fn reject_prepared(&self, prepared: &PreparedRequest, sample: u64) {
        if let Some(cache) = &self.cache {
            let key = prepared.fingerprint(sample);
            if sample == 0 {
                self.cancel_speculation(key);
            }
            cache.reject_keyed(key, prepared.request(), sample);
        }
        self.model.reject_prepared(prepared, sample);
    }

    fn model_name(&self) -> &str {
        self.model.model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_llm::{ChatMessage, MockLlm, ScriptedLlm};

    fn request(prompt: &str) -> CompletionRequest {
        CompletionRequest::from_prompt(prompt)
    }

    #[test]
    fn cache_serves_repeats_without_model_calls() {
        let engine = Engine::new(MockLlm::gpt4());
        let req = request("Hello there!");
        let first = engine.complete(&req).unwrap();
        let calls_after_first = engine.model().calls();
        let second = engine.complete(&req).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            engine.model().calls(),
            calls_after_first,
            "hit skips the model"
        );
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn sample_ordinals_bypass_stale_entries() {
        let engine = Engine::new(MockLlm::gpt4());
        let req = request("Hello there!");
        let _ = engine.complete_tagged(&req, 0).unwrap();
        let calls = engine.model().calls();
        let _ = engine.complete_tagged(&req, 1).unwrap();
        assert_eq!(
            engine.model().calls(),
            calls + 1,
            "new ordinal reaches the model"
        );
    }

    #[test]
    fn disabled_cache_always_submits() {
        let engine = Engine::with_config(
            MockLlm::gpt4(),
            EngineConfig::default().with_cache_capacity(0),
        );
        let req = request("Hello there!");
        let _ = engine.complete(&req).unwrap();
        let _ = engine.complete(&req).unwrap();
        assert_eq!(engine.model().calls(), 2);
        assert_eq!(engine.cache_stats(), CacheStats::default());
    }

    #[test]
    fn batch_preserves_order_and_caches() {
        let engine = Engine::with_config(MockLlm::gpt4(), EngineConfig::default().with_workers(4));
        let requests: Vec<CompletionRequest> =
            (0..12).map(|i| request(&format!("Prompt {i}"))).collect();
        let serial: Vec<String> = requests
            .iter()
            .map(|r| engine.model().complete(r).unwrap().text)
            .collect();
        let batched = engine.complete_batch(&requests);
        for (expected, got) in serial.iter().zip(&batched) {
            assert_eq!(expected, &got.as_ref().unwrap().text);
        }
        // Everything is now resident: a second batch is pure hits.
        let calls = engine.model().calls();
        let again = engine.complete_batch(&requests);
        assert_eq!(engine.model().calls(), calls);
        assert_eq!(again.len(), 12);
        assert!(engine.cache_stats().hits >= 12);
    }

    #[test]
    fn batch_surfaces_per_request_errors_in_place() {
        let engine = Engine::with_config(
            ScriptedLlm::new(["only response"]),
            EngineConfig::default().with_workers(1),
        );
        let results = engine.complete_batch(&[request("a"), request("b")]);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(LlmError::Exhausted));
    }

    #[test]
    fn engine_is_a_language_model() {
        let engine = Engine::new(MockLlm::gpt4());
        assert_eq!(engine.model_name(), "sim-gpt-4");
        // Conversations with history flow through unchanged.
        let req = CompletionRequest {
            messages: vec![
                ChatMessage::user("Hello there!"),
                ChatMessage::assistant("Hi."),
                ChatMessage::user("And again!"),
            ],
            temperature: 1.0,
            options: askit_llm::RequestOptions::default(),
        };
        assert!(engine.complete(&req).is_ok());
    }

    #[test]
    fn bypass_policy_skips_the_cache_entirely() {
        let engine = Engine::new(MockLlm::gpt4());
        let cached = request("Hello there!");
        let bypass = cached.clone().with_options(askit_llm::RequestOptions {
            cache: CachePolicy::Bypass,
            ..askit_llm::RequestOptions::default()
        });
        // A bypass request reaches the model and stores nothing...
        let _ = engine.complete(&bypass).unwrap();
        let _ = engine.complete(&bypass).unwrap();
        assert_eq!(engine.model().calls(), 2, "bypass always reaches the model");
        let stats = engine.cache_stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (0, 0, 0),
            "bypass neither probes nor populates: {stats:?}"
        );
        // ...and an identical cache-friendly request still misses afterward.
        let _ = engine.complete(&cached).unwrap();
        assert_eq!(engine.model().calls(), 3);
        // Batched bypass requests behave the same way.
        let results = engine.complete_batch(&[bypass.clone(), bypass]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(engine.model().calls(), 5);
    }

    #[test]
    fn adaptive_engine_cuts_width_from_backend_throttle_signals() {
        use askit_llm::{mock::LoadProfile, ModelChoice, RequestOptions};
        // A zero-wide gpt4 capacity: every admission reports a throttle at
        // the wire (the mock still answers, like a backend whose own retry
        // loop absorbs the 429).
        let mock = MockLlm::new(
            askit_llm::MockLlmConfig::gpt4()
                .with_load(LoadProfile::default().cap(ModelChoice::Gpt4, 0)),
            askit_llm::Oracle::standard(),
        );
        let engine = Engine::with_config(
            mock,
            EngineConfig::default().with_workers(4).with_adaptive(true),
        );
        assert!(engine.scheduler().is_gated(ModelChoice::Gpt4));
        let width_of = |engine: &Engine<MockLlm>, model| {
            engine
                .scheduler()
                .widths()
                .into_iter()
                .find(|(m, _)| *m == model)
                .map(|(_, w)| w)
                .unwrap()
        };
        assert_eq!(width_of(&engine, ModelChoice::Gpt4), 4);
        for i in 0..4 {
            let req = request(&format!("Hello there! #{i}")).with_options(RequestOptions {
                model: ModelChoice::Gpt4,
                ..RequestOptions::default()
            });
            engine.complete(&req).unwrap();
        }
        assert_eq!(
            width_of(&engine, ModelChoice::Gpt4),
            1,
            "four throttled calls cut 4 → 1"
        );
        // The default-routed gate saw only successes and stays wide open.
        let req = request("Hello there!");
        engine.complete(&req).unwrap();
        assert_eq!(width_of(&engine, ModelChoice::Default), 4);
    }

    #[test]
    fn rejected_completions_are_evicted_and_refetched() {
        let engine = Engine::new(MockLlm::gpt4());
        let req = request("Hello there!");
        let first = engine.complete(&req).unwrap();
        // The caller rejects it (downstream validation failed).
        engine.reject_completion(&req, 0);
        assert_eq!(engine.cache_stats().invalidations, 1);
        // The retry misses the cache and reaches the model again.
        let calls = engine.model().calls();
        let second = engine.complete(&req).unwrap();
        assert_eq!(engine.model().calls(), calls + 1, "retry must re-ask");
        // The deterministic mock redraws the same response; a sampled
        // backend would now produce a fresh one.
        assert_eq!(first, second);
    }
}
