//! A content-addressed object store shared safely between processes.
//!
//! [`ObjectStore`] is the durability substrate behind the *shared* cache
//! mode ([`crate::CompletionCache::open_shared`]) and `askit-core`'s shared
//! `FunctionStore`: any number of processes point at one `--cache-dir` and
//! cooperate instead of clobbering. Three ideas make that safe without a
//! daemon:
//!
//! 1. **Content addressing.** Object files are named by the [`Cid`] of
//!    their bytes (`objects/ab/cdef….obj`), so they are *write-once*: two
//!    processes writing "the same" completion race toward an identical
//!    file, and the loser's rename is a no-op, not corruption. Reads verify
//!    the CID, so a damaged object degrades to a miss, never a wrong
//!    answer.
//! 2. **Atomic publication.** Every visible file — objects, namespace
//!    links, index files written by callers — is produced by writing a
//!    uniquely-named temporary ([`unique_tmp_name`] embeds the pid and a
//!    process-local counter) and `rename`ing it into place. Readers
//!    therefore see old-or-new bytes, never a half-written file.
//! 3. **Advisory locks for read-modify-write.** Mutable state that *must*
//!    be merged (the completion cache's per-shard index) is updated under
//!    an exclusive [`LockGuard`] — a `std`-only RAII wrapper over the
//!    OS advisory file lock (`flock`-style, via [`std::fs::File::lock`]).
//!    Locks live in `locks/`, one file per resource, so independent shards
//!    never contend.
//!
//! Mutable *pointers* into the immutable object space live under `refs/`:
//! a **namespace** (e.g. `code_cache`) maps a key CID to a target CID via a
//! one-line link file, replaced atomically. That is the whole
//! task-CID → compiled-object-CID table compiled-function persistence
//! needs.
//!
//! The store never deletes objects; garbage is bounded because callers'
//! indexes are LRU-capped and object bodies dedupe. `rm -r` of the root is
//! the compaction story, exactly like a build cache.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cas::Cid;

/// Process-local sequence number for temporary file names.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temporary file name that no other process (pid) and no other call in
/// this process (counter) will pick. Concurrent writers publishing to the
/// same final path via `rename` then never truncate each other's
/// in-flight temporaries — the fix for the snapshot-rename race in
/// `persist::write_snapshot`.
pub(crate) fn unique_tmp_name(stem: &str) -> String {
    format!(
        "{stem}.{}.{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// Writes `bytes` to `path` atomically: a uniquely-named temporary in the
/// same directory, then `rename`. Readers observe the old file or the new
/// one, never a prefix.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("atomic");
    let tmp = dir.join(unique_tmp_name(stem));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Leave no droppings on failure (cross-device, permissions…).
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// An exclusive advisory file lock, released on drop.
///
/// Built entirely on [`std::fs::File::lock`] / [`File::unlock`] (stable
/// `flock` semantics, no `unsafe`, no libc). The lock is **advisory**:
/// it serializes cooperating `LockGuard` users, which is every writer in
/// this crate; it does not stop a rogue `cat > file`. It is held per open
/// file description, so two guards on one path exclude each other even
/// inside a single process — which is what lets the multi-instance tests
/// exercise the cross-process protocol in-process.
///
/// On process death (even `kill -9`) the OS drops the lock with the file
/// descriptor, so a crashed worker never wedges the fleet.
#[derive(Debug)]
pub struct LockGuard {
    file: File,
}

impl LockGuard {
    /// Blocks until the exclusive lock on `path` is held, creating the
    /// (empty) lock file as needed.
    ///
    /// # Errors
    ///
    /// I/O errors creating or locking the file.
    pub fn acquire(path: impl Into<PathBuf>) -> io::Result<LockGuard> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        file.lock()?;
        Ok(LockGuard { file })
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = self.file.unlock();
    }
}

/// A content-addressed object store rooted at a directory (see the module
/// docs for the layout and the concurrency argument).
///
/// The handle is cheap to clone — it is a path; all state is on disk.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    root: PathBuf,
}

impl ObjectStore {
    /// Opens (creating as needed) a store rooted at `root`. The layout —
    /// `objects/`, `refs/`, `locks/` — is created eagerly so later
    /// operations only ever touch leaf files.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directories.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ObjectStore> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        std::fs::create_dir_all(root.join("refs"))?;
        std::fs::create_dir_all(root.join("locks"))?;
        Ok(ObjectStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where the object named `cid` lives: two hex digits of fan-out, then
    /// the rest of the name (kept short enough for any filesystem).
    fn object_path(&self, cid: Cid) -> PathBuf {
        let hex = cid.to_hex();
        self.root
            .join("objects")
            .join(&hex[..2])
            .join(format!("{}.obj", &hex[2..]))
    }

    /// Stores `bytes`, returning their [`Cid`]. Idempotent and
    /// race-free: if the object already exists the write is skipped, and
    /// two concurrent writers of equal content publish byte-identical
    /// files, so whichever rename lands last changes nothing.
    ///
    /// # Errors
    ///
    /// I/O errors only; "already stored" is success.
    pub fn put_bytes(&self, bytes: &[u8]) -> io::Result<Cid> {
        let cid = Cid::of(bytes);
        let path = self.object_path(cid);
        if path.exists() {
            return Ok(cid);
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        write_atomic(&path, bytes)?;
        Ok(cid)
    }

    /// Fetches the object named `cid`, verifying the bytes still hash to
    /// it. A missing object *and* a damaged one both read as `Ok(None)` —
    /// to a cache, either is simply a miss.
    ///
    /// # Errors
    ///
    /// I/O errors other than the object not existing.
    pub fn get(&self, cid: Cid) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.object_path(cid)) {
            Ok(bytes) => {
                if Cid::of(&bytes) == cid {
                    Ok(Some(bytes))
                } else {
                    Ok(None)
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Whether the object named `cid` is present (no content verification —
    /// use [`ObjectStore::get`] when the bytes matter).
    pub fn contains(&self, cid: Cid) -> bool {
        self.object_path(cid).exists()
    }

    /// The directory of `namespace`'s link files.
    fn namespace_dir(&self, namespace: &str) -> PathBuf {
        debug_assert!(
            namespace
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "namespace '{namespace}' must stay a single path component"
        );
        self.root.join("refs").join(namespace)
    }

    /// Points `namespace`/`key` at `target`, atomically replacing any
    /// previous target (last writer wins — for deterministic producers both
    /// writers wrote the same CID anyway).
    ///
    /// # Errors
    ///
    /// I/O errors creating the namespace or publishing the link.
    pub fn link(&self, namespace: &str, key: Cid, target: Cid) -> io::Result<()> {
        let dir = self.namespace_dir(namespace);
        std::fs::create_dir_all(&dir)?;
        write_atomic(&dir.join(key.to_hex()), format!("{target}\n").as_bytes())
    }

    /// Follows `namespace`/`key` to its target CID; `None` when the link
    /// does not exist or its content does not parse as a CID (treat as a
    /// miss, same as a damaged object).
    ///
    /// # Errors
    ///
    /// I/O errors other than the link not existing.
    pub fn resolve(&self, namespace: &str, key: Cid) -> io::Result<Option<Cid>> {
        match std::fs::read_to_string(self.namespace_dir(namespace).join(key.to_hex())) {
            Ok(text) => Ok(Cid::parse_hex(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Resolves `namespace`/`key` and fetches the object it points at, in
    /// one verified step (`None` on a missing link, dangling target, or
    /// damaged object).
    ///
    /// # Errors
    ///
    /// I/O errors other than not-found conditions.
    pub fn resolve_bytes(&self, namespace: &str, key: Cid) -> io::Result<Option<Vec<u8>>> {
        match self.resolve(namespace, key)? {
            Some(target) => self.get(target),
            None => Ok(None),
        }
    }

    /// Acquires the exclusive advisory lock named `name` (blocking), e.g.
    /// one per cache shard. Independent names never contend.
    ///
    /// # Errors
    ///
    /// I/O errors creating or locking the lock file.
    pub fn lock(&self, name: &str) -> io::Result<LockGuard> {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "lock name '{name}' must stay a single path component"
        );
        LockGuard::acquire(self.root.join("locks").join(format!("{name}.lock")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "askit-store-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn put_get_roundtrip_and_dedupe() {
        let dir = temp_dir("roundtrip");
        let store = ObjectStore::open(&dir).unwrap();
        let cid = store.put_bytes(b"the completion body").unwrap();
        assert_eq!(
            store.get(cid).unwrap().as_deref(),
            Some(&b"the completion body"[..])
        );
        // Writing the same content again lands on the same object.
        assert_eq!(store.put_bytes(b"the completion body").unwrap(), cid);
        assert!(store.contains(cid));
        // Different content, different object.
        let other = store.put_bytes(b"something else").unwrap();
        assert_ne!(other, cid);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_object_reads_as_miss() {
        let dir = temp_dir("damage");
        let store = ObjectStore::open(&dir).unwrap();
        let cid = store.put_bytes(b"pristine").unwrap();
        // Corrupt the object in place.
        std::fs::write(store.object_path(cid), b"tampered").unwrap();
        assert_eq!(store.get(cid).unwrap(), None, "hash mismatch is a miss");
        // An absent object is also a miss, not an error.
        assert_eq!(store.get(Cid::of(b"never stored")).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn links_resolve_and_replace_atomically() {
        let dir = temp_dir("links");
        let store = ObjectStore::open(&dir).unwrap();
        let key = Cid::of(b"task identity");
        let v1 = store.put_bytes(b"compiled v1").unwrap();
        let v2 = store.put_bytes(b"compiled v2").unwrap();
        assert_eq!(store.resolve("code_cache", key).unwrap(), None);
        store.link("code_cache", key, v1).unwrap();
        assert_eq!(store.resolve("code_cache", key).unwrap(), Some(v1));
        assert_eq!(
            store.resolve_bytes("code_cache", key).unwrap().as_deref(),
            Some(&b"compiled v1"[..])
        );
        store.link("code_cache", key, v2).unwrap();
        assert_eq!(store.resolve("code_cache", key).unwrap(), Some(v2));
        // A garbage link file reads as a miss.
        std::fs::write(
            store.namespace_dir("code_cache").join(key.to_hex()),
            b"not a cid",
        )
        .unwrap();
        assert_eq!(store.resolve("code_cache", key).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_guards_exclude_each_other() {
        // flock is held per open file description, so two guards in one
        // process model two processes faithfully.
        let dir = temp_dir("locks");
        let store = Arc::new(ObjectStore::open(&dir).unwrap());
        let inside = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = Arc::clone(&store);
                let inside = Arc::clone(&inside);
                scope.spawn(move || {
                    for _ in 0..25 {
                        let _guard = store.lock("shard-00").unwrap();
                        assert!(
                            !inside.swap(true, Ordering::SeqCst),
                            "two guards held the same lock at once"
                        );
                        std::thread::sleep(Duration::from_micros(50));
                        inside.store(false, Ordering::SeqCst);
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_lock_names_do_not_contend() {
        let dir = temp_dir("locknames");
        let store = ObjectStore::open(&dir).unwrap();
        let _a = store.lock("shard-00").unwrap();
        // Must not block: a different resource is a different lock file.
        let _b = store.lock("shard-01").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_whole_files() {
        let dir = temp_dir("atomic");
        let path = dir.join("index.idx");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second, longer than first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer than first");
        // No temporaries left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leaked temporaries: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
