//! End-to-end tests of the HTTP backend against the in-process
//! [`LoopbackServer`]: protocol round trips, keep-alive reuse, retry and
//! rate-limit behavior under scripted faults (429 bursts, torn frames,
//! mid-stream disconnects), in-flight coalescing, and — fronted by the
//! execution engine — the acceptance bar that a warm second run over the
//! same prompts is 100% cache hits with **zero** HTTP requests issued.

use std::sync::Arc;
use std::time::{Duration, Instant};

use askit_exec::{Engine, EngineConfig};
use askit_llm::{CompletionRequest, LanguageModel, LlmError, ModelChoice, PreparedRequest};
use askit_llm_http::{HttpLlm, HttpLlmConfig, LoopbackServer, RateLimit, Reply, RetryConfig};

/// A retry discipline fast enough for tests while still exercising real
/// backoff sleeps.
fn fast_retry() -> RetryConfig {
    RetryConfig {
        max_retries: 5,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(40),
    }
}

fn client_for(server: &LoopbackServer) -> HttpLlm {
    HttpLlm::new(HttpLlmConfig::new(server.api_base()).with_retry(fast_retry())).unwrap()
}

fn prompt(text: &str) -> CompletionRequest {
    CompletionRequest::from_prompt(text)
}

#[test]
fn basic_roundtrip_sends_auth_and_model_and_parses_usage() {
    let server = LoopbackServer::start().unwrap();
    server.script(Reply::Text("the answer is 42".into()));
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_api_key("sk-test-key-123")
            .with_retry(fast_retry()),
    )
    .unwrap();
    let completion = llm.complete(&prompt("What is 6 times 7?")).unwrap();
    assert_eq!(completion.text, "the answer is 42");
    assert!(completion.usage.completion_tokens > 0);
    assert!(completion.latency > Duration::ZERO);
    let requests = server.requests();
    assert_eq!(requests.len(), 1);
    assert_eq!(requests[0].path, "/v1/chat/completions");
    assert_eq!(
        requests[0].authorization.as_deref(),
        Some("Bearer sk-test-key-123")
    );
    assert_eq!(requests[0].model.as_deref(), Some("gpt-4"));
    assert_eq!(requests[0].last_user.as_deref(), Some("What is 6 times 7?"));
}

#[test]
fn model_routing_picks_the_wire_name() {
    let server = LoopbackServer::start().unwrap();
    let llm = client_for(&server);
    let mut request = prompt("route me");
    request.options.model = ModelChoice::Gpt35;
    llm.complete(&request).unwrap();
    assert_eq!(
        server.requests()[0].model.as_deref(),
        Some("gpt-3.5-turbo"),
        "ModelChoice::Gpt35 must route to the configured wire name"
    );
}

#[test]
fn keep_alive_reuses_one_connection_across_requests() {
    let server = LoopbackServer::start().unwrap();
    let llm = client_for(&server);
    for i in 0..5 {
        llm.complete(&prompt(&format!("prompt {i}"))).unwrap();
    }
    assert_eq!(server.hits(), 5);
    assert_eq!(
        server.connections(),
        1,
        "sequential requests share one keep-alive connection"
    );
    assert_eq!(llm.stats().reused_connections, 4);
}

#[test]
fn sse_streaming_reassembles_torn_unicode_deltas() {
    let server = LoopbackServer::start().unwrap();
    // The loopback server streams SSE over deliberately torn 7-byte
    // chunks, so multi-byte scalars tear mid-sequence on the wire.
    let text = "émoji 🦀 und 漢字 — forty-two";
    server.script(Reply::Sse(text.into()));
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_stream(true)
            .with_retry(fast_retry()),
    )
    .unwrap();
    let completion = llm.complete(&prompt("stream it")).unwrap();
    assert_eq!(completion.text, text);
    assert!(server.requests()[0].stream, "the request asked for SSE");
}

#[test]
fn scripted_429_burst_is_absorbed_by_backoff_and_token_bucket() {
    let server = LoopbackServer::start().unwrap();
    // Three throttles, then success — the client must absorb all of it
    // without surfacing an error.
    server.script_all([
        Reply::Status {
            status: 429,
            retry_after: None,
            body: r#"{"error":{"message":"rate limited"}}"#.into(),
        },
        Reply::Status {
            status: 429,
            retry_after: Some(0),
            body: r#"{"error":{"message":"rate limited"}}"#.into(),
        },
        Reply::Status {
            status: 429,
            retry_after: None,
            body: r#"{"error":{"message":"rate limited"}}"#.into(),
        },
        Reply::Text("finally".into()),
    ]);
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_retry(fast_retry())
            .with_rate_limit(
                ModelChoice::Default,
                RateLimit {
                    capacity: 2.0,
                    per_second: 200.0,
                },
            ),
    )
    .unwrap();
    let completion = llm.complete(&prompt("under pressure")).unwrap();
    assert_eq!(completion.text, "finally");
    assert_eq!(server.hits(), 4, "three 429s + the success");
    let stats = llm.stats();
    assert_eq!(stats.throttles, 3);
    assert_eq!(stats.retries, 3);
    // Each 429 drained the bucket, so at most ~2 tokens remain afterward.
    // (The refill rate is high to keep the test fast; the drain itself is
    // what the unit suite pins down.)
}

#[test]
fn burst_on_one_model_leaves_the_other_flowing_and_pushes_signals() {
    use askit_llm::{LoadObserver, LoadSignal};
    use std::sync::Mutex;

    #[derive(Default)]
    struct SignalLog(Mutex<Vec<(ModelChoice, LoadSignal)>>);
    impl LoadObserver for SignalLog {
        fn observed(&self, model: ModelChoice, signal: LoadSignal) {
            self.0.lock().unwrap().push((model, signal));
        }
    }

    let server = LoopbackServer::start().unwrap();
    // The server throttles every gpt-4 request and serves everything else:
    // a sustained 429 burst scoped to one wire model.
    server.set_default_handler(|request| match request.model.as_deref() {
        Some("gpt-4") => Reply::Status {
            status: 429,
            retry_after: Some(0),
            body: "gpt-4 is rate limited".into(),
        },
        _ => Reply::Text("fast lane".into()),
    });
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_retry(RetryConfig {
                max_retries: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(4),
            })
            // Both models are bucketed, so the drain has somewhere to land.
            .with_rate_limit(
                ModelChoice::Gpt4,
                RateLimit {
                    capacity: 2.0,
                    per_second: 100.0,
                },
            )
            .with_rate_limit(
                ModelChoice::Gpt35,
                RateLimit {
                    capacity: 1000.0,
                    per_second: 1000.0,
                },
            ),
    )
    .unwrap();
    let log = Arc::new(SignalLog::default());
    assert!(
        llm.subscribe_load(Arc::clone(&log) as Arc<dyn LoadObserver>),
        "the HTTP backend pushes wire-level signals"
    );
    // Exhaust gpt-4's retry budget (draining its bucket on every 429)...
    let mut doomed = prompt("hard question");
    doomed.options.model = ModelChoice::Gpt4;
    assert!(matches!(
        llm.complete(&doomed),
        Err(LlmError::Http { status: 429, .. })
    ));
    // ...while gpt-3.5 traffic flows at full speed throughout.
    let started = Instant::now();
    for i in 0..10 {
        let mut request = prompt(&format!("easy question {i}"));
        request.options.model = ModelChoice::Gpt35;
        assert_eq!(llm.complete(&request).unwrap().text, "fast lane");
    }
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "gpt35 stalled behind gpt4's drained bucket: {:?}",
        started.elapsed()
    );
    // The observer saw the wire truth: every absorbed 429 (three attempts),
    // and only successes for the unrelated model.
    let signals = log.0.lock().unwrap().clone();
    let gpt4_throttles = signals
        .iter()
        .filter(|(m, s)| *m == ModelChoice::Gpt4 && *s == LoadSignal::Throttled)
        .count();
    assert_eq!(gpt4_throttles, 3, "all absorbed 429s reported: {signals:?}");
    let gpt35_completions = signals
        .iter()
        .filter(|(m, s)| *m == ModelChoice::Gpt35 && matches!(s, LoadSignal::Completed { .. }))
        .count();
    assert_eq!(gpt35_completions, 10);
    assert!(signals
        .iter()
        .all(|(m, s)| *m != ModelChoice::Gpt35 || matches!(s, LoadSignal::Completed { .. })));
}

#[test]
fn exhausted_429_budget_surfaces_the_http_error() {
    let server = LoopbackServer::start().unwrap();
    let burst = || Reply::Status {
        status: 429,
        retry_after: None,
        body: "slow down".into(),
    };
    server.script_all((0..10).map(|_| burst()));
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base()).with_retry(RetryConfig {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
        }),
    )
    .unwrap();
    let err = llm.complete(&prompt("doomed")).unwrap_err();
    match err {
        LlmError::Http { status, message } => {
            assert_eq!(status, 429);
            assert!(message.contains("slow down"), "{message}");
        }
        other => panic!("expected Http 429, got {other:?}"),
    }
    assert_eq!(server.hits(), 3, "initial attempt + two retries");
}

#[test]
fn transient_5xx_and_torn_frames_are_retried() {
    let server = LoopbackServer::start().unwrap();
    server.script_all([
        Reply::Status {
            status: 503,
            retry_after: None,
            body: "warming up".into(),
        },
        Reply::TornBody("you will never read all of this".into()),
        Reply::Text("recovered".into()),
    ]);
    let llm = client_for(&server);
    let completion = llm.complete(&prompt("persist!")).unwrap();
    assert_eq!(completion.text, "recovered");
    assert_eq!(server.hits(), 3);
    assert_eq!(llm.stats().retries, 2);
}

#[test]
fn mid_stream_disconnect_is_retried_not_truncated() {
    let server = LoopbackServer::start().unwrap();
    server.script_all([
        Reply::SseTruncated("half an ans".into()),
        Reply::Sse("the whole answer".into()),
    ]);
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_stream(true)
            .with_retry(fast_retry()),
    )
    .unwrap();
    let completion = llm.complete(&prompt("stream me")).unwrap();
    assert_eq!(
        completion.text, "the whole answer",
        "a cut stream must never be served as a short answer"
    );
    assert_eq!(server.hits(), 2);
}

#[test]
fn server_disconnect_before_reply_is_retried() {
    let server = LoopbackServer::start().unwrap();
    server.script_all([Reply::Disconnect, Reply::Text("second try".into())]);
    let llm = client_for(&server);
    assert_eq!(llm.complete(&prompt("hello?")).unwrap().text, "second try");
}

#[test]
fn client_4xx_is_fatal_and_not_retried() {
    let server = LoopbackServer::start().unwrap();
    server.script(Reply::Status {
        status: 401,
        retry_after: None,
        body: r#"{"error":{"message":"bad credential"}}"#.into(),
    });
    let llm = client_for(&server);
    let err = llm.complete(&prompt("let me in")).unwrap_err();
    assert!(matches!(err, LlmError::Http { status: 401, .. }), "{err:?}");
    assert_eq!(server.hits(), 1, "401 must not burn the retry budget");
}

#[test]
fn request_timeout_is_honored() {
    let server = LoopbackServer::start().unwrap();
    // The handler sleeps past the client's deadline before answering.
    server.set_default_handler(|_| {
        std::thread::sleep(Duration::from_millis(400));
        Reply::Text("too late".into())
    });
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_retry(RetryConfig {
                max_retries: 0,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(1),
            })
            .with_request_timeout(Duration::from_millis(80)),
    )
    .unwrap();
    let started = Instant::now();
    let err = llm.complete(&prompt("quick, please")).unwrap_err();
    assert!(matches!(err, LlmError::Transport(_)), "{err:?}");
    assert!(
        started.elapsed() < Duration::from_millis(350),
        "the deadline must cut the wait short: {:?}",
        started.elapsed()
    );
}

#[test]
fn deadline_bounds_a_dripping_response_not_just_each_read() {
    let server = LoopbackServer::start().unwrap();
    // Every single-byte write lands well inside a naive per-read timeout;
    // only a whole-round-trip deadline can cut this off.
    server.set_default_handler(|_| Reply::Drip {
        content: "slow".into(),
        delay_ms: 30,
    });
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_retry(RetryConfig {
                max_retries: 0,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(1),
            })
            .with_request_timeout(Duration::from_millis(150)),
    )
    .unwrap();
    let started = Instant::now();
    let err = llm.complete(&prompt("hurry up")).unwrap_err();
    assert!(matches!(err, LlmError::Transport(_)), "{err:?}");
    // The body is >100 bytes at 30ms each (~3s+ to drip fully); the
    // deadline must fire around 150ms.
    assert!(
        started.elapsed() < Duration::from_millis(1000),
        "deadline did not bound the dripping response: {:?}",
        started.elapsed()
    );
}

#[test]
fn per_request_timeout_overrides_the_default() {
    let server = LoopbackServer::start().unwrap();
    server.set_default_handler(|_| {
        std::thread::sleep(Duration::from_millis(150));
        Reply::Text("slow but fine".into())
    });
    // Default deadline far too tight; the per-request override rescues it.
    let llm = HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_retry(RetryConfig {
                max_retries: 0,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(1),
            })
            .with_request_timeout(Duration::from_millis(30)),
    )
    .unwrap();
    let mut request = prompt("take your time");
    request.options.timeout = Some(Duration::from_secs(5));
    assert_eq!(llm.complete(&request).unwrap().text, "slow but fine");
}

#[test]
fn concurrent_identical_requests_coalesce_into_one_round_trip() {
    let server = LoopbackServer::start().unwrap();
    // A slow handler keeps the flight open long enough for every thread
    // to join it.
    server.set_default_handler(|request| {
        std::thread::sleep(Duration::from_millis(150));
        Reply::Text(format!(
            "slow echo of {:?}",
            request.last_user.as_deref().unwrap_or("")
        ))
    });
    let llm = Arc::new(client_for(&server));
    let texts: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let llm = Arc::clone(&llm);
                scope.spawn(move || llm.complete(&prompt("same question")).unwrap().text)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(texts.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(
        server.hits(),
        1,
        "four concurrent identical submissions share one wire request"
    );
    assert_eq!(llm.stats().coalesced, 3);
    // Distinct sample ordinals are distinct draws: they must NOT coalesce.
    let a = llm.complete_tagged(&prompt("same question"), 1).unwrap();
    assert_eq!(server.hits(), 2);
    let _ = a;
}

#[test]
fn prefetch_joins_and_claims_instead_of_double_fetching() {
    let server = LoopbackServer::start().unwrap();
    server.set_default_handler(|request| {
        std::thread::sleep(Duration::from_millis(100));
        Reply::Text(format!(
            "answer:{}",
            request.last_user.as_deref().unwrap_or("").len()
        ))
    });
    let llm = client_for(&server);
    let prepared = PreparedRequest::new(prompt("speculate on this"));
    assert!(llm.prefetch(&prepared), "client accepts speculation");
    // Submit while the speculation is (very likely) still in flight: the
    // foreground must join it, not issue a second request.
    let completion = llm.complete_prepared(&prepared, 0).unwrap();
    assert_eq!(completion.text, "answer:17");
    assert_eq!(server.hits(), 1, "speculation joined, not duplicated");
    let stats = llm.stats();
    assert_eq!(stats.prefetches, 1);
    assert_eq!(stats.coalesced, 1);
    // The claim freed the key: the next submission is a fresh round trip.
    let again = llm.complete_prepared(&prepared, 0).unwrap();
    assert_eq!(again.text, completion.text);
    assert_eq!(server.hits(), 2);
}

#[test]
fn rejected_landed_speculation_is_never_served() {
    let server = LoopbackServer::start().unwrap();
    let llm = client_for(&server);
    let prepared = PreparedRequest::new(prompt("reject me"));
    assert!(llm.prefetch(&prepared));
    // Wait for the speculation to land (fast: default handler is instant).
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.hits() == 0 {
        assert!(Instant::now() < deadline, "speculation never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(20)); // let the flight settle
    llm.reject_prepared(&prepared, 0);
    // The submission after the rejection must re-ask the service.
    llm.complete_prepared(&prepared, 0).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.hits() < 2 {
        assert!(
            Instant::now() < deadline,
            "rejected speculation was served instead of re-fetched"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The acceptance bar: engine-fronted, a second pass over the same
/// prompts is pure cache hits — the server sees not one more request.
#[test]
fn warm_second_run_issues_zero_http_requests() {
    let server = LoopbackServer::start().unwrap();
    let engine = Engine::with_config(
        client_for(&server),
        EngineConfig::default()
            .with_workers(4)
            .with_cache_capacity(4096),
    );
    let prompts: Vec<CompletionRequest> =
        (0..20).map(|i| prompt(&format!("problem #{i}"))).collect();

    let cold: Vec<String> = engine
        .complete_batch(&prompts)
        .into_iter()
        .map(|r| r.unwrap().text)
        .collect();
    let hits_after_cold = server.hits();
    assert_eq!(hits_after_cold, 20, "cold run reaches the wire once each");

    let warm: Vec<String> = engine
        .complete_batch(&prompts)
        .into_iter()
        .map(|r| r.unwrap().text)
        .collect();
    assert_eq!(cold, warm, "warm answers identical to cold");
    assert_eq!(
        server.hits(),
        hits_after_cold,
        "warm run issued zero HTTP requests"
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 20, "warm pass is 100% cache hits: {stats:?}");
    assert_eq!(stats.misses, 20);
}

/// Same acceptance bar across *processes* (simulated): a fresh engine over
/// the same persistent cache directory warm-starts and issues zero
/// requests even against a fresh server.
#[test]
fn persistent_cache_warm_starts_with_zero_requests() {
    let dir = std::env::temp_dir().join(format!(
        "askit-http-warmstart-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let prompts: Vec<CompletionRequest> =
        (0..10).map(|i| prompt(&format!("durable #{i}"))).collect();

    let cold_texts: Vec<String> = {
        let server = LoopbackServer::start().unwrap();
        let engine = Engine::with_config(
            client_for(&server),
            EngineConfig::default().with_cache_dir(&dir),
        );
        let texts = engine
            .complete_batch(&prompts)
            .into_iter()
            .map(|r| r.unwrap().text)
            .collect();
        engine.persist().unwrap();
        assert_eq!(server.hits(), 10);
        texts
    };

    let server = LoopbackServer::start().unwrap();
    let engine = Engine::with_config(
        client_for(&server),
        EngineConfig::default().with_cache_dir(&dir),
    );
    let warm_texts: Vec<String> = engine
        .complete_batch(&prompts)
        .into_iter()
        .map(|r| r.unwrap().text)
        .collect();
    assert_eq!(cold_texts, warm_texts);
    assert_eq!(server.hits(), 0, "warm start never touched the network");
    assert_eq!(engine.cache_stats().loaded, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Resilience: breakers, failover, hedging, deadlines.
// ---------------------------------------------------------------------------

use std::sync::Mutex;

use askit_llm::{BreakerState, LoadObserver, LoadSignal};
use askit_llm_http::{BreakerConfig, Fault, FaultWindow, HedgeConfig};

/// Collects every load signal for later assertions.
#[derive(Default)]
struct SignalLog(Mutex<Vec<LoadSignal>>);

impl LoadObserver for SignalLog {
    fn observed(&self, _model: ModelChoice, signal: LoadSignal) {
        self.0.lock().unwrap().push(signal);
    }
}

impl SignalLog {
    fn breaker_states(&self) -> Vec<(usize, BreakerState)> {
        self.0
            .lock()
            .unwrap()
            .iter()
            .filter_map(|signal| match signal {
                LoadSignal::Breaker { endpoint, state } => Some((*endpoint, *state)),
                _ => None,
            })
            .collect()
    }
}

fn two_endpoint_config(
    primary: &LoopbackServer,
    fallback: &LoopbackServer,
    breaker: BreakerConfig,
) -> HttpLlmConfig {
    HttpLlmConfig::new(primary.api_base())
        .with_fallback(fallback.api_base())
        .with_retry(fast_retry())
        .with_breaker(breaker)
}

#[test]
fn blackout_on_the_primary_fails_over_without_a_user_visible_error() {
    let primary = LoopbackServer::start().unwrap();
    let fallback = LoopbackServer::start().unwrap();
    primary.schedule_fault(FaultWindow {
        from_hit: 0,
        to_hit: usize::MAX,
        fault: Fault::Blackout,
    });
    let llm = HttpLlm::new(two_endpoint_config(
        &primary,
        &fallback,
        BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(30),
        },
    ))
    .unwrap();

    let a = llm.complete(&prompt("through the storm")).unwrap();
    let b = llm.complete(&prompt("and again")).unwrap();
    assert!(a.text.starts_with("echo:") && b.text.starts_with("echo:"));

    let stats = llm.stats();
    assert!(stats.failovers >= 1, "{stats:?}");
    assert_eq!(stats.breaker_trips, 1, "{stats:?}");
    // The second request never touched the dead primary: its breaker was
    // open and the endpoint scan skipped straight to the fallback.
    assert_eq!(primary.hits(), 1, "open breaker must shed the primary");
    assert_eq!(fallback.hits(), 2);
}

#[test]
fn half_open_probe_recovers_a_healed_primary() {
    let primary = LoopbackServer::start().unwrap();
    let fallback = LoopbackServer::start().unwrap();
    // Only the first request blacks out; the endpoint then heals.
    primary.schedule_fault(FaultWindow {
        from_hit: 0,
        to_hit: 1,
        fault: Fault::Blackout,
    });
    let llm = HttpLlm::new(two_endpoint_config(
        &primary,
        &fallback,
        BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(50),
        },
    ))
    .unwrap();
    let log = Arc::new(SignalLog::default());
    llm.subscribe_load(log.clone());

    llm.complete(&prompt("first")).unwrap(); // trips primary, lands on fallback
    std::thread::sleep(Duration::from_millis(60)); // cooldown lapses
    llm.complete(&prompt("second")).unwrap(); // half-open probe succeeds
    llm.complete(&prompt("third")).unwrap(); // primary fully back

    assert_eq!(primary.hits(), 3, "probe + recovered traffic hit primary");
    assert_eq!(fallback.hits(), 1, "only the blackout request failed over");
    let states: Vec<BreakerState> = log
        .breaker_states()
        .into_iter()
        .filter(|(endpoint, _)| *endpoint == 0)
        .map(|(_, state)| state)
        .collect();
    assert_eq!(
        states,
        vec![
            BreakerState::Closed, // initial emission at subscribe time
            BreakerState::Open,
            BreakerState::HalfOpen,
            BreakerState::Closed,
        ],
        "full lifecycle exported as load signals"
    );
}

#[test]
fn subscription_emits_one_initial_breaker_state_per_endpoint() {
    let primary = LoopbackServer::start().unwrap();
    let fallback = LoopbackServer::start().unwrap();
    let llm = HttpLlm::new(two_endpoint_config(
        &primary,
        &fallback,
        BreakerConfig::default(),
    ))
    .unwrap();
    let log = Arc::new(SignalLog::default());
    llm.subscribe_load(log.clone());
    assert_eq!(
        log.breaker_states(),
        vec![(0, BreakerState::Closed), (1, BreakerState::Closed)],
        "observers learn the endpoint set at subscribe time"
    );
}

#[test]
fn expired_deadlines_are_shed_before_any_wire_traffic() {
    let server = LoopbackServer::start().unwrap();
    let llm = client_for(&server);
    let mut request = prompt("too late");
    request.options.deadline = Some(Instant::now());
    let error = llm.complete(&request).unwrap_err();
    assert!(matches!(error, LlmError::DeadlineExceeded), "{error}");
    assert_eq!(server.hits(), 0, "shed requests never reach the wire");
    assert_eq!(llm.stats().deadline_sheds, 1);
    assert_eq!(llm.stats().wire_requests, 0);
}

#[test]
fn deadline_bounds_a_slow_loris_response() {
    let server = LoopbackServer::start().unwrap();
    // Every response drips one byte per 50ms — a ~230-byte completion body
    // would take ~11s; the deadline must cut it off.
    server.schedule_fault(FaultWindow {
        from_hit: 0,
        to_hit: usize::MAX,
        fault: Fault::SlowLoris { delay_ms: 50 },
    });
    let llm = client_for(&server);
    let mut request = prompt("drip drip");
    request.options.deadline = Some(Instant::now() + Duration::from_millis(300));
    let started = Instant::now();
    let error = llm.complete(&request).unwrap_err();
    let elapsed = started.elapsed();
    assert!(matches!(error, LlmError::DeadlineExceeded), "{error}");
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline must bound the round trip, took {elapsed:?}"
    );
}

#[test]
fn hedged_request_wins_on_the_fallback_while_the_primary_drips() {
    let primary = LoopbackServer::start().unwrap();
    let fallback = LoopbackServer::start().unwrap();
    primary.schedule_fault(FaultWindow {
        from_hit: 0,
        to_hit: usize::MAX,
        fault: Fault::SlowLoris { delay_ms: 25 },
    });
    let config = two_endpoint_config(&primary, &fallback, BreakerConfig::default())
        .with_request_timeout(Duration::from_millis(500))
        .with_hedge(HedgeConfig {
            percentile: 0.9,
            initial_delay: Duration::from_millis(20),
            // Never enough samples: the initial delay always applies, so
            // the test does not depend on warm-up latencies.
            min_samples: usize::MAX,
        });
    let llm = HttpLlm::new(config).unwrap();
    let mut request = prompt("race the endpoints");
    request.options.hedge = true;
    let started = Instant::now();
    let completion = llm.complete(&request).unwrap();
    let elapsed = started.elapsed();
    // Both servers answer `echo:<fnv of prompt>` — the hedge winning on
    // the fallback is bit-identical to the primary's (eventual) answer.
    assert!(completion.text.starts_with("echo:"));
    assert!(
        elapsed < Duration::from_secs(2),
        "hedge must beat the drip, took {elapsed:?}"
    );
    let stats = llm.stats();
    assert_eq!(stats.hedges, 1, "{stats:?}");
    assert_eq!(stats.hedge_wins, 1, "{stats:?}");
    // Give the losing leg a beat to finish its retry loop before the
    // servers shut down (it is detached by design).
    std::thread::sleep(Duration::from_millis(700));
}

#[test]
fn flapping_primary_is_absorbed_by_retry_and_failover() {
    let primary = LoopbackServer::start().unwrap();
    let fallback = LoopbackServer::start().unwrap();
    primary.schedule_fault(FaultWindow {
        from_hit: 0,
        to_hit: usize::MAX,
        fault: Fault::Flapping,
    });
    let llm = HttpLlm::new(two_endpoint_config(
        &primary,
        &fallback,
        // Tolerant breaker: flapping should ride on retries, not trips.
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
        },
    ))
    .unwrap();
    for i in 0..8 {
        let completion = llm.complete(&prompt(&format!("flap {i}"))).unwrap();
        assert!(completion.text.starts_with("echo:"), "request {i}");
    }
}
