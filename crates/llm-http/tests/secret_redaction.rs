//! The credential-hygiene contract: `ASKIT_API_KEY` must never appear in
//! `Debug` output, error messages, or persisted cache/WAL records. The key
//! reaches exactly one sink — the `Authorization` header bytes on the wire
//! — and these tests grep every other surface for it.

use std::time::Duration;

use askit_exec::{Engine, EngineConfig};
use askit_llm::{CompletionRequest, LanguageModel, LlmError};
use askit_llm_http::{ApiKey, HttpLlm, HttpLlmConfig, LoopbackServer, Reply, RetryConfig};

const SECRET: &str = "sk-grep-me-if-you-can-XYZZY";

fn keyed_client(server: &LoopbackServer) -> HttpLlm {
    HttpLlm::new(
        HttpLlmConfig::new(server.api_base())
            .with_api_key(SECRET)
            .with_retry(RetryConfig {
                max_retries: 1,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            }),
    )
    .unwrap()
}

#[test]
fn debug_surfaces_never_contain_the_key() {
    let server = LoopbackServer::start().unwrap();
    let llm = keyed_client(&server);
    for surface in [
        format!("{:?}", llm.config()),
        format!("{llm:?}"),
        format!("{:?}", ApiKey::new(SECRET)),
        format!("{:?}", Engine::new(llm)),
    ] {
        assert!(!surface.contains(SECRET), "key leaked into: {surface}");
        assert!(
            !surface.contains("XYZZY"),
            "key fragment leaked into: {surface}"
        );
    }
}

#[test]
fn formatted_errors_never_contain_the_key() {
    let server = LoopbackServer::start().unwrap();
    // Exercise every error constructor: an HTTP status error (whose body
    // the server controls), a retries-exhausted 429, and transport
    // failures from disconnects.
    server.script_all([
        Reply::Status {
            status: 401,
            retry_after: None,
            body: r#"{"error":{"message":"bad token"}}"#.into(),
        },
        Reply::Status {
            status: 429,
            retry_after: None,
            body: "too fast".into(),
        },
        Reply::Status {
            status: 429,
            retry_after: None,
            body: "too fast".into(),
        },
        Reply::Disconnect,
        Reply::Disconnect,
        Reply::TornBody("torn".into()),
        Reply::TornBody("torn".into()),
    ]);
    let llm = keyed_client(&server);
    let mut errors: Vec<LlmError> = Vec::new();
    for i in 0..4 {
        if let Err(e) = llm.complete(&CompletionRequest::from_prompt(format!("try {i}"))) {
            errors.push(e);
        }
    }
    assert!(!errors.is_empty(), "the script must produce errors");
    for error in &errors {
        for formatted in [format!("{error}"), format!("{error:?}")] {
            assert!(
                !formatted.contains(SECRET) && !formatted.contains("XYZZY"),
                "key leaked into error: {formatted}"
            );
        }
    }
    // The wire *did* carry the credential — that one sink is the point.
    assert!(server
        .requests()
        .iter()
        .all(|r| r.authorization.as_deref() == Some(&format!("Bearer {SECRET}"))));
}

#[test]
fn persisted_cache_records_never_contain_the_key() {
    let dir = std::env::temp_dir().join(format!(
        "askit-http-redaction-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let server = LoopbackServer::start().unwrap();
        let engine = Engine::with_config(
            keyed_client(&server),
            EngineConfig::default().with_cache_dir(&dir),
        );
        for i in 0..8 {
            engine
                .complete(&CompletionRequest::from_prompt(format!("persist {i}")))
                .unwrap();
        }
        engine.persist().unwrap();
    }
    // Grep every byte the cache wrote (snapshots + WALs) for the secret.
    let needle = SECRET.as_bytes();
    let mut files = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        files += 1;
        assert!(
            !bytes.windows(needle.len()).any(|window| window == needle),
            "key leaked into persisted record {}",
            path.display()
        );
    }
    assert!(
        files > 0,
        "the cache must actually have persisted something"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
