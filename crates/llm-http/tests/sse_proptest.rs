//! Property tests for the streaming decoders: arbitrary payloads survive
//! SSE encoding → chunked framing → arbitrary read-boundary splits →
//! decode, bit-exactly. Splits land *everywhere* — mid chunk-size line,
//! mid event frame, and inside multi-byte UTF-8 scalars — which is exactly
//! what a real socket does to a parser.

use askit_llm_http::sse::{ChunkedDecoder, SseEvent, SseParser};
use proptest::prelude::*;

/// Splits `bytes` into reads: each split size is drawn from `cuts`
/// (cycled), so the proptest engine controls where the tears land.
fn split_feeds(bytes: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut feeds = Vec::new();
    let mut rest = bytes;
    let mut i = 0;
    while !rest.is_empty() {
        let n = cuts
            .get(i % cuts.len().max(1))
            .copied()
            .unwrap_or(1)
            .clamp(1, rest.len());
        feeds.push(rest[..n].to_vec());
        rest = &rest[n..];
        i += 1;
    }
    feeds
}

/// Encodes `payload` as chunked transfer frames, chunk sizes drawn from
/// `chunk_sizes` (cycled).
fn chunked_encode(payload: &[u8], chunk_sizes: &[usize]) -> Vec<u8> {
    let mut wire = Vec::new();
    let mut rest = payload;
    let mut i = 0;
    while !rest.is_empty() {
        let n = chunk_sizes
            .get(i % chunk_sizes.len().max(1))
            .copied()
            .unwrap_or(1)
            .clamp(1, rest.len());
        wire.extend_from_slice(format!("{n:x}\r\n").as_bytes());
        wire.extend_from_slice(&rest[..n]);
        wire.extend_from_slice(b"\r\n");
        rest = &rest[n..];
        i += 1;
    }
    wire.extend_from_slice(b"0\r\n\r\n");
    wire
}

/// Encodes events as an SSE stream (one `data:` line each, then `[DONE]`).
fn sse_encode(events: &[String]) -> Vec<u8> {
    let mut stream = String::new();
    for event in events {
        stream.push_str("data: ");
        stream.push_str(event);
        stream.push_str("\n\n");
    }
    stream.push_str("data: [DONE]\n\n");
    stream.into_bytes()
}

/// Event payload text: printable ASCII plus multi-byte scalars (accented
/// latin, CJK, an emoji) so split points can land inside UTF-8 sequences.
/// No newlines — a single `data:` line each (multi-line joining has its
/// own unit test).
fn arb_event_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 .,éü漢字🦀]{0,40}"
}

/// Payloads for the *encoder* round-trip: like [`arb_event_text`] but with
/// embedded newlines allowed, so `encode_data` has to split them into
/// multiple `data:` lines the parser re-joins. `[DONE]` is reserved for
/// the terminator (it decodes as [`SseEvent::Done`] by design), so a drawn
/// payload that happens to collide is suffixed out of the way.
fn arb_encoder_payload() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 .,éü漢字🦀\n]{0,40}".prop_map(|text| {
        if text == "[DONE]" {
            format!("{text}.")
        } else {
            text
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunked framing round-trips arbitrary binary payloads under
    /// arbitrary chunk sizes and read splits.
    #[test]
    fn chunked_roundtrip_under_arbitrary_splits(
        payload in prop::collection::vec(0u8..255, 0..300),
        chunk_sizes in prop::collection::vec(1usize..40, 1..6),
        cuts in prop::collection::vec(1usize..23, 1..6),
    ) {
        let wire = chunked_encode(&payload, &chunk_sizes);
        let mut decoder = ChunkedDecoder::new();
        let mut decoded = Vec::new();
        for feed in split_feeds(&wire, &cuts) {
            let consumed = decoder.feed(&feed).expect("well-formed framing");
            prop_assert_eq!(consumed, feed.len(), "no surplus before the terminal chunk");
            decoded.extend_from_slice(&decoder.take_payload());
        }
        prop_assert!(decoder.is_done(), "terminal chunk must be recognized");
        prop_assert_eq!(decoded, payload);
    }

    /// SSE events round-trip under arbitrary read splits, ending in
    /// `[DONE]` — even when the splits tear multi-byte UTF-8 scalars.
    #[test]
    fn sse_roundtrip_under_arbitrary_splits(
        events in prop::collection::vec(arb_event_text(), 0..8),
        cuts in prop::collection::vec(1usize..17, 1..6),
    ) {
        let wire = sse_encode(&events);
        let mut parser = SseParser::new();
        let mut decoded = Vec::new();
        for feed in split_feeds(&wire, &cuts) {
            decoded.extend(parser.feed(&feed));
        }
        prop_assert_eq!(decoded.len(), events.len() + 1, "every event plus [DONE]");
        prop_assert_eq!(decoded.last(), Some(&SseEvent::Done));
        for (expected, got) in events.iter().zip(&decoded) {
            prop_assert_eq!(got, &SseEvent::Data(expected.clone()));
        }
        prop_assert!(!parser.has_partial(), "stream fully consumed");
    }

    /// The **server-side encoder** is the parser's exact inverse:
    /// `encode(events)` fed back through [`SseParser`] under arbitrary
    /// write-split points reproduces the events bit-exactly — the
    /// encode-direction mirror of the torn-frame decode suite, covering
    /// what `askit-serve` streams out. Multi-line payloads exercise the
    /// multi-`data:`-line split/re-join path.
    #[test]
    fn encoded_events_roundtrip_under_arbitrary_splits(
        payloads in prop::collection::vec(arb_encoder_payload(), 0..8),
        cuts in prop::collection::vec(1usize..17, 1..6),
    ) {
        let mut events: Vec<SseEvent> =
            payloads.into_iter().map(SseEvent::Data).collect();
        events.push(SseEvent::Done);
        let wire = askit_llm_http::sse::encode_stream(&events);
        let mut parser = SseParser::new();
        let mut decoded = Vec::new();
        for feed in split_feeds(&wire, &cuts) {
            decoded.extend(parser.feed(&feed));
        }
        prop_assert_eq!(decoded, events);
        prop_assert!(!parser.has_partial(), "stream fully consumed");
    }

    /// The full streaming pipeline — SSE inside chunked framing, split at
    /// arbitrary boundaries twice over — still reconstructs every event.
    #[test]
    fn sse_inside_chunked_roundtrip(
        events in prop::collection::vec(arb_event_text(), 1..6),
        chunk_sizes in prop::collection::vec(1usize..11, 1..4),
        cuts in prop::collection::vec(1usize..7, 1..4),
    ) {
        let wire = chunked_encode(&sse_encode(&events), &chunk_sizes);
        let mut decoder = ChunkedDecoder::new();
        let mut parser = SseParser::new();
        let mut decoded = Vec::new();
        for feed in split_feeds(&wire, &cuts) {
            decoder.feed(&feed).expect("well-formed framing");
            decoded.extend(parser.feed(&decoder.take_payload()));
        }
        prop_assert!(decoder.is_done());
        prop_assert_eq!(decoded.len(), events.len() + 1);
        prop_assert_eq!(decoded.last(), Some(&SseEvent::Done));
        for (expected, got) in events.iter().zip(&decoded) {
            prop_assert_eq!(got, &SseEvent::Data(expected.clone()));
        }
    }
}
