//! End-to-end trace assertions: a request driven through the engine and
//! the HTTP backend against the loopback server leaves a span tree on the
//! installed [`TraceSink`] — one `backend_call` parenting every
//! `wire_attempt` (with retry ordinals), plus a `cache_probe` and an SSE
//! decode where applicable — and the Chrome-trace JSON export carries it.
//!
//! One test function: the sink is process-global, and a single scenario
//! keeps the event stream deterministic. Isolation between *requests*
//! inside the scenario comes from filtering by trace id, which is exactly
//! how the export is meant to be consumed.

use std::time::Duration;

use askit_exec::{Engine, EngineConfig};
use askit_llm::{CompletionRequest, LanguageModel};
use askit_llm_http::{HttpLlm, HttpLlmConfig, LoopbackServer, Reply, RetryConfig};
use askit_obs::{TraceEvent, TraceId, TraceSink};

#[test]
fn retried_request_leaves_a_parented_span_tree() {
    let sink = TraceSink::new().install();

    let server = LoopbackServer::start().unwrap();
    // Two throttles, then success: the surviving trace must show all
    // three wire attempts under one backend call.
    server.script_all([
        Reply::Status {
            status: 429,
            retry_after: Some(0),
            body: "slow down".into(),
        },
        Reply::Status {
            status: 429,
            retry_after: Some(0),
            body: "slow down".into(),
        },
        Reply::Text("third time lucky".into()),
    ]);
    let engine = Engine::with_config(
        HttpLlm::new(
            HttpLlmConfig::new(server.api_base()).with_retry(RetryConfig {
                max_retries: 5,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(20),
            }),
        )
        .unwrap(),
        EngineConfig::default().with_workers(2),
    );

    let trace = TraceId::from_raw(0xabc123).unwrap();
    let mut request = CompletionRequest::from_prompt("what is 6 times 7?");
    request.options = request.options.stamp_trace(trace);
    let completion = engine.complete(&request).unwrap();
    assert_eq!(completion.text, "third time lucky");

    let events: Vec<TraceEvent> = sink
        .events()
        .into_iter()
        .filter(|event| event.trace() == Some(trace))
        .collect();
    assert!(!events.is_empty(), "traced request must leave events");

    let spans =
        |name: &str| -> Vec<&TraceEvent> { events.iter().filter(|e| e.name() == name).collect() };

    // The cache was probed (and missed) before any wire traffic.
    let probes = spans("cache_probe");
    assert_eq!(probes.len(), 1, "{events:#?}");
    assert_eq!(probes[0].arg("hit"), Some("false"));

    // One backend call wraps the whole retry loop…
    let backend = spans("backend_call");
    assert_eq!(backend.len(), 1, "{events:#?}");
    let TraceEvent::Span {
        span_id: backend_id,
        dur_us: backend_dur,
        ..
    } = backend[0]
    else {
        panic!("backend_call must be a span");
    };

    // …parenting exactly three wire attempts with consecutive ordinals,
    // the first two failed, the last one ok.
    let attempts = spans("wire_attempt");
    assert_eq!(attempts.len(), 3, "{events:#?}");
    for (ordinal, attempt) in attempts.iter().enumerate() {
        assert_eq!(attempt.arg("attempt"), Some(ordinal.to_string().as_str()));
        assert_eq!(attempt.arg("endpoint"), Some("0"));
        assert_eq!(attempt.arg("hedged"), Some("false"));
        let expected_ok = if ordinal == 2 { "true" } else { "false" };
        assert_eq!(attempt.arg("ok"), Some(expected_ok), "attempt {ordinal}");
        let TraceEvent::Span {
            parent_id, dur_us, ..
        } = attempt
        else {
            panic!("wire_attempt must be a span");
        };
        assert_eq!(
            parent_id, backend_id,
            "wire attempts nest under the backend call"
        );
        assert!(
            dur_us <= backend_dur,
            "a child span cannot outlast its parent"
        );
    }

    // The export renders the same tree as Chrome trace JSON: complete
    // events (`"ph":"X"`) named per span, viewable in Perfetto.
    let json = sink.to_chrome_json();
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"wire_attempt\""), "{json}");
    assert!(json.contains("\"backend_call\""), "{json}");
    assert!(
        json.contains(&format!("{trace}")),
        "trace id labels the events"
    );

    // An *untraced* request records nothing new for any trace.
    let before = sink.len();
    let untraced = CompletionRequest::from_prompt("no trace here");
    engine.complete(&untraced).unwrap();
    let added: Vec<TraceEvent> = sink
        .events()
        .split_off(before.min(sink.len()))
        .into_iter()
        .filter(|e| e.trace().is_some())
        .collect();
    assert!(
        added.is_empty(),
        "untraced requests must not emit trace-scoped events: {added:#?}"
    );

    askit_obs::trace::uninstall();
}
