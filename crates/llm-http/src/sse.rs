//! Incremental decoders for streamed response bodies: HTTP/1.1 chunked
//! transfer framing and Server-Sent Events.
//!
//! Both decoders are **push-based byte-stream state machines**: the reader
//! feeds whatever the socket produced — a torn frame, half a chunk-size
//! line, a UTF-8 sequence split across reads — and complete units come out
//! as soon as their last byte arrives. Nothing is ever re-scanned, and no
//! feed boundary is ever observable in the output (the proptest suite
//! round-trips arbitrary payloads under arbitrary split points).

use std::fmt;

/// A decode failure (malformed framing from the peer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramingError(pub String);

impl fmt::Display for FramingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for FramingError {}

#[derive(Debug)]
enum ChunkState {
    /// Accumulating the hex size line (until CRLF).
    Size(Vec<u8>),
    /// Consuming `remaining` payload bytes of the current chunk.
    Data { remaining: usize },
    /// Consuming the CRLF that terminates a chunk's payload.
    DataEnd { seen_cr: bool },
    /// After the zero-size chunk: consuming (and discarding) trailers up to
    /// the final empty line.
    Trailer(Vec<u8>),
    /// Stream complete.
    Done,
}

/// Incremental decoder for `Transfer-Encoding: chunked` bodies.
///
/// Feed raw socket bytes with [`ChunkedDecoder::feed`]; decoded payload
/// accumulates and is drained with [`ChunkedDecoder::take_payload`].
/// [`ChunkedDecoder::is_done`] turns true once the terminal zero-length
/// chunk (and its trailer section) has been consumed. Bytes fed after the
/// terminal chunk are reported as excess so a keep-alive reader can detect
/// pipelined garbage.
#[derive(Debug)]
pub struct ChunkedDecoder {
    state: ChunkState,
    payload: Vec<u8>,
    /// Chunk-extension and size-line bytes are bounded so a malicious peer
    /// cannot grow the size buffer without ever sending CRLF.
    size_line_limit: usize,
}

impl Default for ChunkedDecoder {
    fn default() -> Self {
        ChunkedDecoder::new()
    }
}

impl ChunkedDecoder {
    /// A decoder at the start of a chunked body.
    pub fn new() -> Self {
        ChunkedDecoder {
            state: ChunkState::Size(Vec::new()),
            payload: Vec::new(),
            size_line_limit: 256,
        }
    }

    /// Decodes one read's worth of bytes, returning how many were
    /// consumed. Consumption stops at the terminal chunk: surplus bytes —
    /// e.g. the head of a pipelined next response sharing the read — are
    /// left to the caller.
    ///
    /// # Errors
    ///
    /// [`FramingError`] on malformed chunk framing (bad hex size, missing
    /// CRLF after a payload).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<usize, FramingError> {
        let total = bytes.len();
        let mut bytes = bytes;
        while !bytes.is_empty() {
            if matches!(self.state, ChunkState::Done) {
                break;
            }
            match &mut self.state {
                ChunkState::Size(line) => {
                    // Accumulate until LF; tolerate a bare LF (no CR).
                    if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
                        line.extend_from_slice(&bytes[..pos]);
                        bytes = &bytes[pos + 1..];
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        // A chunk may carry ";extension" after the size.
                        let digits: &[u8] = line.split(|&b| b == b';').next().unwrap_or_default();
                        let text = std::str::from_utf8(digits)
                            .map_err(|_| FramingError("non-UTF-8 chunk size".into()))?
                            .trim();
                        let size = usize::from_str_radix(text, 16)
                            .map_err(|_| FramingError(format!("bad chunk size {text:?}")))?;
                        self.state = if size == 0 {
                            ChunkState::Trailer(Vec::new())
                        } else {
                            ChunkState::Data { remaining: size }
                        };
                    } else {
                        line.extend_from_slice(bytes);
                        if line.len() > self.size_line_limit {
                            return Err(FramingError("unterminated chunk-size line".into()));
                        }
                        bytes = &[];
                    }
                }
                ChunkState::Data { remaining } => {
                    let take = (*remaining).min(bytes.len());
                    self.payload.extend_from_slice(&bytes[..take]);
                    *remaining -= take;
                    bytes = &bytes[take..];
                    if *remaining == 0 {
                        self.state = ChunkState::DataEnd { seen_cr: false };
                    }
                }
                ChunkState::DataEnd { seen_cr } => {
                    let b = bytes[0];
                    bytes = &bytes[1..];
                    match (b, *seen_cr) {
                        (b'\r', false) => *seen_cr = true,
                        (b'\n', _) => self.state = ChunkState::Size(Vec::new()),
                        _ => {
                            return Err(FramingError("chunk payload not terminated by CRLF".into()))
                        }
                    }
                }
                ChunkState::Trailer(line) => {
                    if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
                        line.extend_from_slice(&bytes[..pos]);
                        bytes = &bytes[pos + 1..];
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        if line.is_empty() {
                            self.state = ChunkState::Done;
                        } else {
                            line.clear();
                        }
                    } else {
                        line.extend_from_slice(bytes);
                        if line.len() > self.size_line_limit {
                            return Err(FramingError("unterminated trailer line".into()));
                        }
                        bytes = &[];
                    }
                }
                ChunkState::Done => unreachable!("handled before the match"),
            }
        }
        Ok(total - bytes.len())
    }

    /// Drains the payload decoded so far.
    pub fn take_payload(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.payload)
    }

    /// Whether the terminal chunk (and trailers) have been consumed.
    pub fn is_done(&self) -> bool {
        matches!(self.state, ChunkState::Done)
    }
}

/// One decoded server-sent event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SseEvent {
    /// A `data:` payload (multiple `data:` lines joined with `\n`, per the
    /// SSE specification).
    Data(String),
    /// The OpenAI stream terminator `data: [DONE]`.
    Done,
}

impl SseEvent {
    /// Encodes the event as SSE frame bytes — the exact inverse of what
    /// [`SseParser`] decodes, so `parser.feed(&event.encode())` yields the
    /// event back under any write-split points (the proptest suite proves
    /// it). [`SseEvent::Data`] payloads are split on `\n` into one `data:`
    /// line each (the parser re-joins them); [`SseEvent::Done`] becomes the
    /// OpenAI terminator `data: [DONE]`.
    ///
    /// Carriage returns are not representable: the decode side strips a
    /// trailing `\r` from every line (CRLF tolerance), so a payload line
    /// ending in `\r` would not round-trip. Payloads here are JSON or
    /// `[DONE]` in practice, neither of which carries raw CR bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            SseEvent::Data(payload) => encode_data(payload),
            SseEvent::Done => b"data: [DONE]\n\n".to_vec(),
        }
    }
}

/// Encodes one data payload as an SSE event frame (shared by
/// [`SseEvent::encode`]; also the serving path's per-event encoder). A
/// payload that *is* the literal `[DONE]` marker decodes back as
/// [`SseEvent::Done`] — by OpenAI convention that string is reserved for
/// the terminator.
pub fn encode_data(payload: &str) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 16);
    for line in payload.split('\n') {
        frame.extend_from_slice(b"data: ");
        frame.extend_from_slice(line.as_bytes());
        frame.push(b'\n');
    }
    frame.push(b'\n');
    frame
}

/// Encodes a whole event sequence as one SSE byte stream.
pub fn encode_stream<'a>(events: impl IntoIterator<Item = &'a SseEvent>) -> Vec<u8> {
    let mut stream = Vec::new();
    for event in events {
        stream.extend_from_slice(&event.encode());
    }
    stream
}

/// Incremental Server-Sent-Events parser.
///
/// Feed decoded body bytes with [`SseParser::feed`]; complete events come
/// out as soon as their terminating blank line arrives. The parser buffers
/// *bytes*, not text, and only converts whole lines — line terminators are
/// ASCII, so a multi-byte UTF-8 scalar split across two socket reads is
/// reassembled before any text decoding happens (a targeted test and the
/// proptest suite both cover this).
#[derive(Debug, Default)]
pub struct SseParser {
    /// Unterminated tail of the byte stream.
    buffer: Vec<u8>,
    /// `data:` payloads of the event currently being accumulated. Per the
    /// SSE specification, an event whose data buffer is empty dispatches
    /// *nothing* — so heartbeat blocks carrying only `retry:`/`id:`
    /// fields or comments pass through silently instead of surfacing as
    /// empty (unparsable) payloads.
    data_lines: Vec<String>,
}

impl SseParser {
    /// A parser at the start of an event stream.
    pub fn new() -> Self {
        SseParser::default()
    }

    /// Decodes one read's worth of bytes, returning every event completed
    /// by them, in order.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<SseEvent> {
        self.buffer.extend_from_slice(bytes);
        let mut events = Vec::new();
        // Process complete lines; keep the unterminated tail buffered.
        while let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = self.buffer.drain(..=pos).collect();
            line.pop(); // the LF
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let line = String::from_utf8_lossy(&line).into_owned();
            if line.is_empty() {
                // Blank line: dispatch the accumulated event. An event
                // with no `data:` line dispatches nothing (a lone
                // `data:` still dispatches `Data("")` — its buffer holds
                // one empty payload).
                if !self.data_lines.is_empty() {
                    let data = self.data_lines.join("\n");
                    self.data_lines.clear();
                    if data == "[DONE]" {
                        events.push(SseEvent::Done);
                    } else {
                        events.push(SseEvent::Data(data));
                    }
                }
            } else if let Some(rest) = line.strip_prefix("data:") {
                self.data_lines
                    .push(rest.strip_prefix(' ').unwrap_or(rest).to_owned());
            } else {
                // Comments (`: …`) and non-data fields (event:, id:,
                // retry:) are tolerated and ignored — OpenAI streams are
                // data-only.
            }
        }
        events
    }

    /// Whether a partially accumulated event (or unterminated line) is
    /// still buffered — true when the stream was cut mid-event.
    pub fn has_partial(&self) -> bool {
        !self.buffer.is_empty() || !self.data_lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(parser: &mut SseParser, text: &str) -> Vec<SseEvent> {
        parser.feed(text.as_bytes())
    }

    #[test]
    fn single_event_roundtrip() {
        let mut p = SseParser::new();
        let events = feed_all(&mut p, "data: hello\n\n");
        assert_eq!(events, vec![SseEvent::Data("hello".into())]);
        assert!(!p.has_partial());
    }

    #[test]
    fn multi_data_lines_join_with_newline() {
        let mut p = SseParser::new();
        let events = feed_all(&mut p, "data: a\ndata: b\n\n");
        assert_eq!(events, vec![SseEvent::Data("a\nb".into())]);
    }

    #[test]
    fn done_marker_is_recognized() {
        let mut p = SseParser::new();
        let events = feed_all(&mut p, "data: x\n\ndata: [DONE]\n\n");
        assert_eq!(events, vec![SseEvent::Data("x".into()), SseEvent::Done]);
    }

    #[test]
    fn torn_frames_reassemble() {
        let mut p = SseParser::new();
        assert!(p.feed(b"da").is_empty());
        assert!(p.feed(b"ta: hel").is_empty());
        assert!(p.has_partial());
        assert!(p.feed(b"lo\n").is_empty());
        let events = p.feed(b"\n");
        assert_eq!(events, vec![SseEvent::Data("hello".into())]);
    }

    #[test]
    fn split_multibyte_utf8_across_reads() {
        // "é" is 0xC3 0xA9; split between the two bytes.
        let mut p = SseParser::new();
        assert!(p.feed(b"data: caf\xC3").is_empty());
        let events = p.feed(b"\xA9\n\n");
        assert_eq!(events, vec![SseEvent::Data("café".into())]);
    }

    #[test]
    fn comments_and_crlf_lines() {
        let mut p = SseParser::new();
        let events = feed_all(&mut p, ": keepalive\r\ndata: ok\r\n\r\n");
        assert_eq!(events, vec![SseEvent::Data("ok".into())]);
    }

    #[test]
    fn dataless_heartbeat_events_dispatch_nothing() {
        // Legal SSE blocks carrying only non-data fields or comments must
        // pass through silently — not surface as empty Data payloads that
        // a JSON-expecting consumer would choke on.
        let mut p = SseParser::new();
        let events = feed_all(&mut p, "retry: 3000\n\nid: 1\n\n: ping\n\ndata: real\n\n");
        assert_eq!(events, vec![SseEvent::Data("real".into())]);
        assert!(!p.has_partial());
        // A lone `data:` line is an event with one empty payload: it does
        // dispatch.
        assert_eq!(
            feed_all(&mut p, "data:\n\n"),
            vec![SseEvent::Data(String::new())]
        );
    }

    #[test]
    fn encode_is_the_parsers_inverse() {
        let events = vec![
            SseEvent::Data("hello".into()),
            SseEvent::Data("multi\nline".into()),
            SseEvent::Data(String::new()),
            SseEvent::Done,
        ];
        let mut p = SseParser::new();
        assert_eq!(p.feed(&encode_stream(&events)), events);
        assert!(!p.has_partial());
        // The reserved terminator payload encodes to the Done marker.
        assert_eq!(encode_data("[DONE]"), SseEvent::Done.encode());
    }

    #[test]
    fn chunked_roundtrip_with_extension_and_trailer() {
        let mut d = ChunkedDecoder::new();
        d.feed(b"5;ext=1\r\nhello\r\n6\r\n world\r\n0\r\nX-T: v\r\n\r\n")
            .unwrap();
        assert!(d.is_done());
        assert_eq!(d.take_payload(), b"hello world");
    }

    #[test]
    fn chunked_survives_byte_by_byte_feeding() {
        let wire = b"3\r\nabc\r\nA\r\n0123456789\r\n0\r\n\r\n";
        let mut d = ChunkedDecoder::new();
        for &b in wire.iter() {
            d.feed(&[b]).unwrap();
        }
        assert!(d.is_done());
        assert_eq!(d.take_payload(), b"abc0123456789");
    }

    #[test]
    fn chunked_rejects_garbage() {
        let mut d = ChunkedDecoder::new();
        assert!(d.feed(b"zz\r\n").is_err());
        let mut d = ChunkedDecoder::new();
        d.feed(b"1\r\na").unwrap();
        assert!(d.feed(b"XX").is_err(), "missing CRLF after payload");
    }

    #[test]
    fn chunked_leaves_surplus_unconsumed() {
        let mut d = ChunkedDecoder::new();
        let consumed = d.feed(b"2\r\nok\r\n0\r\n\r\nHTTP/1.1 200").unwrap();
        assert!(d.is_done());
        assert_eq!(consumed, b"2\r\nok\r\n0\r\n\r\n".len());
        assert_eq!(d.take_payload(), b"ok");
        assert_eq!(d.feed(b"more").unwrap(), 0, "done decoder consumes nothing");
    }
}
