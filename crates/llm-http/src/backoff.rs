//! Jittered exponential backoff for retried requests.

use std::time::Duration;

use crate::config::RetryConfig;

/// Computes the delay before retry attempt `attempt` (0-based: the delay
/// taken *after* the first failure is `delay(0, …)`).
///
/// The envelope doubles from [`RetryConfig::base_delay`] up to
/// [`RetryConfig::max_delay`]; the actual delay is drawn from the upper
/// half of the envelope (`[envelope/2, envelope]`, "equal jitter") so
/// retries neither stampede in lockstep nor collapse to zero. The draw is
/// **deterministic** in `(seed, attempt)` — callers seed it with the
/// request fingerprint — which keeps test runs reproducible while still
/// de-correlating distinct requests.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    retry: RetryConfig,
}

impl BackoffPolicy {
    /// A policy following `retry`.
    pub fn new(retry: RetryConfig) -> Self {
        BackoffPolicy { retry }
    }

    /// Retries allowed after the first attempt.
    pub fn max_retries(&self) -> u32 {
        self.retry.max_retries
    }

    /// The jittered delay before retry `attempt` for request `seed`.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.retry.base_delay.as_nanos() as u64;
        let cap = self.retry.max_delay.as_nanos() as u64;
        let envelope = base
            .saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX))
            .min(cap)
            .max(1);
        // FNV-1a over (seed, attempt) → a uniform fraction of the envelope's
        // upper half.
        let mut bytes = [0u8; 12];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        bytes[8..].copy_from_slice(&attempt.to_le_bytes());
        let h = crate::fnv1a(&bytes);
        let fraction = (h >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = envelope / 2 + ((envelope / 2) as f64 * fraction) as u64;
        Duration::from_nanos(jittered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy::new(RetryConfig {
            max_retries: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(2),
        })
    }

    #[test]
    fn envelope_doubles_and_caps() {
        let p = policy();
        for seed in [0u64, 7, 0xDEAD] {
            let mut previous = Duration::ZERO;
            for attempt in 0..6 {
                let d = p.delay(attempt, seed);
                let envelope_ms = (100u64 << attempt).min(2000);
                assert!(
                    d >= Duration::from_millis(envelope_ms / 2)
                        && d <= Duration::from_millis(envelope_ms),
                    "attempt {attempt}: {d:?} outside [{}/2, {}]ms",
                    envelope_ms,
                    envelope_ms
                );
                assert!(d >= previous / 2, "delays should trend upward");
                previous = d;
            }
        }
    }

    #[test]
    fn jitter_is_deterministic_but_decorrelated() {
        let p = policy();
        assert_eq!(
            p.delay(1, 42),
            p.delay(1, 42),
            "same seed+attempt: same delay"
        );
        assert_ne!(
            p.delay(1, 42),
            p.delay(1, 43),
            "distinct requests draw distinct jitter"
        );
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let p = policy();
        let d = p.delay(u32::MAX, 1);
        assert!(d <= Duration::from_secs(2));
    }
}
