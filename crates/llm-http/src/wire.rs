//! Hand-rolled HTTP/1.1 plumbing over [`std::net::TcpStream`].
//!
//! The build container has no crates.io access, so there is no hyper or
//! reqwest to lean on; this module implements the narrow slice of HTTP/1.1
//! the OpenAI chat-completions protocol needs — `POST` with a JSON body,
//! status-line + header parsing, `Content-Length` and
//! `Transfer-Encoding: chunked` bodies, and keep-alive connection reuse —
//! and nothing more. TLS is out of scope (offline build); only `http://`
//! bases are accepted.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::sse::ChunkedDecoder;
use crate::{find_subsequence, lock};

/// A parsed `http://host:port/prefix` service base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedBase {
    /// Host name or address (no scheme, no port).
    pub host: String,
    /// TCP port (defaults to 80).
    pub port: u16,
    /// Path prefix (no trailing slash), e.g. `/v1`.
    pub prefix: String,
}

impl ParsedBase {
    /// Parses an `http://` base URL.
    ///
    /// # Errors
    ///
    /// A human-readable description when the scheme is not plain `http` or
    /// the authority does not parse.
    pub fn parse(api_base: &str) -> Result<ParsedBase, String> {
        let base = api_base.trim().trim_end_matches('/');
        if let Some(rest) = base.strip_prefix("https://") {
            let _ = rest;
            return Err(
                "https is not supported by the offline build (no TLS implementation); \
                 use a plain http:// endpoint or a local proxy"
                    .to_owned(),
            );
        }
        let Some(rest) = base.strip_prefix("http://") else {
            return Err(format!("api base {base:?} must start with http://"));
        };
        let (authority, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, ""),
        };
        if authority.is_empty() {
            return Err("api base has an empty host".to_owned());
        }
        // Bracketed IPv6 literals ([::1], [::1]:8080) carry colons inside
        // the host; split on the closing bracket, not the last colon.
        let (host, port) = if let Some(inside) = authority.strip_prefix('[') {
            let (host, after) = inside
                .split_once(']')
                .ok_or_else(|| format!("unclosed '[' in api base authority {authority:?}"))?;
            let port = match after.strip_prefix(':') {
                Some(port_text) => port_text
                    .parse()
                    .map_err(|_| format!("bad port {port_text:?} in api base"))?,
                None if after.is_empty() => 80,
                None => return Err(format!("garbage after ']' in api base {authority:?}")),
            };
            (host, port)
        } else {
            match authority.rsplit_once(':') {
                Some((host, port_text)) => {
                    let port: u16 = port_text
                        .parse()
                        .map_err(|_| format!("bad port {port_text:?} in api base"))?;
                    (host, port)
                }
                None => (authority, 80),
            }
        };
        if host.is_empty() {
            return Err("api base has an empty host".to_owned());
        }
        Ok(ParsedBase {
            host: host.to_owned(),
            port,
            prefix: path.trim_end_matches('/').to_owned(),
        })
    }

    /// The full request path for an endpoint, e.g. `/v1/chat/completions`.
    pub fn path(&self, endpoint: &str) -> String {
        format!("{}{endpoint}", self.prefix)
    }
}

/// A parsed response status line + headers.
#[derive(Debug, Clone)]
pub struct ResponseHead {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
}

impl ResponseHead {
    /// The first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server asked to close the connection after this
    /// response.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// `Retry-After`, when present and parsable: either the delta-seconds
    /// form (`Retry-After: 2`) or the RFC 9110 HTTP-date form
    /// (`Retry-After: Sun, 06 Nov 1994 08:49:37 GMT`). A date in the past
    /// yields a zero delay, not `None` — the server *did* say when to
    /// retry; that moment has simply arrived.
    pub fn retry_after(&self) -> Option<Duration> {
        let value = self.header("retry-after")?.trim();
        if let Ok(seconds) = value.parse::<u64>() {
            return Some(Duration::from_secs(seconds));
        }
        let when = parse_http_date(value)?;
        Some(
            when.duration_since(std::time::SystemTime::now())
                .unwrap_or(Duration::ZERO),
        )
    }
}

/// Parses an RFC 9110 IMF-fixdate (`Sun, 06 Nov 1994 08:49:37 GMT`) into a
/// [`std::time::SystemTime`]. Dates before the Unix epoch clamp to the
/// epoch (they are only ever compared against *now*, so "long past" is all
/// that matters). Returns `None` for anything that does not match the
/// fixdate shape — including the obsolete RFC 850 and asctime forms, which
/// no contemporary server emits.
fn parse_http_date(text: &str) -> Option<std::time::SystemTime> {
    // "Sun, 06 Nov 1994 08:49:37 GMT" — day-name is decorative; validate
    // the comma and ignore the name.
    let (_day_name, rest) = text.split_once(',')?;
    let mut parts = rest.split_ascii_whitespace();
    let day: u64 = parts.next()?.parse().ok()?;
    let month: u64 = match parts.next()? {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    let year: i64 = parts.next()?.parse().ok()?;
    let mut clock = parts.next()?.split(':');
    let hour: u64 = clock.next()?.parse().ok()?;
    let minute: u64 = clock.next()?.parse().ok()?;
    let second: u64 = clock.next()?.parse().ok()?;
    if clock.next().is_some() || parts.next()? != "GMT" || parts.next().is_some() {
        return None;
    }
    if !(1..=31).contains(&day) || hour > 23 || minute > 59 || second > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    if days < 0 {
        return Some(std::time::UNIX_EPOCH);
    }
    #[allow(clippy::cast_sign_loss)]
    let seconds = days as u64 * 86_400 + hour * 3_600 + minute * 60 + second;
    Some(std::time::UNIX_EPOCH + Duration::from_secs(seconds))
}

/// Days from 1970-01-01 to `year`-`month`-`day` in the proleptic Gregorian
/// calendar (Howard Hinnant's `days_from_civil` algorithm — the standard
/// branch-free civil-date conversion).
fn days_from_civil(year: i64, month: u64, day: u64) -> i64 {
    let year = year - i64::from(month <= 2);
    let era = year.div_euclid(400);
    #[allow(clippy::cast_sign_loss)]
    let year_of_era = (year - era * 400) as u64; // [0, 399]
    let month_shifted = if month > 2 { month - 3 } else { month + 9 };
    let day_of_year = (153 * month_shifted + 2) / 5 + day - 1; // [0, 365]
    let day_of_era = year_of_era * 365 + year_of_era / 4 - year_of_era / 100 + day_of_year;
    #[allow(clippy::cast_possible_wrap)]
    let day_of_era = day_of_era as i64; // [0, 146096]
    era * 146_097 + day_of_era - 719_468
}

/// How a response body is framed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// `Content-Length: n`.
    Length(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
    /// Neither header: body runs until the connection closes.
    UntilClose,
}

impl BodyFraming {
    /// Determines the framing from a response head.
    pub fn of(head: &ResponseHead) -> BodyFraming {
        if head
            .header("transfer-encoding")
            .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
        {
            return BodyFraming::Chunked;
        }
        match head
            .header("content-length")
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) => BodyFraming::Length(n),
            None => BodyFraming::UntilClose,
        }
    }
}

/// Serializes a `POST` request with a JSON body. The credential is the only
/// caller-provided header content; everything else is fixed protocol
/// boilerplate.
pub fn write_post(
    stream: &mut TcpStream,
    host: &str,
    path: &str,
    bearer: Option<&str>,
    body: &str,
) -> std::io::Result<()> {
    let mut head = String::with_capacity(256);
    head.push_str(&format!("POST {path} HTTP/1.1\r\n"));
    head.push_str(&format!("Host: {host}\r\n"));
    head.push_str("Content-Type: application/json\r\n");
    head.push_str("Accept: application/json, text/event-stream\r\n");
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    if let Some(secret) = bearer {
        head.push_str(&format!("Authorization: Bearer {secret}\r\n"));
    }
    head.push_str("Connection: keep-alive\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The standard reason phrase for a status code (the codes this workspace
/// actually sends; anything else renders as `Status`).
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Writes a response status line plus headers (and the blank line ending
/// the head). Body framing is the caller's business — pair with a
/// `Content-Length` header and a body write, or with [`write_chunk`]
/// frames after a `Transfer-Encoding: chunked` header.
///
/// This is the **server-side** counterpart of [`write_post`]: one
/// implementation shared by the loopback test server and the `askit-serve`
/// front-end, so response formatting cannot drift between them.
pub fn write_response_head(
    out: &mut impl Write,
    status: u16,
    headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = String::with_capacity(128);
    head.push_str(&format!("HTTP/1.1 {status} {}\r\n", status_reason(status)));
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    out.write_all(head.as_bytes())
}

/// Writes a complete JSON response: head (with `Content-Type` and
/// `Content-Length` added after `extra_headers`) and body, then flushes.
pub fn write_json_response(
    out: &mut impl Write,
    status: u16,
    body: &str,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut headers: Vec<(&str, String)> = extra_headers.to_vec();
    headers.push(("Content-Type", "application/json".to_owned()));
    headers.push(("Content-Length", body.len().to_string()));
    write_response_head(out, status, &headers)?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

/// Writes the head of a streamed SSE response: 200, `text/event-stream`,
/// chunked transfer framing. Follow with [`write_chunk`] per encoded event
/// and [`write_last_chunk`] to finish (after which a keep-alive connection
/// may serve another request).
pub fn write_sse_response_head(
    out: &mut impl Write,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut headers: Vec<(&str, String)> = extra_headers.to_vec();
    headers.push(("Content-Type", "text/event-stream".to_owned()));
    headers.push(("Transfer-Encoding", "chunked".to_owned()));
    write_response_head(out, 200, &headers)
}

/// Writes one chunked-transfer frame and flushes it — flushing per chunk is
/// what makes SSE events visible to the client the moment they happen. An
/// empty payload is skipped entirely (a zero-size frame would terminate the
/// body).
pub fn write_chunk(out: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    out.write_all(format!("{:x}\r\n", payload.len()).as_bytes())?;
    out.write_all(payload)?;
    out.write_all(b"\r\n")?;
    out.flush()
}

/// Writes the terminal zero-length chunk ending a chunked body.
pub fn write_last_chunk(out: &mut impl Write) -> std::io::Result<()> {
    out.write_all(b"0\r\n\r\n")?;
    out.flush()
}

/// A buffered reader over a [`TcpStream`] that parses response heads and
/// bodies incrementally, leaving any pipelined surplus buffered for the
/// next response on the same connection.
///
/// With a **deadline** set, every socket read is bounded by the time
/// remaining until it: the per-read timeout is re-armed with the shrinking
/// remainder, so the *whole* response — however many reads it takes — is
/// done by the deadline. Without it, a server dripping one byte per
/// (read-timeout − ε) could stretch a "bounded" round trip indefinitely.
#[derive(Debug)]
pub struct WireReader {
    buffer: Vec<u8>,
    received: usize,
    deadline: Option<Instant>,
}

/// Parses one header line `name: value`.
fn parse_header_line(line: &str) -> Option<(String, String)> {
    let (name, value) = line.split_once(':')?;
    Some((name.trim().to_owned(), value.trim().to_owned()))
}

impl Default for WireReader {
    fn default() -> Self {
        WireReader::new()
    }
}

impl WireReader {
    /// An empty reader with no deadline.
    pub fn new() -> Self {
        WireReader {
            buffer: Vec::new(),
            received: 0,
            deadline: None,
        }
    }

    /// An empty reader whose reads must all complete by `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        WireReader {
            buffer: Vec::new(),
            received: 0,
            deadline: Some(deadline),
        }
    }

    /// Total bytes received from the socket so far. Zero means the peer
    /// never answered — the signature of a stale parked keep-alive
    /// connection, which the client retries on a fresh socket.
    pub fn received(&self) -> usize {
        self.received
    }

    fn fill(&mut self, stream: &mut TcpStream) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline {
            // Re-arm the socket timeout with the shrinking remainder so
            // the deadline bounds the sum of all reads, not each one.
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "round-trip deadline exceeded",
                    )
                })?;
            stream.set_read_timeout(Some(remaining))?;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        self.received += n;
        self.buffer.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Reads until a full response head (`…\r\n\r\n`) is buffered, then
    /// parses it. The head bytes are consumed from the buffer; body bytes
    /// that arrived in the same reads stay buffered.
    ///
    /// # Errors
    ///
    /// I/O errors, EOF before a complete head, or an unparsable status
    /// line.
    pub fn read_head(&mut self, stream: &mut TcpStream) -> std::io::Result<ResponseHead> {
        let head_end = loop {
            if let Some(pos) = find_subsequence(&self.buffer, b"\r\n\r\n") {
                break pos;
            }
            if self.buffer.len() > 64 * 1024 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "response head exceeds 64KiB",
                ));
            }
            if self.fill(stream)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a complete response head",
                ));
            }
        };
        let head_bytes: Vec<u8> = self.buffer.drain(..head_end + 4).collect();
        let text = String::from_utf8_lossy(&head_bytes[..head_end]);
        let mut lines = text.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or_default();
        if !version.starts_with("HTTP/1.") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("not an HTTP/1.x status line: {status_line:?}"),
            ));
        }
        let status: u16 = parts.next().unwrap_or_default().parse().map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status in {status_line:?}"),
            )
        })?;
        let headers = lines.filter_map(parse_header_line).collect();
        Ok(ResponseHead { status, headers })
    }

    /// Reads a `Content-Length` body of exactly `length` bytes.
    pub fn read_exact_body(
        &mut self,
        stream: &mut TcpStream,
        length: usize,
    ) -> std::io::Result<Vec<u8>> {
        while self.buffer.len() < length {
            if self.fill(stream)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!(
                        "connection closed mid-body ({} of {length} bytes)",
                        self.buffer.len()
                    ),
                ));
            }
        }
        Ok(self.buffer.drain(..length).collect())
    }

    /// Reads a chunked body to completion, invoking `on_bytes` with each
    /// decoded slice as it arrives (this is what lets the SSE parser see
    /// deltas the moment the server flushes them).
    pub fn read_chunked_body(
        &mut self,
        stream: &mut TcpStream,
        mut on_bytes: impl FnMut(&[u8]),
    ) -> std::io::Result<()> {
        let mut decoder = ChunkedDecoder::new();
        loop {
            if !self.buffer.is_empty() {
                // Feed only until the decoder completes; surplus stays
                // buffered (it belongs to the next response, if any).
                let consumed = decoder.feed(&self.buffer).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                self.buffer.drain(..consumed);
                let decoded = decoder.take_payload();
                if !decoded.is_empty() {
                    on_bytes(&decoded);
                }
            }
            if decoder.is_done() {
                return Ok(());
            }
            if self.fill(stream)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-chunked-body",
                ));
            }
        }
    }

    /// Reads until EOF (bodies with neither length nor chunked framing).
    pub fn read_to_close(&mut self, stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
        loop {
            if self.fill(stream)? == 0 {
                return Ok(std::mem::take(&mut self.buffer));
            }
        }
    }

    /// Whether surplus bytes are buffered (pipelined next response, or
    /// framing slop that makes the connection unsafe to reuse).
    pub fn has_surplus(&self) -> bool {
        !self.buffer.is_empty()
    }
}

/// A small pool of idle keep-alive connections to one host.
#[derive(Debug, Default)]
pub struct ConnectionPool {
    idle: Mutex<Vec<TcpStream>>,
    max_idle: usize,
}

impl ConnectionPool {
    /// A pool retaining at most `max_idle` parked connections.
    pub fn new(max_idle: usize) -> Self {
        ConnectionPool {
            idle: Mutex::new(Vec::new()),
            max_idle,
        }
    }

    /// Takes a parked connection, if any.
    pub fn checkout(&self) -> Option<TcpStream> {
        lock(&self.idle).pop()
    }

    /// Parks a connection for reuse (dropped when the pool is full).
    pub fn checkin(&self, stream: TcpStream) {
        let mut idle = lock(&self.idle);
        if idle.len() < self.max_idle {
            idle.push(stream);
        }
    }

    /// Parked connections right now (tests).
    pub fn idle_count(&self) -> usize {
        lock(&self.idle).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_parsing_accepts_http_and_rejects_https() {
        let base = ParsedBase::parse("http://127.0.0.1:8080/v1/").unwrap();
        assert_eq!(
            base,
            ParsedBase {
                host: "127.0.0.1".into(),
                port: 8080,
                prefix: "/v1".into()
            }
        );
        assert_eq!(base.path("/chat/completions"), "/v1/chat/completions");
        let bare = ParsedBase::parse("http://example.com").unwrap();
        assert_eq!((bare.port, bare.prefix.as_str()), (80, ""));
        // IPv6 literals: brackets delimit the host, stripped for connect.
        let v6 = ParsedBase::parse("http://[::1]:8080/v1").unwrap();
        assert_eq!(
            (v6.host.as_str(), v6.port, v6.prefix.as_str()),
            ("::1", 8080, "/v1")
        );
        let v6_default = ParsedBase::parse("http://[2001:db8::2]/v1").unwrap();
        assert_eq!(
            (v6_default.host.as_str(), v6_default.port),
            ("2001:db8::2", 80)
        );
        assert!(
            ParsedBase::parse("http://[::1/v1").is_err(),
            "unclosed bracket"
        );
        assert!(ParsedBase::parse("http://[::1]x:1/v1").is_err());
        assert!(ParsedBase::parse("https://api.openai.com/v1")
            .unwrap_err()
            .contains("TLS"));
        assert!(ParsedBase::parse("ftp://x").is_err());
        assert!(ParsedBase::parse("http://:80").is_err());
        assert!(ParsedBase::parse("http://h:notaport/v1").is_err());
    }

    #[test]
    fn head_helpers() {
        let head = ResponseHead {
            status: 429,
            headers: vec![
                ("Retry-After".into(), "2".into()),
                ("Connection".into(), "close".into()),
                ("Content-Length".into(), "10".into()),
            ],
        };
        assert_eq!(head.retry_after(), Some(Duration::from_secs(2)));
        assert!(head.wants_close());
        assert_eq!(BodyFraming::of(&head), BodyFraming::Length(10));
        let chunked = ResponseHead {
            status: 200,
            headers: vec![("Transfer-Encoding".into(), "Chunked".into())],
        };
        assert_eq!(BodyFraming::of(&chunked), BodyFraming::Chunked);
        let bare = ResponseHead {
            status: 200,
            headers: vec![],
        };
        assert_eq!(BodyFraming::of(&bare), BodyFraming::UntilClose);
    }

    #[test]
    fn retry_after_parses_both_rfc_9110_forms() {
        let head = |value: &str| ResponseHead {
            status: 429,
            headers: vec![("Retry-After".into(), value.into())],
        };
        // Delta-seconds form.
        assert_eq!(head("7").retry_after(), Some(Duration::from_secs(7)));
        assert_eq!(head(" 7 ").retry_after(), Some(Duration::from_secs(7)));
        // HTTP-date form, far future: a large positive delay.
        let future = head("Fri, 31 Dec 2100 23:59:59 GMT").retry_after().unwrap();
        assert!(future > Duration::from_secs(60), "{future:?}");
        // HTTP-date form, past date: the retry moment has arrived — zero
        // delay, not a parse failure.
        assert_eq!(
            head("Sun, 06 Nov 1994 08:49:37 GMT").retry_after(),
            Some(Duration::ZERO)
        );
        // Pre-epoch dates clamp to the epoch (still "long past": zero).
        assert_eq!(
            head("Mon, 01 Jan 1900 00:00:00 GMT").retry_after(),
            Some(Duration::ZERO)
        );
        // Garbage stays None.
        assert_eq!(head("soon").retry_after(), None);
        assert_eq!(head("Sun, 06 Nov 1994 08:49:37 PST").retry_after(), None);
        assert_eq!(head("Sun, 06 Nope 1994 08:49:37 GMT").retry_after(), None);
        assert_eq!(head("Sun, 46 Nov 1994 08:49:37 GMT").retry_after(), None);
    }

    #[test]
    fn civil_date_conversion_matches_known_epochs() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
        // 2000-03-01: leap-century day accounted for.
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        // 2024-02-29 exists (leap year divisible by 4, not by 100).
        assert_eq!(
            days_from_civil(2024, 3, 1) - days_from_civil(2024, 2, 28),
            2
        );
        // 1900-02-29 does not (divisible by 100, not 400) — the algorithm
        // maps the civil triple linearly; parse_http_date's range check
        // cannot catch it, but no server emits impossible dates and the
        // result is still a sane nearby day.
        assert_eq!(
            days_from_civil(1900, 3, 1) - days_from_civil(1900, 2, 28),
            1
        );
    }

    #[test]
    fn pool_respects_capacity() {
        let pool = ConnectionPool::new(1);
        assert!(pool.checkout().is_none());
        // Real streams need a listener; use a loopback pair.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        pool.checkin(a);
        pool.checkin(b); // over capacity: dropped
        assert_eq!(pool.idle_count(), 1);
        assert!(pool.checkout().is_some());
        assert!(pool.checkout().is_none());
    }
}
