//! [`HttpLlm`]: the OpenAI-compatible network backend.
//!
//! One client owns a keep-alive connection pool, a per-model token-bucket
//! [`RateLimiter`], a jittered-backoff retry loop, and an **in-flight
//! coalescing** table: concurrent submissions of the same `(request,
//! sample)` identity share one wire round trip, and a speculative
//! [`prefetch`](askit_llm::LanguageModel::prefetch) becomes a flight the
//! next foreground submission *joins* instead of re-paying. The client
//! implements [`LanguageModel`], so it slots under the execution engine
//! unchanged — cache, worker pool, and speculation ledger all front it
//! exactly as they front the mock.
//!
//! # Credential hygiene
//!
//! The API key reaches exactly one sink: the `Authorization` header bytes
//! written by [`write_post`]. Every error constructed here is built from
//! the *response* (status line, truncated body snippet) or from socket
//! error text — never from request headers — so `ASKIT_API_KEY` cannot
//! appear in `Debug` output, error messages, or anything a caller
//! persists. A unit test greps every formatted surface for the key.

use std::collections::{HashMap, VecDeque};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use askit_llm::{
    Completion, CompletionRequest, LanguageModel, LlmError, LoadObserver, LoadSignal, ModelChoice,
    PreparedRequest,
};

use crate::backoff::BackoffPolicy;
use crate::config::HttpLlmConfig;
use crate::lock;
use crate::protocol::{decode_response, encode_request, StreamAccumulator};
use crate::ratelimit::RateLimiter;
use crate::wire::{write_post, BodyFraming, ConnectionPool, ParsedBase, WireReader};

/// How many *landed* (completed but unclaimed) speculative flights are
/// retained before the oldest is forgotten.
const LANDED_SPECULATION_CAP: usize = 64;

/// Longest response-body snippet embedded in an [`LlmError::Http`].
const BODY_SNIPPET_LIMIT: usize = 200;

/// Wire-level counters (cumulative since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HttpStats {
    /// HTTP requests actually written to a socket (each retry counts).
    pub wire_requests: u64,
    /// Attempts retried after a 429/5xx or transport failure.
    pub retries: u64,
    /// 429 responses absorbed (each drains the model's token bucket).
    pub throttles: u64,
    /// Submissions served by joining an already-in-flight identical
    /// request instead of issuing their own.
    pub coalesced: u64,
    /// Speculative prefetch flights launched.
    pub prefetches: u64,
    /// Round trips that started on a parked keep-alive connection.
    pub reused_connections: u64,
}

#[derive(Default)]
struct Counters {
    wire_requests: AtomicU64,
    retries: AtomicU64,
    throttles: AtomicU64,
    coalesced: AtomicU64,
    prefetches: AtomicU64,
    reused_connections: AtomicU64,
}

/// One in-flight (or landed-speculative) wire round trip.
struct Flight {
    state: Mutex<Option<Result<Completion, LlmError>>>,
    done: Condvar,
    /// Speculative flights stay registered after completion so a later
    /// foreground submission can claim the result; foreground flights
    /// unregister the moment they land.
    speculative: bool,
    /// Set by `reject_completion`: the landed result must not be served.
    rejected: AtomicBool,
    /// The leader's request. The table keys on the 64-bit fingerprint,
    /// which is not collision-free; a would-be follower whose request
    /// does not [`CompletionRequest::same_identity`]-match this one flies
    /// its own round trip instead of inheriting a stranger's completion —
    /// the same disambiguation every cache layer in the workspace does.
    request: CompletionRequest,
}

impl Flight {
    fn new(speculative: bool, request: CompletionRequest) -> Self {
        Flight {
            state: Mutex::new(None),
            done: Condvar::new(),
            speculative,
            rejected: AtomicBool::new(false),
            request,
        }
    }

    fn settle(&self, result: Result<Completion, LlmError>) {
        let mut state = lock(&self.state);
        *state = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Completion, LlmError> {
        let mut state = lock(&self.state);
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn is_settled(&self) -> bool {
        lock(&self.state).is_some()
    }
}

/// Outcome of one wire attempt, classified for the retry loop.
enum AttemptError {
    /// 429: retry after `Retry-After` (or backoff); the model's bucket is
    /// drained so the rest of the pool paces itself too.
    Throttled {
        retry_after: Option<Duration>,
        error: LlmError,
    },
    /// 5xx or a transport failure: retry after backoff.
    Retryable(LlmError),
    /// Anything else (other 4xx, malformed request): fail now.
    Fatal(LlmError),
}

impl AttemptError {
    fn into_error(self) -> LlmError {
        match self {
            AttemptError::Throttled { error, .. } => error,
            AttemptError::Retryable(error) | AttemptError::Fatal(error) => error,
        }
    }
}

/// A socket-level failure, tagged with whether any response byte had
/// arrived (a failure on an untouched reused connection is a stale
/// keep-alive, retried once on a fresh socket without counting as an
/// attempt).
struct IoFail {
    error: std::io::Error,
    virgin: bool,
}

struct Inner {
    config: HttpLlmConfig,
    base: ParsedBase,
    pool: ConnectionPool,
    limiter: RateLimiter,
    backoff: BackoffPolicy,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    /// Landed speculative flights (key + the exact flight that landed),
    /// oldest first, bounded by [`LANDED_SPECULATION_CAP`]. The weak
    /// handle pins eviction to the flight that created the entry; stale
    /// entries for claimed flights pop harmlessly.
    landed: Mutex<VecDeque<(u64, std::sync::Weak<Flight>)>>,
    counters: Counters,
    display_name: String,
    /// Load observers (see [`LanguageModel::subscribe_load`]): every wire
    /// attempt reports here — 429s and timeouts the retry loop absorbs
    /// included — so a scheduler above sees the provider's true pushback,
    /// not just the errors that survive retries.
    observers: Mutex<Vec<Arc<dyn LoadObserver>>>,
}

/// The OpenAI-compatible HTTP backend. See the module docs.
pub struct HttpLlm {
    inner: Arc<Inner>,
    /// Speculative-prefetch workers, reaped opportunistically and joined
    /// on drop.
    spec_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for HttpLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpLlm")
            .field("base", &self.inner.base)
            .field("config", &self.inner.config)
            .field("stats", &self.inner.stats())
            .finish()
    }
}

impl HttpLlm {
    /// Builds a client for `config`.
    ///
    /// # Errors
    ///
    /// [`LlmError::InvalidRequest`] when the base URL does not parse (or
    /// uses a scheme the offline build cannot serve, i.e. `https`).
    pub fn new(config: HttpLlmConfig) -> Result<Self, LlmError> {
        let base = ParsedBase::parse(&config.api_base).map_err(LlmError::InvalidRequest)?;
        let display_name = format!("http:{}", config.default_model);
        Ok(HttpLlm {
            inner: Arc::new(Inner {
                pool: ConnectionPool::new(config.max_idle_connections),
                limiter: RateLimiter::new(&config.rate_limits),
                backoff: BackoffPolicy::new(config.retry),
                inflight: Mutex::new(HashMap::new()),
                landed: Mutex::new(VecDeque::new()),
                counters: Counters::default(),
                observers: Mutex::new(Vec::new()),
                display_name,
                base,
                config,
            }),
            spec_threads: Mutex::new(Vec::new()),
        })
    }

    /// A client configured from `ASKIT_API_BASE`/`ASKIT_API_KEY`.
    ///
    /// # Errors
    ///
    /// [`LlmError::InvalidRequest`] when the base variable is unset or
    /// does not parse.
    pub fn from_env() -> Result<Self, LlmError> {
        let config = HttpLlmConfig::from_env().ok_or_else(|| {
            LlmError::InvalidRequest(format!(
                "{} is not set (export it or pass --api-base)",
                crate::config::API_BASE_ENV
            ))
        })?;
        HttpLlm::new(config)
    }

    /// The configuration this client was built with.
    pub fn config(&self) -> &HttpLlmConfig {
        &self.inner.config
    }

    /// A snapshot of the wire-level counters.
    pub fn stats(&self) -> HttpStats {
        self.inner.stats()
    }

    /// Joins every finished speculative worker so the handle list stays
    /// bounded in long-lived processes.
    fn reap_spec_threads(&self) {
        let mut threads = lock(&self.spec_threads);
        let (finished, running): (Vec<_>, Vec<_>) =
            threads.drain(..).partition(|handle| handle.is_finished());
        *threads = running;
        drop(threads);
        for handle in finished {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpLlm {
    /// Joins outstanding speculative workers: their sockets carry read
    /// timeouts, so the wait is bounded, and joining guarantees no worker
    /// outlives the client (mirroring the engine pool's drop discipline).
    fn drop(&mut self) {
        for handle in lock(&self.spec_threads).drain(..) {
            let _ = handle.join();
        }
    }
}

impl Inner {
    /// Reports one wire-level signal to every subscribed observer.
    fn notify(&self, model: ModelChoice, signal: LoadSignal) {
        for observer in lock(&self.observers).iter() {
            observer.observed(model, signal);
        }
    }

    fn stats(&self) -> HttpStats {
        HttpStats {
            wire_requests: self.counters.wire_requests.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            throttles: self.counters.throttles.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            prefetches: self.counters.prefetches.load(Ordering::Relaxed),
            reused_connections: self.counters.reused_connections.load(Ordering::Relaxed),
        }
    }

    /// Removes `flight` from the in-flight table — but only if it is still
    /// the registered occupant of `key` (a fresh flight may have replaced
    /// it meanwhile).
    fn unregister(&self, key: u64, flight: &Arc<Flight>) {
        let mut map = lock(&self.inflight);
        if map.get(&key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
            map.remove(&key);
        }
    }

    /// Submits through the coalescing table: the first caller for a key
    /// becomes the leader and performs the wire work; concurrent callers
    /// with the same identity wait for the leader's result instead of
    /// issuing their own. A landed speculative flight is *claimed*: its
    /// result is consumed and the key freed, so later submissions (e.g.
    /// after a rejection) re-ask the service.
    fn submit(&self, key: u64, request: &CompletionRequest) -> Result<Completion, LlmError> {
        enum Role {
            Leader(Arc<Flight>),
            Follower(Arc<Flight>),
        }
        let role = {
            let mut map = lock(&self.inflight);
            match map.get(&key) {
                // A fingerprint collision with a different conversation
                // must not inherit the stranger's completion: fly solo.
                Some(flight) if !flight.request.same_identity(request) => {
                    drop(map);
                    return self.execute(key, request);
                }
                Some(flight) => Role::Follower(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight::new(false, request.clone()));
                    map.insert(key, Arc::clone(&flight));
                    Role::Leader(flight)
                }
            }
        };
        match role {
            Role::Leader(flight) => {
                let result = self.execute(key, request);
                // Unregister before settling: a caller arriving after the
                // removal starts a fresh flight instead of reading a stale
                // result — this table coalesces *concurrency*; memoizing
                // is the completion cache's job, above the client.
                self.unregister(key, &flight);
                flight.settle(result.clone());
                result
            }
            Role::Follower(flight) => {
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                let result = flight.wait();
                if flight.speculative {
                    // Claim the speculation.
                    self.unregister(key, &flight);
                    let usable = !flight.rejected.load(Ordering::Relaxed);
                    match result {
                        Ok(completion) if usable => Ok(completion),
                        // A failed or rejected speculation must not infect
                        // the foreground: pay the round trip ourselves —
                        // back through the coalescing table, so several
                        // followers of one doomed speculation elect a
                        // single retry leader instead of stampeding a
                        // service that is already failing. (The recursion
                        // is depth-1: the speculative flight was just
                        // unregistered, and the replacement flight is
                        // non-speculative, whose followers return its
                        // result directly.)
                        _ => self.submit(key, request),
                    }
                } else {
                    result
                }
            }
        }
    }

    /// The retry loop around one logical completion.
    fn execute(&self, key: u64, request: &CompletionRequest) -> Result<Completion, LlmError> {
        if request.messages.is_empty() {
            return Err(LlmError::InvalidRequest("empty conversation".to_owned()));
        }
        let model = request.options.model;
        let timeout = request
            .options
            .timeout
            .unwrap_or(self.config.request_timeout);
        let mut attempt: u32 = 0;
        loop {
            self.limiter.acquire(model);
            match self.round_trip(request, model, timeout) {
                Ok(completion) => {
                    self.notify(
                        model,
                        LoadSignal::Completed {
                            latency: completion.latency,
                        },
                    );
                    return Ok(completion);
                }
                Err(error) => {
                    if matches!(error, AttemptError::Throttled { .. }) {
                        self.counters.throttles.fetch_add(1, Ordering::Relaxed);
                        // Drain the bucket: every worker headed for this
                        // model now paces itself instead of discovering
                        // the limit with its own 429.
                        self.limiter.penalize(model);
                        // Report the throttle even though the retry loop
                        // will absorb it: width adaptation needs the
                        // wire-level truth, not the post-retry fiction.
                        self.notify(model, LoadSignal::Throttled);
                    } else if matches!(
                        &error,
                        AttemptError::Retryable(LlmError::Transport(message))
                            if message.contains("timed out")
                    ) {
                        self.notify(model, LoadSignal::TimedOut);
                    }
                    if matches!(error, AttemptError::Fatal(_))
                        || attempt >= self.backoff.max_retries()
                    {
                        return Err(error.into_error());
                    }
                    let delay = match &error {
                        // Honor Retry-After, but never beyond the
                        // configured ceiling: a misconfigured (or hostile)
                        // server must not park a pool worker — and any
                        // engine-ledger joiner waiting on it — for hours.
                        AttemptError::Throttled {
                            retry_after: Some(after),
                            ..
                        } => (*after).min(self.config.retry.max_delay),
                        _ => self.backoff.delay(attempt, key),
                    };
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(delay);
                    attempt += 1;
                }
            }
        }
    }

    fn connect(&self, timeout: Duration) -> std::io::Result<TcpStream> {
        use std::net::ToSocketAddrs;
        let mut last_error = None;
        let addrs = (self.base.host.as_str(), self.base.port).to_socket_addrs()?;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last_error = Some(e),
            }
        }
        Err(last_error.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "host resolved to no addresses",
            )
        }))
    }

    /// One wire attempt: write the request, read and classify the
    /// response. A stale keep-alive connection (closed by the server while
    /// parked) is replaced with a fresh socket once, transparently.
    fn round_trip(
        &self,
        request: &CompletionRequest,
        model: ModelChoice,
        timeout: Duration,
    ) -> Result<Completion, AttemptError> {
        let body = encode_request(request, self.config.wire_model(model), self.config.stream);
        let mut reused = true;
        let mut stream = match self.pool.checkout() {
            Some(stream) => {
                // Parked sockets keep their previous deadlines; refresh.
                let _ = stream.set_read_timeout(Some(timeout));
                let _ = stream.set_write_timeout(Some(timeout));
                stream
            }
            None => {
                reused = false;
                self.connect(timeout).map_err(|e| {
                    AttemptError::Retryable(LlmError::Transport(format!(
                        "connect to {}:{} failed: {e}",
                        self.base.host, self.base.port
                    )))
                })?
            }
        };
        if reused {
            self.counters
                .reused_connections
                .fetch_add(1, Ordering::Relaxed);
        }
        loop {
            self.counters.wire_requests.fetch_add(1, Ordering::Relaxed);
            match self.attempt_on(&mut stream, &body, request, timeout) {
                Ok((outcome, reusable)) => {
                    if reusable {
                        self.pool.checkin(stream);
                    }
                    return outcome;
                }
                Err(fail) => {
                    let stale_candidate = fail.virgin
                        && matches!(
                            fail.error.kind(),
                            std::io::ErrorKind::UnexpectedEof
                                | std::io::ErrorKind::BrokenPipe
                                | std::io::ErrorKind::ConnectionReset
                                | std::io::ErrorKind::ConnectionAborted
                                | std::io::ErrorKind::WriteZero
                        );
                    if reused && stale_candidate {
                        reused = false;
                        stream = self.connect(timeout).map_err(|e| {
                            AttemptError::Retryable(LlmError::Transport(format!(
                                "reconnect failed: {e}"
                            )))
                        })?;
                        continue;
                    }
                    let message = match fail.error.kind() {
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                            format!("request timed out after {timeout:?}")
                        }
                        _ => fail.error.to_string(),
                    };
                    return Err(AttemptError::Retryable(LlmError::Transport(message)));
                }
            }
        }
    }

    /// Writes one request on `stream` and reads one response, classifying
    /// HTTP-level outcomes. Returns `(outcome, reusable)` where `reusable`
    /// says the connection was left in a clean framed state and may be
    /// parked; `Err` is a socket-level failure only.
    #[allow(clippy::type_complexity)]
    fn attempt_on(
        &self,
        stream: &mut TcpStream,
        body: &str,
        request: &CompletionRequest,
        timeout: Duration,
    ) -> Result<(Result<Completion, AttemptError>, bool), IoFail> {
        let started = Instant::now();
        let path = self.base.path("/chat/completions");
        let bearer = self.config.api_key.as_ref().map(|k| k.expose());
        write_post(stream, &self.base.host, &path, bearer, body).map_err(|error| IoFail {
            error,
            virgin: true,
        })?;
        // The deadline bounds the whole response, not each read: a server
        // dripping one byte per almost-timeout cannot stretch the round
        // trip past `timeout`.
        let mut reader = WireReader::with_deadline(started + timeout);
        let head = reader.read_head(stream).map_err(|error| IoFail {
            error,
            virgin: reader.received() == 0,
        })?;
        let framing = BodyFraming::of(&head);
        let mid_body = |error| IoFail {
            error,
            virgin: false,
        };
        let is_sse = head
            .header("content-type")
            .is_some_and(|v| v.to_ascii_lowercase().contains("text/event-stream"));
        if head.status == 200 && is_sse {
            let mut accumulator = StreamAccumulator::new();
            match framing {
                BodyFraming::Chunked => reader
                    .read_chunked_body(stream, |bytes| accumulator.feed(bytes))
                    .map_err(mid_body)?,
                BodyFraming::Length(n) => {
                    let bytes = reader.read_exact_body(stream, n).map_err(mid_body)?;
                    accumulator.feed(&bytes);
                }
                BodyFraming::UntilClose => {
                    let bytes = reader.read_to_close(stream).map_err(mid_body)?;
                    accumulator.feed(&bytes);
                }
            }
            let reusable =
                !head.wants_close() && framing != BodyFraming::UntilClose && !reader.has_surplus();
            let outcome = accumulator
                .finish(request, started.elapsed())
                .map_err(|e| AttemptError::Retryable(LlmError::Transport(e)));
            return Ok((outcome, reusable));
        }
        // Non-SSE: collect the whole body (success and failure statuses
        // both carry JSON or text bodies).
        let bytes = match framing {
            BodyFraming::Length(n) => reader.read_exact_body(stream, n).map_err(mid_body)?,
            BodyFraming::Chunked => {
                let mut collected = Vec::new();
                reader
                    .read_chunked_body(stream, |bytes| collected.extend_from_slice(bytes))
                    .map_err(mid_body)?;
                collected
            }
            BodyFraming::UntilClose => reader.read_to_close(stream).map_err(mid_body)?,
        };
        let reusable =
            !head.wants_close() && framing != BodyFraming::UntilClose && !reader.has_surplus();
        let text = String::from_utf8_lossy(&bytes);
        let outcome = match head.status {
            200 => decode_response(request, &text, started.elapsed()).map_err(|e| {
                AttemptError::Retryable(LlmError::Transport(format!("malformed response: {e}")))
            }),
            status => {
                let error = LlmError::Http {
                    status,
                    message: snippet(&text),
                };
                Err(match status {
                    429 => AttemptError::Throttled {
                        retry_after: head.retry_after(),
                        error,
                    },
                    500..=599 => AttemptError::Retryable(error),
                    _ => AttemptError::Fatal(error),
                })
            }
        };
        Ok((outcome, reusable))
    }

    /// Lands a speculative flight: the result stays registered (bounded)
    /// until a foreground submission claims it — unless the speculation
    /// was rejected meanwhile, in which case it is dropped on the floor.
    fn land_speculation(
        &self,
        key: u64,
        flight: &Arc<Flight>,
        result: Result<Completion, LlmError>,
    ) {
        flight.settle(result);
        if flight.rejected.load(Ordering::Relaxed) {
            self.unregister(key, flight);
            return;
        }
        let mut landed = lock(&self.landed);
        landed.push_back((key, Arc::downgrade(flight)));
        while landed.len() > LANDED_SPECULATION_CAP {
            let Some((old_key, old_flight)) = landed.pop_front() else {
                break;
            };
            drop(landed);
            let mut map = lock(&self.inflight);
            // Evict only the *exact* flight this deque entry landed: a
            // stale entry (its flight long claimed, the key since re-flown
            // by a fresh speculation) must not cost the fresh result.
            let evictable = match (map.get(&old_key), old_flight.upgrade()) {
                (Some(current), Some(old)) => {
                    Arc::ptr_eq(current, &old) && current.speculative && current.is_settled()
                }
                _ => false,
            };
            if evictable {
                map.remove(&old_key);
            }
            drop(map);
            landed = lock(&self.landed);
        }
    }

    /// Drops the speculative flight registered for `key` (when its
    /// identity matches `request` — a fingerprint-colliding stranger is
    /// left alone): a settled one is unregistered immediately, a
    /// still-flying one is marked rejected so it lands on the floor.
    /// Foreground flights are also left alone — they are momentary (their
    /// leader unregisters on completion) and their waiters asked for
    /// exactly that result.
    fn reject_key(&self, key: u64, request: &CompletionRequest) {
        let map = lock(&self.inflight);
        let Some(flight) = map.get(&key) else {
            return;
        };
        if !flight.speculative || !flight.request.same_identity(request) {
            return;
        }
        let flight = Arc::clone(flight);
        drop(map);
        flight.rejected.store(true, Ordering::Relaxed);
        if flight.is_settled() {
            self.unregister(key, &flight);
        }
    }
}

impl HttpLlm {
    fn key_of(request: &CompletionRequest, sample: u64) -> u64 {
        request.fingerprint(sample)
    }
}

impl LanguageModel for HttpLlm {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        self.complete_tagged(request, 0)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        self.inner.submit(Self::key_of(request, sample), request)
    }

    fn complete_prepared(
        &self,
        prepared: &PreparedRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        self.inner
            .submit(prepared.fingerprint(sample), prepared.request())
    }

    /// Accepts the speculation by launching the wire round trip on a
    /// background thread. The flight stays registered until a foreground
    /// submission of the same turn claims it (in-flight join or landed
    /// pickup) or [`reject_completion`](LanguageModel::reject_completion)
    /// withdraws it.
    fn prefetch(&self, prepared: &PreparedRequest) -> bool {
        let key = prepared.fingerprint(0);
        let flight = {
            let mut map = lock(&self.inner.inflight);
            if map.contains_key(&key) {
                return true; // already in flight (or landed): paid for
            }
            let flight = Arc::new(Flight::new(true, prepared.request().clone()));
            map.insert(key, Arc::clone(&flight));
            flight
        };
        let inner = Arc::clone(&self.inner);
        let prepared = prepared.clone();
        let worker_flight = Arc::clone(&flight);
        let spawned = std::thread::Builder::new()
            .name("askit-http-prefetch".to_owned())
            .spawn(move || {
                let result = inner.execute(key, prepared.request());
                inner.land_speculation(key, &worker_flight, result);
            });
        match spawned {
            Ok(handle) => {
                self.inner
                    .counters
                    .prefetches
                    .fetch_add(1, Ordering::Relaxed);
                lock(&self.spec_threads).push(handle);
                self.reap_spec_threads();
                true
            }
            Err(_) => {
                // Could not spawn: withdraw the registration so foreground
                // submissions do not wait on a flight nobody is flying.
                let mut map = lock(&self.inner.inflight);
                if map.get(&key).is_some_and(|f| Arc::ptr_eq(f, &flight)) {
                    map.remove(&key);
                }
                false
            }
        }
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        // Fan the batch out in bounded waves of scoped threads: a network
        // round trip is latency-bound, so even a modest overlap beats
        // serial submission; the token bucket still paces admission.
        const WAVE: usize = 16;
        let mut results = Vec::with_capacity(requests.len());
        for wave in requests.chunks(WAVE) {
            let wave_results: Vec<Result<Completion, LlmError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|request| scope.spawn(move || self.complete_tagged(request, 0)))
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| match handle.join() {
                        Ok(result) => result,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            results.extend(wave_results);
        }
        results
    }

    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        self.inner
            .reject_key(Self::key_of(request, sample), request);
    }

    fn reject_prepared(&self, prepared: &PreparedRequest, sample: u64) {
        self.inner
            .reject_key(prepared.fingerprint(sample), prepared.request());
    }

    /// The HTTP backend pushes wire-level load signals: every attempt's
    /// outcome is reported, including 429s and timeouts the retry loop
    /// absorbs before any caller sees them. Subscribers must therefore not
    /// also classify returned errors (they would double-count).
    fn subscribe_load(&self, observer: Arc<dyn LoadObserver>) -> bool {
        lock(&self.inner.observers).push(observer);
        true
    }

    fn model_name(&self) -> &str {
        &self.inner.display_name
    }
}

/// Truncates a response body for inclusion in an error message.
fn snippet(text: &str) -> String {
    let trimmed = text.trim();
    if trimmed.len() <= BODY_SNIPPET_LIMIT {
        return trimmed.to_owned();
    }
    let mut cut = BODY_SNIPPET_LIMIT;
    while !trimmed.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &trimmed[..cut])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_base_urls_fail_construction() {
        let err = HttpLlm::new(HttpLlmConfig::new("https://api.openai.com/v1")).unwrap_err();
        assert!(matches!(err, LlmError::InvalidRequest(_)), "{err}");
        assert!(HttpLlm::new(HttpLlmConfig::new("not a url")).is_err());
    }

    #[test]
    fn snippets_truncate_on_char_boundaries() {
        assert_eq!(snippet("short"), "short");
        let long = "é".repeat(300);
        let cut = snippet(&long);
        assert!(cut.len() <= BODY_SNIPPET_LIMIT + '…'.len_utf8());
        assert!(cut.ends_with('…'));
    }

    #[test]
    fn model_name_names_the_wire_model() {
        let llm = HttpLlm::new(HttpLlmConfig::new("http://127.0.0.1:9/v1")).unwrap();
        assert_eq!(llm.model_name(), "http:gpt-4");
    }
}
