//! [`HttpLlm`]: the OpenAI-compatible network backend.
//!
//! One client owns a keep-alive connection pool, a per-model token-bucket
//! [`RateLimiter`], a jittered-backoff retry loop, and an **in-flight
//! coalescing** table: concurrent submissions of the same `(request,
//! sample)` identity share one wire round trip, and a speculative
//! [`prefetch`](askit_llm::LanguageModel::prefetch) becomes a flight the
//! next foreground submission *joins* instead of re-paying. The client
//! implements [`LanguageModel`], so it slots under the execution engine
//! unchanged — cache, worker pool, and speculation ledger all front it
//! exactly as they front the mock.
//!
//! # Resilience
//!
//! The client serves an ordered **endpoint list** (primary plus
//! [`fallbacks`](crate::HttpLlmConfig::fallback_api_bases)), each with its
//! own connection pool and [`CircuitBreaker`]. Endpoint-health failures
//! (5xx, transport faults) trip a breaker open; the retry loop then **fails
//! over** to the next admissible endpoint *without* a backoff sleep, and
//! the broken endpoint is re-tried only by half-open probes. Requests
//! carrying a [`deadline`](askit_llm::RequestOptions::deadline) never
//! out-live it: per-attempt socket budgets and backoff sleeps are clipped
//! to the remaining budget, and an expired deadline returns
//! [`LlmError::DeadlineExceeded`] instead of dispatching. Requests that
//! opt in to [`hedging`](askit_llm::RequestOptions::hedge) race a second
//! attempt on a different endpoint once the first has been in flight
//! longer than a recent-latency percentile — first result wins, the loser
//! is dropped on the floor. Breaker transitions are exported as
//! [`LoadSignal::Breaker`] so schedulers and health endpoints above see
//! endpoint state without polling.
//!
//! # Credential hygiene
//!
//! The API key reaches exactly one sink: the `Authorization` header bytes
//! written by [`write_post`]. Every error constructed here is built from
//! the *response* (status line, truncated body snippet) or from socket
//! error text — never from request headers — so `ASKIT_API_KEY` cannot
//! appear in `Debug` output, error messages, or anything a caller
//! persists. A unit test greps every formatted surface for the key.

use std::collections::{HashMap, VecDeque};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use askit_llm::{
    Completion, CompletionRequest, LanguageModel, LlmError, LoadObserver, LoadSignal, ModelChoice,
    PreparedRequest,
};

use crate::backoff::BackoffPolicy;
use crate::breaker::{Admission, CircuitBreaker};
use crate::config::HttpLlmConfig;
use crate::lock;
use crate::protocol::{decode_response, encode_request, StreamAccumulator};
use crate::ratelimit::RateLimiter;
use crate::wire::{write_post, BodyFraming, ConnectionPool, ParsedBase, WireReader};

/// How many *landed* (completed but unclaimed) speculative flights are
/// retained before the oldest is forgotten.
const LANDED_SPECULATION_CAP: usize = 64;

/// Longest response-body snippet embedded in an [`LlmError::Http`].
const BODY_SNIPPET_LIMIT: usize = 200;

/// Recent round-trip latencies retained for the hedge-delay percentile.
const LATENCY_WINDOW_CAP: usize = 64;

/// Wire-level counters (cumulative since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HttpStats {
    /// HTTP requests actually written to a socket (each retry counts).
    pub wire_requests: u64,
    /// Attempts retried after a 429/5xx or transport failure.
    pub retries: u64,
    /// 429 responses absorbed (each drains the model's token bucket).
    pub throttles: u64,
    /// Submissions served by joining an already-in-flight identical
    /// request instead of issuing their own.
    pub coalesced: u64,
    /// Speculative prefetch flights launched.
    pub prefetches: u64,
    /// Round trips that started on a parked keep-alive connection.
    pub reused_connections: u64,
    /// Consecutive attempts of one request that switched endpoints.
    pub failovers: u64,
    /// Hedged second attempts actually launched (the hedge delay elapsed
    /// before the first attempt finished).
    pub hedges: u64,
    /// Hedged requests won by the second attempt.
    pub hedge_wins: u64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Requests (or attempts) shed because their deadline had expired.
    pub deadline_sheds: u64,
}

#[derive(Default)]
struct Counters {
    wire_requests: AtomicU64,
    retries: AtomicU64,
    throttles: AtomicU64,
    coalesced: AtomicU64,
    prefetches: AtomicU64,
    reused_connections: AtomicU64,
    failovers: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    breaker_trips: AtomicU64,
    deadline_sheds: AtomicU64,
}

/// One in-flight (or landed-speculative) wire round trip.
struct Flight {
    state: Mutex<Option<Result<Completion, LlmError>>>,
    done: Condvar,
    /// Speculative flights stay registered after completion so a later
    /// foreground submission can claim the result; foreground flights
    /// unregister the moment they land.
    speculative: bool,
    /// Set by `reject_completion`: the landed result must not be served.
    rejected: AtomicBool,
    /// The leader's request. The table keys on the 64-bit fingerprint,
    /// which is not collision-free; a would-be follower whose request
    /// does not [`CompletionRequest::same_identity`]-match this one flies
    /// its own round trip instead of inheriting a stranger's completion —
    /// the same disambiguation every cache layer in the workspace does.
    request: CompletionRequest,
}

impl Flight {
    fn new(speculative: bool, request: CompletionRequest) -> Self {
        Flight {
            state: Mutex::new(None),
            done: Condvar::new(),
            speculative,
            rejected: AtomicBool::new(false),
            request,
        }
    }

    fn settle(&self, result: Result<Completion, LlmError>) {
        let mut state = lock(&self.state);
        *state = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Completion, LlmError> {
        let mut state = lock(&self.state);
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn is_settled(&self) -> bool {
        lock(&self.state).is_some()
    }
}

/// Outcome of one wire attempt, classified for the retry loop.
enum AttemptError {
    /// 429: retry after `Retry-After` (or backoff); the model's bucket is
    /// drained so the rest of the pool paces itself too.
    Throttled {
        retry_after: Option<Duration>,
        error: LlmError,
    },
    /// 5xx or a transport failure: retry after backoff.
    Retryable(LlmError),
    /// Anything else (other 4xx, malformed request): fail now.
    Fatal(LlmError),
}

impl AttemptError {
    fn into_error(self) -> LlmError {
        match self {
            AttemptError::Throttled { error, .. } => error,
            AttemptError::Retryable(error) | AttemptError::Fatal(error) => error,
        }
    }
}

/// A socket-level failure, tagged with whether any response byte had
/// arrived (a failure on an untouched reused connection is a stale
/// keep-alive, retried once on a fresh socket without counting as an
/// attempt).
struct IoFail {
    error: std::io::Error,
    virgin: bool,
}

/// One service endpoint: its parsed base, its own keep-alive pool (sockets
/// to different hosts must not mix), and its own circuit breaker.
struct Endpoint {
    base: ParsedBase,
    pool: ConnectionPool,
    breaker: CircuitBreaker,
    /// `askit_wire_attempts_total{endpoint=...}` in the global registry.
    attempts_metric: Arc<askit_obs::Counter>,
    /// `askit_wire_latency_us{endpoint=...}` in the global registry.
    latency_metric: Arc<askit_obs::Histogram>,
    /// `askit_breaker_state{endpoint=...}`: 0 closed, 1 half-open, 2 open.
    breaker_metric: Arc<askit_obs::Gauge>,
}

/// Encodes a breaker state for the `askit_breaker_state` gauge.
fn breaker_gauge_value(state: askit_llm::BreakerState) -> i64 {
    match state {
        askit_llm::BreakerState::Closed => 0,
        askit_llm::BreakerState::HalfOpen => 1,
        askit_llm::BreakerState::Open => 2,
    }
}

/// Process-wide mirrors of the [`Counters`] that matter for dashboards,
/// registered once in the global metrics registry. Per-instance exactness
/// stays with [`HttpStats`]; these sum across every client in the process.
struct HttpMetrics {
    retries: Arc<askit_obs::Counter>,
    throttles: Arc<askit_obs::Counter>,
    failovers: Arc<askit_obs::Counter>,
    hedges: Arc<askit_obs::Counter>,
    hedge_wins: Arc<askit_obs::Counter>,
    breaker_trips: Arc<askit_obs::Counter>,
    deadline_sheds: Arc<askit_obs::Counter>,
}

fn http_metrics() -> &'static HttpMetrics {
    static METRICS: std::sync::OnceLock<HttpMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = askit_obs::metrics::global();
        HttpMetrics {
            retries: r.counter(
                "askit_http_retries_total",
                "Wire attempts retried after a 429/5xx or transport failure",
                &[],
            ),
            throttles: r.counter(
                "askit_http_throttles_total",
                "429 responses absorbed by the retry loop",
                &[],
            ),
            failovers: r.counter(
                "askit_http_failovers_total",
                "Consecutive attempts of one request that switched endpoints",
                &[],
            ),
            hedges: r.counter(
                "askit_http_hedges_total",
                "Hedged second attempts actually launched",
                &[],
            ),
            hedge_wins: r.counter(
                "askit_http_hedge_wins_total",
                "Hedged requests won by the second attempt",
                &[],
            ),
            breaker_trips: r.counter(
                "askit_http_breaker_trips_total",
                "Circuit-breaker trips (closed/half-open to open)",
                &[],
            ),
            deadline_sheds: r.counter(
                "askit_http_deadline_sheds_total",
                "Requests or attempts shed because their deadline had expired",
                &[],
            ),
        }
    })
}

/// A bounded window of recent round-trip latencies, consulted for the
/// hedge delay (see [`crate::HedgeConfig`]).
struct LatencyWindow {
    samples: Mutex<VecDeque<Duration>>,
    cap: usize,
}

impl LatencyWindow {
    fn new(cap: usize) -> Self {
        LatencyWindow {
            samples: Mutex::new(VecDeque::new()),
            cap,
        }
    }

    fn record(&self, latency: Duration) {
        let mut samples = lock(&self.samples);
        samples.push_back(latency);
        while samples.len() > self.cap {
            samples.pop_front();
        }
    }

    /// The `p`-th percentile of the window, or `None` with fewer than
    /// `min_samples` observations.
    fn percentile(&self, p: f64, min_samples: usize) -> Option<Duration> {
        let samples = lock(&self.samples);
        if samples.len() < min_samples.max(1) {
            return None;
        }
        let mut sorted: Vec<Duration> = samples.iter().copied().collect();
        sorted.sort_unstable();
        let rank = (sorted.len() - 1) as f64 * p.clamp(0.0, 1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let index = (rank.round() as usize).min(sorted.len() - 1);
        Some(sorted[index])
    }
}

struct Inner {
    config: HttpLlmConfig,
    /// Ordered endpoints: primary first, then fallbacks. Never empty.
    endpoints: Vec<Endpoint>,
    /// Recent completed-round-trip latencies (all endpoints pooled) for
    /// the hedge-delay percentile.
    latencies: LatencyWindow,
    limiter: RateLimiter,
    backoff: BackoffPolicy,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    /// Landed speculative flights (key + the exact flight that landed),
    /// oldest first, bounded by [`LANDED_SPECULATION_CAP`]. The weak
    /// handle pins eviction to the flight that created the entry; stale
    /// entries for claimed flights pop harmlessly.
    landed: Mutex<VecDeque<(u64, std::sync::Weak<Flight>)>>,
    counters: Counters,
    display_name: String,
    /// Load observers (see [`LanguageModel::subscribe_load`]): every wire
    /// attempt reports here — 429s and timeouts the retry loop absorbs
    /// included — so a scheduler above sees the provider's true pushback,
    /// not just the errors that survive retries.
    observers: Mutex<Vec<Arc<dyn LoadObserver>>>,
}

/// The OpenAI-compatible HTTP backend. See the module docs.
pub struct HttpLlm {
    inner: Arc<Inner>,
    /// Speculative-prefetch workers, reaped opportunistically and joined
    /// on drop.
    spec_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for HttpLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bases: Vec<&ParsedBase> = self.inner.endpoints.iter().map(|e| &e.base).collect();
        f.debug_struct("HttpLlm")
            .field("endpoints", &bases)
            .field("config", &self.inner.config)
            .field("stats", &self.inner.stats())
            .finish()
    }
}

impl HttpLlm {
    /// Builds a client for `config`.
    ///
    /// # Errors
    ///
    /// [`LlmError::InvalidRequest`] when any base URL — primary or
    /// fallback — does not parse (or uses a scheme the offline build
    /// cannot serve, i.e. `https`).
    pub fn new(config: HttpLlmConfig) -> Result<Self, LlmError> {
        let mut endpoints = Vec::with_capacity(1 + config.fallback_api_bases.len());
        let registry = askit_obs::metrics::global();
        // Register the process-wide counters up front so a fault-free run
        // still exposes them (at zero) in the Prometheus exposition.
        let _ = http_metrics();
        for api_base in std::iter::once(&config.api_base).chain(config.fallback_api_bases.iter()) {
            let base = ParsedBase::parse(api_base).map_err(LlmError::InvalidRequest)?;
            let label = format!("{}:{}", base.host, base.port);
            let labels: &[(&str, &str)] = &[("endpoint", &label)];
            let breaker_metric = registry.gauge(
                "askit_breaker_state",
                "Circuit-breaker state per endpoint (0 closed, 1 half-open, 2 open)",
                labels,
            );
            breaker_metric.set(0);
            endpoints.push(Endpoint {
                base,
                pool: ConnectionPool::new(config.max_idle_connections),
                breaker: CircuitBreaker::new(config.breaker),
                attempts_metric: registry.counter(
                    "askit_wire_attempts_total",
                    "HTTP round trips attempted per endpoint",
                    labels,
                ),
                latency_metric: registry.histogram(
                    "askit_wire_latency_us",
                    "Completed round-trip latency per endpoint, microseconds",
                    labels,
                ),
                breaker_metric,
            });
        }
        let display_name = format!("http:{}", config.default_model);
        Ok(HttpLlm {
            inner: Arc::new(Inner {
                endpoints,
                latencies: LatencyWindow::new(LATENCY_WINDOW_CAP),
                limiter: RateLimiter::new(&config.rate_limits),
                backoff: BackoffPolicy::new(config.retry),
                inflight: Mutex::new(HashMap::new()),
                landed: Mutex::new(VecDeque::new()),
                counters: Counters::default(),
                observers: Mutex::new(Vec::new()),
                display_name,
                config,
            }),
            spec_threads: Mutex::new(Vec::new()),
        })
    }

    /// A client configured from `ASKIT_API_BASE`/`ASKIT_API_KEY`.
    ///
    /// # Errors
    ///
    /// [`LlmError::InvalidRequest`] when the base variable is unset or
    /// does not parse.
    pub fn from_env() -> Result<Self, LlmError> {
        let config = HttpLlmConfig::from_env().ok_or_else(|| {
            LlmError::InvalidRequest(format!(
                "{} is not set (export it or pass --api-base)",
                crate::config::API_BASE_ENV
            ))
        })?;
        HttpLlm::new(config)
    }

    /// The configuration this client was built with.
    pub fn config(&self) -> &HttpLlmConfig {
        &self.inner.config
    }

    /// A snapshot of the wire-level counters.
    pub fn stats(&self) -> HttpStats {
        self.inner.stats()
    }

    /// Joins every finished speculative worker so the handle list stays
    /// bounded in long-lived processes.
    fn reap_spec_threads(&self) {
        let mut threads = lock(&self.spec_threads);
        let (finished, running): (Vec<_>, Vec<_>) =
            threads.drain(..).partition(|handle| handle.is_finished());
        *threads = running;
        drop(threads);
        for handle in finished {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpLlm {
    /// Joins outstanding speculative workers: their sockets carry read
    /// timeouts, so the wait is bounded, and joining guarantees no worker
    /// outlives the client (mirroring the engine pool's drop discipline).
    fn drop(&mut self) {
        for handle in lock(&self.spec_threads).drain(..) {
            let _ = handle.join();
        }
    }
}

impl Inner {
    /// Reports one wire-level signal to every subscribed observer.
    fn notify(&self, model: ModelChoice, signal: LoadSignal) {
        for observer in lock(&self.observers).iter() {
            observer.observed(model, signal);
        }
    }

    /// Publishes a breaker transition everywhere it is consumed: the
    /// per-endpoint gauge, a process-scope trace event (breaker state is
    /// shared — no single request owns the transition), and the load
    /// observers.
    fn breaker_transition(&self, index: usize, state: askit_llm::BreakerState, model: ModelChoice) {
        self.endpoints[index]
            .breaker_metric
            .set(breaker_gauge_value(state));
        askit_obs::event(None, "breaker")
            .arg("endpoint", index)
            .arg("state", state.tag());
        self.notify(
            model,
            LoadSignal::Breaker {
                endpoint: index,
                state,
            },
        );
    }

    fn stats(&self) -> HttpStats {
        HttpStats {
            wire_requests: self.counters.wire_requests.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            throttles: self.counters.throttles.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            prefetches: self.counters.prefetches.load(Ordering::Relaxed),
            reused_connections: self.counters.reused_connections.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            hedges: self.counters.hedges.load(Ordering::Relaxed),
            hedge_wins: self.counters.hedge_wins.load(Ordering::Relaxed),
            breaker_trips: self.counters.breaker_trips.load(Ordering::Relaxed),
            deadline_sheds: self.counters.deadline_sheds.load(Ordering::Relaxed),
        }
    }

    /// Removes `flight` from the in-flight table — but only if it is still
    /// the registered occupant of `key` (a fresh flight may have replaced
    /// it meanwhile).
    fn unregister(&self, key: u64, flight: &Arc<Flight>) {
        let mut map = lock(&self.inflight);
        if map.get(&key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
            map.remove(&key);
        }
    }

    /// Submits through the coalescing table: the first caller for a key
    /// becomes the leader and performs the wire work; concurrent callers
    /// with the same identity wait for the leader's result instead of
    /// issuing their own. A landed speculative flight is *claimed*: its
    /// result is consumed and the key freed, so later submissions (e.g.
    /// after a rejection) re-ask the service.
    /// (Associated rather than a method: the hedged path spawns legs that
    /// must own an `Arc<Inner>`, and `&Arc<Self>` is not a valid receiver.)
    fn submit(
        inner: &Arc<Inner>,
        key: u64,
        request: &CompletionRequest,
    ) -> Result<Completion, LlmError> {
        enum Role {
            Leader(Arc<Flight>),
            Follower(Arc<Flight>),
        }
        let role = {
            let mut map = lock(&inner.inflight);
            match map.get(&key) {
                // A fingerprint collision with a different conversation
                // must not inherit the stranger's completion: fly solo.
                Some(flight) if !flight.request.same_identity(request) => {
                    drop(map);
                    return Inner::execute(inner, key, request);
                }
                Some(flight) => Role::Follower(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight::new(false, request.clone()));
                    map.insert(key, Arc::clone(&flight));
                    Role::Leader(flight)
                }
            }
        };
        match role {
            Role::Leader(flight) => {
                let result = Inner::execute(inner, key, request);
                // Unregister before settling: a caller arriving after the
                // removal starts a fresh flight instead of reading a stale
                // result — this table coalesces *concurrency*; memoizing
                // is the completion cache's job, above the client.
                inner.unregister(key, &flight);
                flight.settle(result.clone());
                result
            }
            Role::Follower(flight) => {
                inner.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                let result = flight.wait();
                if flight.speculative {
                    // Claim the speculation.
                    inner.unregister(key, &flight);
                    let usable = !flight.rejected.load(Ordering::Relaxed);
                    match result {
                        Ok(completion) if usable => Ok(completion),
                        // A failed or rejected speculation must not infect
                        // the foreground: pay the round trip ourselves —
                        // back through the coalescing table, so several
                        // followers of one doomed speculation elect a
                        // single retry leader instead of stampeding a
                        // service that is already failing. (The recursion
                        // is depth-1: the speculative flight was just
                        // unregistered, and the replacement flight is
                        // non-speculative, whose followers return its
                        // result directly.)
                        _ => Inner::submit(inner, key, request),
                    }
                } else {
                    result
                }
            }
        }
    }

    /// One logical completion: the hedged race when the request opts in
    /// and a second endpoint exists, the plain retry loop otherwise.
    fn execute(
        inner: &Arc<Inner>,
        key: u64,
        request: &CompletionRequest,
    ) -> Result<Completion, LlmError> {
        if request.messages.is_empty() {
            return Err(LlmError::InvalidRequest("empty conversation".to_owned()));
        }
        if request.options.hedge && inner.endpoints.len() > 1 {
            Inner::execute_hedged(inner, key, request)
        } else {
            inner.execute_single(key, request, None)
        }
    }

    /// The hedge delay: a recent-latency percentile once enough round
    /// trips have completed, the configured initial delay before that.
    fn hedge_delay(&self) -> Duration {
        self.latencies
            .percentile(self.config.hedge.percentile, self.config.hedge.min_samples)
            .unwrap_or(self.config.hedge.initial_delay)
    }

    /// Races two attempt chains: the primary leg starts immediately with
    /// normal endpoint preference; if it has not finished within the
    /// hedge delay, a second leg starts with the primary endpoint
    /// *deprioritized*. First result wins; the loser keeps running until
    /// its own (deadline-clipped) retry loop ends and its result is
    /// dropped. Both legs share the coalescing flight above this call, so
    /// followers see exactly one winner.
    fn execute_hedged(
        inner: &Arc<Inner>,
        key: u64,
        request: &CompletionRequest,
    ) -> Result<Completion, LlmError> {
        let (sender, receiver) = mpsc::channel::<(bool, Result<Completion, LlmError>)>();
        let spawn_leg = |hedged: bool| -> std::io::Result<()> {
            let inner = Arc::clone(inner);
            let request = request.clone();
            let sender = sender.clone();
            std::thread::Builder::new()
                .name("askit-http-hedge".to_owned())
                .spawn(move || {
                    let avoid = hedged.then_some(0);
                    let result = inner.execute_single(key, &request, avoid);
                    let _ = sender.send((hedged, result));
                })
                .map(drop)
        };
        if spawn_leg(false).is_err() {
            // Could not spawn: degrade to an unhedged inline attempt.
            return inner.execute_single(key, request, None);
        }
        let delay = request
            .options
            .clip_to_deadline(inner.hedge_delay(), Instant::now());
        match receiver.recv_timeout(delay) {
            Ok((_, result)) => return result,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(LlmError::Transport("hedge leg vanished".to_owned()));
            }
        }
        // The primary is slow: launch the hedge on the next endpoint.
        let hedge_flying = spawn_leg(true).is_ok();
        if hedge_flying {
            inner.counters.hedges.fetch_add(1, Ordering::Relaxed);
            http_metrics().hedges.inc();
            askit_obs::event(request.options.trace, "hedge_launch")
                .arg("delay_us", delay.as_micros());
        }
        // Our own sender clone must die so `recv` can observe both legs
        // finishing (each leg sends exactly once, then drops its sender).
        drop(sender);
        let first = match receiver.recv() {
            Ok(first) => first,
            Err(_) => return Err(LlmError::Transport("hedge legs vanished".to_owned())),
        };
        let winner = match first {
            (hedged, Ok(completion)) => (hedged, Ok(completion)),
            (_, Err(first_error)) if hedge_flying => match receiver.recv() {
                // The slower leg only gets to answer when the faster one
                // failed; prefer its success, else surface the first error.
                Ok((hedged, Ok(completion))) => (hedged, Ok(completion)),
                _ => (false, Err(first_error)),
            },
            (hedged, Err(error)) => (hedged, Err(error)),
        };
        if winner.0 && winner.1.is_ok() {
            inner.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
            http_metrics().hedge_wins.inc();
            askit_obs::event(request.options.trace, "hedge_win");
        }
        winner.1
    }

    /// Picks the first endpoint whose breaker admits a request at `now`,
    /// scanning in priority order (primary first) with `deprioritized`
    /// moved to the back of the line. Reports any breaker transition the
    /// admission itself caused (open → half-open probe grants). `None`
    /// means every breaker rejected.
    fn pick_endpoint(
        &self,
        now: Instant,
        deprioritized: Option<usize>,
        model: ModelChoice,
    ) -> Option<(usize, Admission)> {
        let order = (0..self.endpoints.len())
            .filter(|i| Some(*i) != deprioritized)
            .chain(
                deprioritized
                    .into_iter()
                    .filter(|i| *i < self.endpoints.len()),
            );
        for index in order {
            let (admission, transition) = self.endpoints[index].breaker.admit(now);
            if let Some(state) = transition {
                self.breaker_transition(index, state, model);
            }
            if admission != Admission::Rejected {
                return Some((index, admission));
            }
        }
        None
    }

    /// Whether any endpoint *other than* `except` would admit a request
    /// right now (without consuming a probe slot) — the failover test that
    /// decides whether a retry sleeps or switches immediately.
    fn other_candidate_exists(&self, except: usize, now: Instant) -> bool {
        self.endpoints
            .iter()
            .enumerate()
            .any(|(i, e)| i != except && e.breaker.would_admit(now))
    }

    /// Records one attempt's outcome on the endpoint's breaker and exports
    /// any transition. 5xx and transport faults count against the
    /// endpoint; any parsed response — 429, 4xx, 200 — proves it alive.
    fn record_endpoint_outcome(&self, index: usize, healthy: bool, model: ModelChoice) {
        let breaker = &self.endpoints[index].breaker;
        let transition = if healthy {
            breaker.record_success()
        } else {
            let transition = breaker.record_failure(Instant::now());
            if transition == Some(askit_llm::BreakerState::Open) {
                self.counters.breaker_trips.fetch_add(1, Ordering::Relaxed);
                http_metrics().breaker_trips.inc();
            }
            transition
        };
        if let Some(state) = transition {
            self.breaker_transition(index, state, model);
        }
    }

    /// The retry loop around one attempt chain. Walks the endpoint list
    /// (skipping open breakers), clips every sleep and socket budget to
    /// the request's remaining deadline, and fails over to another
    /// endpoint *without sleeping* when one is admissible.
    fn execute_single(
        &self,
        key: u64,
        request: &CompletionRequest,
        avoid: Option<usize>,
    ) -> Result<Completion, LlmError> {
        if request.messages.is_empty() {
            return Err(LlmError::InvalidRequest("empty conversation".to_owned()));
        }
        let model = request.options.model;
        let trace = request.options.trace;
        // A hedge leg is born deprioritizing the primary; that flag is
        // worth carrying onto its wire-attempt spans.
        let hedged = avoid.is_some();
        let timeout = request
            .options
            .timeout
            .unwrap_or(self.config.request_timeout);
        let mut attempt: u32 = 0;
        let shed = || {
            self.counters.deadline_sheds.fetch_add(1, Ordering::Relaxed);
            http_metrics().deadline_sheds.inc();
            askit_obs::event(trace, "deadline_shed").arg("layer", "http");
            Err(LlmError::DeadlineExceeded)
        };
        // Which endpoint to scan *last* on the next pick: a hedge leg
        // starts by deprioritizing the primary; a failed attempt
        // deprioritizes the endpoint that just failed.
        let mut deprioritized = avoid;
        let mut last_index: Option<usize> = None;
        loop {
            // The limiter can block; take the clock after it.
            self.limiter.acquire(model);
            let now = Instant::now();
            if request.options.deadline_expired(now) {
                return shed();
            }
            let Some((index, _admission)) = self.pick_endpoint(now, deprioritized, model) else {
                // Every breaker is open and cooling down. Wait out a
                // backoff slice (clipped to the deadline) and re-scan —
                // a cooldown lapsing turns a breaker probe-able.
                if attempt >= self.backoff.max_retries() {
                    return Err(LlmError::Transport(
                        "all endpoints have open circuit breakers".to_owned(),
                    ));
                }
                let delay = request
                    .options
                    .clip_to_deadline(self.backoff.delay(attempt, key), now);
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                http_metrics().retries.inc();
                std::thread::sleep(delay);
                attempt += 1;
                continue;
            };
            if let Some(last) = last_index.filter(|last| *last != index) {
                self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                http_metrics().failovers.inc();
                askit_obs::event(trace, "failover")
                    .arg("from", last)
                    .arg("to", index);
            }
            last_index = Some(index);
            // Per-attempt socket budget: the configured round-trip timeout,
            // never more than what remains of the end-to-end deadline.
            let attempt_timeout = request.options.clip_to_deadline(timeout, now);
            self.endpoints[index].attempts_metric.inc();
            let outcome = {
                let mut span = askit_obs::span(trace, "wire_attempt");
                span.set_arg("endpoint", index);
                span.set_arg("attempt", attempt);
                span.set_arg("hedged", hedged);
                let outcome = self.round_trip(index, request, model, attempt_timeout);
                span.set_arg("ok", outcome.is_ok());
                outcome
            };
            match outcome {
                Ok(completion) => {
                    self.record_endpoint_outcome(index, true, model);
                    self.latencies.record(completion.latency);
                    self.endpoints[index]
                        .latency_metric
                        .observe(completion.latency.as_micros() as u64);
                    self.notify(
                        model,
                        LoadSignal::Completed {
                            latency: completion.latency,
                        },
                    );
                    return Ok(completion);
                }
                Err(error) => {
                    // Endpoint health: only 5xx/transport faults count
                    // against the breaker — a 429 or 4xx is a live answer.
                    self.record_endpoint_outcome(
                        index,
                        !matches!(error, AttemptError::Retryable(_)),
                        model,
                    );
                    if matches!(error, AttemptError::Throttled { .. }) {
                        self.counters.throttles.fetch_add(1, Ordering::Relaxed);
                        http_metrics().throttles.inc();
                        // Drain the bucket: every worker headed for this
                        // model now paces itself instead of discovering
                        // the limit with its own 429.
                        self.limiter.penalize(model);
                        // Report the throttle even though the retry loop
                        // will absorb it: width adaptation needs the
                        // wire-level truth, not the post-retry fiction.
                        self.notify(model, LoadSignal::Throttled);
                    } else if matches!(
                        &error,
                        AttemptError::Retryable(LlmError::Transport(message))
                            if message.contains("timed out")
                    ) {
                        self.notify(model, LoadSignal::TimedOut);
                    }
                    if matches!(error, AttemptError::Fatal(_))
                        || attempt >= self.backoff.max_retries()
                    {
                        return Err(error.into_error());
                    }
                    let now = Instant::now();
                    if request.options.deadline_expired(now) {
                        return shed();
                    }
                    // Prefer a different endpoint next time; when one is
                    // admissible right now, fail over immediately instead
                    // of sleeping out a backoff against a broken host.
                    deprioritized = Some(index);
                    let delay = if self.other_candidate_exists(index, now) {
                        Duration::ZERO
                    } else {
                        let computed = match &error {
                            // Honor Retry-After, but never beyond the
                            // configured ceiling: a misconfigured (or
                            // hostile) server must not park a pool worker —
                            // and any engine-ledger joiner waiting on it —
                            // for hours.
                            AttemptError::Throttled {
                                retry_after: Some(after),
                                ..
                            } => (*after).min(self.config.retry.max_delay),
                            _ => self.backoff.delay(attempt, key),
                        };
                        request.options.clip_to_deadline(computed, now)
                    };
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    http_metrics().retries.inc();
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
            }
        }
    }

    fn connect(&self, base: &ParsedBase, timeout: Duration) -> std::io::Result<TcpStream> {
        use std::net::ToSocketAddrs;
        let mut last_error = None;
        let addrs = (base.host.as_str(), base.port).to_socket_addrs()?;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last_error = Some(e),
            }
        }
        Err(last_error.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "host resolved to no addresses",
            )
        }))
    }

    /// One wire attempt: write the request, read and classify the
    /// response. A stale keep-alive connection (closed by the server while
    /// parked) is replaced with a fresh socket once, transparently.
    fn round_trip(
        &self,
        endpoint_index: usize,
        request: &CompletionRequest,
        model: ModelChoice,
        timeout: Duration,
    ) -> Result<Completion, AttemptError> {
        let endpoint = &self.endpoints[endpoint_index];
        let body = encode_request(request, self.config.wire_model(model), self.config.stream);
        let mut reused = true;
        let mut stream = match endpoint.pool.checkout() {
            Some(stream) => {
                // Parked sockets keep their previous deadlines; refresh.
                let _ = stream.set_read_timeout(Some(timeout));
                let _ = stream.set_write_timeout(Some(timeout));
                stream
            }
            None => {
                reused = false;
                self.connect(&endpoint.base, timeout).map_err(|e| {
                    AttemptError::Retryable(LlmError::Transport(format!(
                        "connect to {}:{} failed: {e}",
                        endpoint.base.host, endpoint.base.port
                    )))
                })?
            }
        };
        if reused {
            self.counters
                .reused_connections
                .fetch_add(1, Ordering::Relaxed);
        }
        loop {
            self.counters.wire_requests.fetch_add(1, Ordering::Relaxed);
            match self.attempt_on(endpoint, &mut stream, &body, request, timeout) {
                Ok((outcome, reusable)) => {
                    if reusable {
                        endpoint.pool.checkin(stream);
                    }
                    return outcome;
                }
                Err(fail) => {
                    let stale_candidate = fail.virgin
                        && matches!(
                            fail.error.kind(),
                            std::io::ErrorKind::UnexpectedEof
                                | std::io::ErrorKind::BrokenPipe
                                | std::io::ErrorKind::ConnectionReset
                                | std::io::ErrorKind::ConnectionAborted
                                | std::io::ErrorKind::WriteZero
                        );
                    if reused && stale_candidate {
                        reused = false;
                        stream = self.connect(&endpoint.base, timeout).map_err(|e| {
                            AttemptError::Retryable(LlmError::Transport(format!(
                                "reconnect failed: {e}"
                            )))
                        })?;
                        continue;
                    }
                    let message = match fail.error.kind() {
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                            format!("request timed out after {timeout:?}")
                        }
                        _ => fail.error.to_string(),
                    };
                    return Err(AttemptError::Retryable(LlmError::Transport(message)));
                }
            }
        }
    }

    /// Writes one request on `stream` and reads one response, classifying
    /// HTTP-level outcomes. Returns `(outcome, reusable)` where `reusable`
    /// says the connection was left in a clean framed state and may be
    /// parked; `Err` is a socket-level failure only.
    #[allow(clippy::type_complexity)]
    fn attempt_on(
        &self,
        endpoint: &Endpoint,
        stream: &mut TcpStream,
        body: &str,
        request: &CompletionRequest,
        timeout: Duration,
    ) -> Result<(Result<Completion, AttemptError>, bool), IoFail> {
        let started = Instant::now();
        let path = endpoint.base.path("/chat/completions");
        let bearer = self.config.api_key.as_ref().map(|k| k.expose());
        write_post(stream, &endpoint.base.host, &path, bearer, body).map_err(|error| IoFail {
            error,
            virgin: true,
        })?;
        // The deadline bounds the whole response, not each read: a server
        // dripping one byte per almost-timeout cannot stretch the round
        // trip past `timeout`.
        let mut reader = WireReader::with_deadline(started + timeout);
        let head = reader.read_head(stream).map_err(|error| IoFail {
            error,
            virgin: reader.received() == 0,
        })?;
        let framing = BodyFraming::of(&head);
        let mid_body = |error| IoFail {
            error,
            virgin: false,
        };
        let is_sse = head
            .header("content-type")
            .is_some_and(|v| v.to_ascii_lowercase().contains("text/event-stream"));
        if head.status == 200 && is_sse {
            let mut decode_span = askit_obs::span(request.options.trace, "sse_decode");
            let mut accumulator = StreamAccumulator::new();
            match framing {
                BodyFraming::Chunked => reader
                    .read_chunked_body(stream, |bytes| accumulator.feed(bytes))
                    .map_err(mid_body)?,
                BodyFraming::Length(n) => {
                    let bytes = reader.read_exact_body(stream, n).map_err(mid_body)?;
                    accumulator.feed(&bytes);
                }
                BodyFraming::UntilClose => {
                    let bytes = reader.read_to_close(stream).map_err(mid_body)?;
                    accumulator.feed(&bytes);
                }
            }
            let reusable =
                !head.wants_close() && framing != BodyFraming::UntilClose && !reader.has_surplus();
            let outcome = accumulator
                .finish(request, started.elapsed())
                .map_err(|e| AttemptError::Retryable(LlmError::Transport(e)));
            decode_span.set_arg("ok", outcome.is_ok());
            return Ok((outcome, reusable));
        }
        // Non-SSE: collect the whole body (success and failure statuses
        // both carry JSON or text bodies).
        let bytes = match framing {
            BodyFraming::Length(n) => reader.read_exact_body(stream, n).map_err(mid_body)?,
            BodyFraming::Chunked => {
                let mut collected = Vec::new();
                reader
                    .read_chunked_body(stream, |bytes| collected.extend_from_slice(bytes))
                    .map_err(mid_body)?;
                collected
            }
            BodyFraming::UntilClose => reader.read_to_close(stream).map_err(mid_body)?,
        };
        let reusable =
            !head.wants_close() && framing != BodyFraming::UntilClose && !reader.has_surplus();
        let text = String::from_utf8_lossy(&bytes);
        let outcome = match head.status {
            200 => decode_response(request, &text, started.elapsed()).map_err(|e| {
                AttemptError::Retryable(LlmError::Transport(format!("malformed response: {e}")))
            }),
            status => {
                let error = LlmError::Http {
                    status,
                    message: snippet(&text),
                };
                // 429 is special-cased for its Retry-After pacing; every
                // other status defers to the shared [`LlmError::is_retryable`]
                // classification, so the client and the engine's retry
                // paths can never disagree about what is worth retrying.
                Err(match status {
                    429 => AttemptError::Throttled {
                        retry_after: head.retry_after(),
                        error,
                    },
                    _ if error.is_retryable() => AttemptError::Retryable(error),
                    _ => AttemptError::Fatal(error),
                })
            }
        };
        Ok((outcome, reusable))
    }

    /// Lands a speculative flight: the result stays registered (bounded)
    /// until a foreground submission claims it — unless the speculation
    /// was rejected meanwhile, in which case it is dropped on the floor.
    fn land_speculation(
        &self,
        key: u64,
        flight: &Arc<Flight>,
        result: Result<Completion, LlmError>,
    ) {
        flight.settle(result);
        if flight.rejected.load(Ordering::Relaxed) {
            self.unregister(key, flight);
            return;
        }
        let mut landed = lock(&self.landed);
        landed.push_back((key, Arc::downgrade(flight)));
        while landed.len() > LANDED_SPECULATION_CAP {
            let Some((old_key, old_flight)) = landed.pop_front() else {
                break;
            };
            drop(landed);
            let mut map = lock(&self.inflight);
            // Evict only the *exact* flight this deque entry landed: a
            // stale entry (its flight long claimed, the key since re-flown
            // by a fresh speculation) must not cost the fresh result.
            let evictable = match (map.get(&old_key), old_flight.upgrade()) {
                (Some(current), Some(old)) => {
                    Arc::ptr_eq(current, &old) && current.speculative && current.is_settled()
                }
                _ => false,
            };
            if evictable {
                map.remove(&old_key);
            }
            drop(map);
            landed = lock(&self.landed);
        }
    }

    /// Drops the speculative flight registered for `key` (when its
    /// identity matches `request` — a fingerprint-colliding stranger is
    /// left alone): a settled one is unregistered immediately, a
    /// still-flying one is marked rejected so it lands on the floor.
    /// Foreground flights are also left alone — they are momentary (their
    /// leader unregisters on completion) and their waiters asked for
    /// exactly that result.
    fn reject_key(&self, key: u64, request: &CompletionRequest) {
        let map = lock(&self.inflight);
        let Some(flight) = map.get(&key) else {
            return;
        };
        if !flight.speculative || !flight.request.same_identity(request) {
            return;
        }
        let flight = Arc::clone(flight);
        drop(map);
        flight.rejected.store(true, Ordering::Relaxed);
        if flight.is_settled() {
            self.unregister(key, &flight);
        }
    }
}

impl HttpLlm {
    fn key_of(request: &CompletionRequest, sample: u64) -> u64 {
        request.fingerprint(sample)
    }
}

impl LanguageModel for HttpLlm {
    fn complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        self.complete_tagged(request, 0)
    }

    fn complete_tagged(
        &self,
        request: &CompletionRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        Inner::submit(&self.inner, Self::key_of(request, sample), request)
    }

    fn complete_prepared(
        &self,
        prepared: &PreparedRequest,
        sample: u64,
    ) -> Result<Completion, LlmError> {
        Inner::submit(
            &self.inner,
            prepared.fingerprint(sample),
            prepared.request(),
        )
    }

    /// Accepts the speculation by launching the wire round trip on a
    /// background thread. The flight stays registered until a foreground
    /// submission of the same turn claims it (in-flight join or landed
    /// pickup) or [`reject_completion`](LanguageModel::reject_completion)
    /// withdraws it.
    fn prefetch(&self, prepared: &PreparedRequest) -> bool {
        let key = prepared.fingerprint(0);
        let flight = {
            let mut map = lock(&self.inner.inflight);
            if map.contains_key(&key) {
                return true; // already in flight (or landed): paid for
            }
            let flight = Arc::new(Flight::new(true, prepared.request().clone()));
            map.insert(key, Arc::clone(&flight));
            flight
        };
        let inner = Arc::clone(&self.inner);
        let prepared = prepared.clone();
        let worker_flight = Arc::clone(&flight);
        let spawned = std::thread::Builder::new()
            .name("askit-http-prefetch".to_owned())
            .spawn(move || {
                let result = Inner::execute(&inner, key, prepared.request());
                inner.land_speculation(key, &worker_flight, result);
            });
        match spawned {
            Ok(handle) => {
                self.inner
                    .counters
                    .prefetches
                    .fetch_add(1, Ordering::Relaxed);
                lock(&self.spec_threads).push(handle);
                self.reap_spec_threads();
                true
            }
            Err(_) => {
                // Could not spawn: withdraw the registration so foreground
                // submissions do not wait on a flight nobody is flying.
                let mut map = lock(&self.inner.inflight);
                if map.get(&key).is_some_and(|f| Arc::ptr_eq(f, &flight)) {
                    map.remove(&key);
                }
                false
            }
        }
    }

    fn complete_batch(&self, requests: &[CompletionRequest]) -> Vec<Result<Completion, LlmError>> {
        // Fan the batch out in bounded waves of scoped threads: a network
        // round trip is latency-bound, so even a modest overlap beats
        // serial submission; the token bucket still paces admission.
        const WAVE: usize = 16;
        let mut results = Vec::with_capacity(requests.len());
        for wave in requests.chunks(WAVE) {
            let wave_results: Vec<Result<Completion, LlmError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|request| scope.spawn(move || self.complete_tagged(request, 0)))
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| match handle.join() {
                        Ok(result) => result,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            results.extend(wave_results);
        }
        results
    }

    fn reject_completion(&self, request: &CompletionRequest, sample: u64) {
        self.inner
            .reject_key(Self::key_of(request, sample), request);
    }

    fn reject_prepared(&self, prepared: &PreparedRequest, sample: u64) {
        self.inner
            .reject_key(prepared.fingerprint(sample), prepared.request());
    }

    /// The HTTP backend pushes wire-level load signals: every attempt's
    /// outcome is reported, including 429s and timeouts the retry loop
    /// absorbs before any caller sees them. Subscribers must therefore not
    /// also classify returned errors (they would double-count).
    ///
    /// On subscription the observer immediately receives one
    /// [`LoadSignal::Breaker`] per configured endpoint with its current
    /// state, so it knows the full endpoint set without waiting for a
    /// transition (the contract [`LoadSignal::Breaker`] documents).
    fn subscribe_load(&self, observer: Arc<dyn LoadObserver>) -> bool {
        for (index, endpoint) in self.inner.endpoints.iter().enumerate() {
            observer.observed(
                ModelChoice::Default,
                LoadSignal::Breaker {
                    endpoint: index,
                    state: endpoint.breaker.state(),
                },
            );
        }
        lock(&self.inner.observers).push(observer);
        true
    }

    fn model_name(&self) -> &str {
        &self.inner.display_name
    }
}

/// Truncates a response body for inclusion in an error message.
fn snippet(text: &str) -> String {
    let trimmed = text.trim();
    if trimmed.len() <= BODY_SNIPPET_LIMIT {
        return trimmed.to_owned();
    }
    let mut cut = BODY_SNIPPET_LIMIT;
    while !trimmed.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &trimmed[..cut])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_base_urls_fail_construction() {
        let err = HttpLlm::new(HttpLlmConfig::new("https://api.openai.com/v1")).unwrap_err();
        assert!(matches!(err, LlmError::InvalidRequest(_)), "{err}");
        assert!(HttpLlm::new(HttpLlmConfig::new("not a url")).is_err());
    }

    #[test]
    fn snippets_truncate_on_char_boundaries() {
        assert_eq!(snippet("short"), "short");
        let long = "é".repeat(300);
        let cut = snippet(&long);
        assert!(cut.len() <= BODY_SNIPPET_LIMIT + '…'.len_utf8());
        assert!(cut.ends_with('…'));
    }

    #[test]
    fn model_name_names_the_wire_model() {
        let llm = HttpLlm::new(HttpLlmConfig::new("http://127.0.0.1:9/v1")).unwrap();
        assert_eq!(llm.model_name(), "http:gpt-4");
    }
}
