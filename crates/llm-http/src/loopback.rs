//! [`LoopbackServer`]: an in-process OpenAI-compatible test server.
//!
//! Binds `127.0.0.1:0` with a plain [`std::net::TcpListener`], so the
//! whole HTTP subsystem is CI-testable with zero external dependencies and
//! zero real network egress. Responses are **scripted**: the test enqueues
//! [`Reply`] values consumed in request-arrival order, with a configurable
//! default handler for everything past the script. Fault injection —
//! 429 bursts, torn frames, mid-stream disconnects — is just another kind
//! of scripted reply.
//!
//! The server records every request it parses ([`RecordedRequest`]), which
//! is how tests assert things like "the warm run issued **zero** HTTP
//! requests" or "the Authorization header carried the key".
//!
//! # Fault schedules
//!
//! Beyond the FIFO script, a server carries **fault windows**
//! ([`FaultWindow`]): deterministic rules keyed on the request *ordinal*
//! (the how-many-th request this server has parsed), so a chaos run can
//! declare "requests 10–19 hit a blackout, 30–39 hit a 429 storm" and
//! replay it bit-identically on every CI run — no clocks, no randomness.
//! Resolution order per request: explicit script entries first, then the
//! first matching fault window, then the default handler.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use askit_json::Json;
use askit_llm::tokenizer;

use crate::sse::encode_data;
use crate::wire::{
    write_chunk, write_json_response, write_last_chunk, write_response_head,
    write_sse_response_head,
};
use crate::{find_subsequence, fnv1a, lock};

/// One scripted server behavior.
#[derive(Debug, Clone)]
pub enum Reply {
    /// 200 with a well-formed chat completion carrying this content
    /// (Content-Length framing, usage included).
    Text(String),
    /// 200 streamed as Server-Sent Events over chunked transfer encoding,
    /// the content split into several `delta` events and the chunk
    /// boundaries deliberately torn mid-frame (and mid-UTF-8 where the
    /// text allows it).
    Sse(String),
    /// An error status with an optional `Retry-After` (seconds) and body.
    Status {
        /// HTTP status code to send.
        status: u16,
        /// `Retry-After` header value, in seconds.
        retry_after: Option<u64>,
        /// Response body.
        body: String,
    },
    /// 200 that *promises* a longer body than it sends, then closes: a
    /// torn frame mid-body.
    TornBody(String),
    /// Reads the request, then closes the connection without answering.
    Disconnect,
    /// SSE stream cut after the first delta, before `data: [DONE]`.
    SseTruncated(String),
    /// 200 whose body *drips*: one byte per `delay_ms`, each write inside
    /// any plausible per-read socket timeout — the fault a per-round-trip
    /// deadline exists to catch.
    Drip {
        /// Completion content (served with correct Content-Length).
        content: String,
        /// Pause between single-byte writes, in milliseconds.
        delay_ms: u64,
    },
    /// Like [`Reply::Drip`], but the dripped content is whatever the
    /// default handler would have answered — the *correct* completion,
    /// served maliciously slowly (used by [`Fault::SlowLoris`]).
    DripDefault {
        /// Pause between single-byte writes, in milliseconds.
        delay_ms: u64,
    },
    /// The default handler's answer, cut mid-stream: truncated SSE for
    /// streamed requests, a torn Content-Length body otherwise (used by
    /// [`Fault::MidStreamCut`]).
    CutDefault,
}

/// One deterministic fault class a [`FaultWindow`] can inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Endpoint blackout: read the request, close without a byte of
    /// response (the client sees a torn connection — the closest a bound
    /// listener can get to a dead host).
    Blackout,
    /// 429 storm, with an optional `Retry-After` (seconds).
    RateLimitStorm {
        /// `Retry-After` header value, in seconds, when present.
        retry_after: Option<u64>,
    },
    /// 5xx burst with the given status.
    ServerError {
        /// Status code to answer with (e.g. 500, 503).
        status: u16,
    },
    /// Slow-loris: a correct response dripped one byte per `delay_ms` —
    /// each write inside any plausible per-read timeout, so only a whole
    /// round-trip deadline catches it.
    SlowLoris {
        /// Pause between single-byte writes, in milliseconds.
        delay_ms: u64,
    },
    /// Mid-stream disconnect: an SSE response cut before `data: [DONE]`
    /// (non-streamed requests get a torn Content-Length body instead).
    MidStreamCut,
    /// Flapping: odd ordinals inside the window black out, even ordinals
    /// answer normally — the up-down-up endpoint that defeats naive
    /// "mark dead forever" failover.
    Flapping,
}

/// Requests whose ordinal falls in `[from_hit, to_hit)` suffer `fault`.
/// Ordinals count every request this server parses, starting at 0.
#[derive(Debug, Clone)]
pub struct FaultWindow {
    /// First affected ordinal.
    pub from_hit: usize,
    /// First ordinal *past* the window.
    pub to_hit: usize,
    /// What happens inside the window.
    pub fault: Fault,
}

impl FaultWindow {
    /// Resolves this window for ordinal `hit`: `None` when the ordinal is
    /// outside the window or the fault spares it (flapping, even hits).
    fn reply_for(&self, hit: usize) -> Option<Reply> {
        if hit < self.from_hit || hit >= self.to_hit {
            return None;
        }
        match &self.fault {
            Fault::Blackout => Some(Reply::Disconnect),
            Fault::RateLimitStorm { retry_after } => Some(Reply::Status {
                status: 429,
                retry_after: *retry_after,
                body: r#"{"error":{"message":"scripted rate-limit storm"}}"#.to_owned(),
            }),
            Fault::ServerError { status } => Some(Reply::Status {
                status: *status,
                retry_after: None,
                body: r#"{"error":{"message":"scripted server error"}}"#.to_owned(),
            }),
            Fault::SlowLoris { delay_ms } => Some(Reply::DripDefault {
                delay_ms: *delay_ms,
            }),
            Fault::MidStreamCut => Some(Reply::CutDefault),
            Fault::Flapping => (hit % 2 == 1).then_some(Reply::Disconnect),
        }
    }
}

/// One request as the server parsed it.
#[derive(Debug, Clone)]
pub struct RecordedRequest {
    /// Request path (e.g. `/v1/chat/completions`).
    pub path: String,
    /// The `Authorization` header, verbatim, when present.
    pub authorization: Option<String>,
    /// The `model` field of the JSON body, when it parsed.
    pub model: Option<String>,
    /// The last `user` message content, when the body parsed.
    pub last_user: Option<String>,
    /// Whether the body asked for a streamed response.
    pub stream: bool,
    /// The raw request body.
    pub body: String,
}

type Handler = dyn Fn(&RecordedRequest) -> Reply + Send + Sync;

struct ServerState {
    script: Mutex<VecDeque<Reply>>,
    schedule: Mutex<Vec<FaultWindow>>,
    default_handler: Mutex<Arc<Handler>>,
    requests: Mutex<Vec<RecordedRequest>>,
    /// Requests admitted to reply resolution so far — the ordinal fault
    /// windows key on. Separate from `requests` so the ordinal is taken
    /// atomically even when connections race.
    ordinal: AtomicUsize,
    connections: AtomicUsize,
    shutdown: AtomicBool,
}

/// The loopback test server. Dropping it shuts the listener down and joins
/// every connection thread.
pub struct LoopbackServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl LoopbackServer {
    /// Binds `127.0.0.1:0` and starts serving. The default handler echoes
    /// a deterministic completion derived from the request's last user
    /// message (`echo:<fnv of prompt>`), which makes cache-identity tests
    /// independent of scripting order.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the loopback listener.
    pub fn start() -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            script: Mutex::new(VecDeque::new()),
            schedule: Mutex::new(Vec::new()),
            default_handler: Mutex::new(Arc::new(|request: &RecordedRequest| {
                let prompt = request.last_user.as_deref().unwrap_or("");
                Reply::Text(format!("echo:{:016x}", fnv1a(prompt.as_bytes())))
            })),
            requests: Mutex::new(Vec::new()),
            ordinal: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("askit-loopback-accept".to_owned())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                for incoming in listener.incoming() {
                    if accept_state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = incoming else { continue };
                    accept_state.connections.fetch_add(1, Ordering::Relaxed);
                    let conn_state = Arc::clone(&accept_state);
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("askit-loopback-conn".to_owned())
                        .spawn(move || serve_connection(conn, &conn_state))
                    {
                        workers.push(handle);
                    }
                    workers.retain(|w| !w.is_finished());
                }
                for worker in workers {
                    let _ = worker.join();
                }
            })?;
        Ok(LoopbackServer {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The `http://…/v1` base URL clients should use.
    pub fn api_base(&self) -> String {
        format!("http://{}/v1", self.addr)
    }

    /// Enqueues one scripted reply (consumed in request-arrival order,
    /// across all connections).
    pub fn script(&self, reply: Reply) {
        lock(&self.state.script).push_back(reply);
    }

    /// Enqueues several scripted replies.
    pub fn script_all(&self, replies: impl IntoIterator<Item = Reply>) {
        let mut script = lock(&self.state.script);
        script.extend(replies);
    }

    /// Adds one fault window to the schedule (consulted, in insertion
    /// order, for requests the FIFO script does not cover; the first
    /// window claiming the ordinal wins).
    pub fn schedule_fault(&self, window: FaultWindow) {
        lock(&self.state.schedule).push(window);
    }

    /// Removes every scheduled fault window.
    pub fn clear_fault_schedule(&self) {
        lock(&self.state.schedule).clear();
    }

    /// Replaces the default handler used when the script is empty.
    pub fn set_default_handler(
        &self,
        handler: impl Fn(&RecordedRequest) -> Reply + Send + Sync + 'static,
    ) {
        *lock(&self.state.default_handler) = Arc::new(handler);
    }

    /// Every request served so far, in arrival order.
    pub fn requests(&self) -> Vec<RecordedRequest> {
        lock(&self.state.requests).clone()
    }

    /// Number of requests served so far.
    pub fn hits(&self) -> usize {
        lock(&self.state.requests).len()
    }

    /// Number of TCP connections accepted so far (vs [`hits`] shows
    /// keep-alive reuse).
    ///
    /// [`hits`]: LoopbackServer::hits
    pub fn connections(&self) -> usize {
        self.state.connections.load(Ordering::Relaxed)
    }
}

impl Drop for LoopbackServer {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Serves one connection: a keep-alive loop of parse → record → reply,
/// ending on EOF, parse failure, or a connection-closing reply.
fn serve_connection(mut conn: TcpStream, state: &Arc<ServerState>) {
    // A generous read timeout so a shutdown can't strand the thread.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(30)));
    let mut pending: Vec<u8> = Vec::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(request) = read_request(&mut conn, &mut pending) else {
            return;
        };
        let hit = state.ordinal.fetch_add(1, Ordering::SeqCst);
        // Resolution order: explicit script, then the fault schedule,
        // then the default handler.
        let reply = lock(&state.script)
            .pop_front()
            .or_else(|| {
                lock(&state.schedule)
                    .iter()
                    .find_map(|window| window.reply_for(hit))
            })
            .unwrap_or_else(|| {
                let handler = Arc::clone(&lock(&state.default_handler));
                handler(&request)
            });
        // The *Default replies borrow their payload from the default
        // handler: the correct answer, delivered pathologically.
        let reply = match reply {
            Reply::DripDefault { delay_ms } => Reply::Drip {
                content: default_content(state, &request),
                delay_ms,
            },
            Reply::CutDefault => {
                let content = default_content(state, &request);
                if request.stream {
                    Reply::SseTruncated(content)
                } else {
                    Reply::TornBody(content)
                }
            }
            other => other,
        };
        lock(&state.requests).push(request);
        if !write_reply(&mut conn, &reply) {
            return; // the reply closes the connection (by design or error)
        }
    }
}

/// Reads one HTTP request (head + `Content-Length` body) from `conn`.
/// `pending` carries surplus bytes between keep-alive requests.
fn read_request(conn: &mut TcpStream, pending: &mut Vec<u8>) -> Option<RecordedRequest> {
    let head_end = loop {
        if let Some(pos) = find_subsequence(pending, b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
        }
    };
    let head_bytes: Vec<u8> = pending.drain(..head_end + 4).collect();
    let head = String::from_utf8_lossy(&head_bytes);
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let path = request_line.split(' ').nth(1).unwrap_or("/").to_owned();
    let mut authorization = None;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("authorization") {
                authorization = Some(value.to_owned());
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            }
        }
    }
    while pending.len() < content_length {
        let mut chunk = [0u8; 4096];
        match conn.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
        }
    }
    let body_bytes: Vec<u8> = pending.drain(..content_length).collect();
    let body = String::from_utf8_lossy(&body_bytes).into_owned();
    let parsed = Json::parse(&body).ok();
    let model = parsed
        .as_ref()
        .and_then(|j| j.get_key("model"))
        .and_then(Json::as_str)
        .map(str::to_owned);
    let stream = parsed
        .as_ref()
        .and_then(|j| j.get_key("stream"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let last_user = parsed
        .as_ref()
        .and_then(|j| j.get_key("messages"))
        .and_then(Json::as_array)
        .and_then(|messages| {
            messages
                .iter()
                .rev()
                .find(|m| m.get_key("role").and_then(Json::as_str) == Some("user"))
        })
        .and_then(|m| m.get_key("content"))
        .and_then(Json::as_str)
        .map(str::to_owned);
    Some(RecordedRequest {
        path,
        authorization,
        model,
        last_user,
        stream,
        body,
    })
}

/// The text content the default handler would answer `request` with (used
/// by the `*Default` replies; a non-text default handler contributes an
/// empty payload — the fault is the point, not the content).
fn default_content(state: &Arc<ServerState>, request: &RecordedRequest) -> String {
    let handler = Arc::clone(&lock(&state.default_handler));
    match handler(request) {
        Reply::Text(content) | Reply::Sse(content) => content,
        _ => String::new(),
    }
}

/// A well-formed chat-completion body for `content`.
fn completion_body(content: &str) -> String {
    let completion_tokens = tokenizer::count_tokens(content);
    format!(
        r#"{{"id":"cmpl-loopback","object":"chat.completion","choices":[{{"index":0,"message":{{"role":"assistant","content":{}}},"finish_reason":"stop"}}],"usage":{{"prompt_tokens":7,"completion_tokens":{completion_tokens},"total_tokens":{}}}}}"#,
        Json::Str(content.to_owned()).to_compact_string(),
        7 + completion_tokens,
    )
}

/// Writes `reply`; returns whether the connection may serve another
/// request afterwards. All well-formed responses go through the shared
/// [`crate::wire`] response writers — the same implementation `askit-serve`
/// answers with — so the wire format the client parses in tests is exactly
/// the format the serving path produces. Only the deliberately *torn*
/// replies format by hand, since tearing a frame is the point.
fn write_reply(conn: &mut TcpStream, reply: &Reply) -> bool {
    match reply {
        Reply::Text(content) => {
            write_json_response(conn, 200, &completion_body(content), &[]).is_ok()
        }
        Reply::Status {
            status,
            retry_after,
            body,
        } => {
            let extra: Vec<(&str, String)> = retry_after
                .iter()
                .map(|seconds| ("Retry-After", seconds.to_string()))
                .collect();
            write_json_response(conn, *status, body, &extra).is_ok()
        }
        Reply::TornBody(content) => {
            let body = completion_body(content);
            // Promise the full body, deliver half, close: a torn frame.
            let headers = [
                ("Content-Type", "application/json".to_owned()),
                ("Content-Length", body.len().to_string()),
            ];
            let half = &body.as_bytes()[..body.len() / 2];
            let _ = write_response_head(conn, 200, &headers);
            let _ = conn.write_all(half);
            let _ = conn.flush();
            false
        }
        Reply::Disconnect => false,
        Reply::Drip { content, delay_ms } => {
            let body = completion_body(content);
            let headers = [
                ("Content-Type", "application/json".to_owned()),
                ("Content-Length", body.len().to_string()),
            ];
            if write_response_head(conn, 200, &headers).is_err() {
                return false;
            }
            for &byte in body.as_bytes() {
                std::thread::sleep(Duration::from_millis(*delay_ms));
                if conn.write_all(&[byte]).is_err() || conn.flush().is_err() {
                    // The client gave up (deadline): stop dripping.
                    return false;
                }
            }
            true
        }
        Reply::Sse(content) => write_sse(conn, content, true),
        Reply::SseTruncated(content) => {
            write_sse(conn, content, false);
            false
        }
        // Resolved into concrete replies by `serve_connection` before this
        // point; a raw occurrence fails closed as a disconnect.
        Reply::DripDefault { .. } | Reply::CutDefault => false,
    }
}

/// Streams `content` as SSE deltas over chunked transfer encoding. The
/// event frames are deliberately split at awkward byte positions (every
/// HTTP chunk is at most 7 bytes, so frames tear mid-line and multi-byte
/// UTF-8 scalars tear mid-sequence). With `complete`, ends with
/// `data: [DONE]` and the terminal chunk; without, cuts off mid-stream.
fn write_sse(conn: &mut TcpStream, content: &str, complete: bool) -> bool {
    if write_sse_response_head(conn, &[]).is_err() {
        return false;
    }
    // Split the content into a few deltas on char boundaries.
    let chars: Vec<char> = content.chars().collect();
    let step = (chars.len() / 3).max(1);
    let mut payload: Vec<u8> = Vec::new();
    for piece in chars.chunks(step) {
        let delta: String = piece.iter().collect();
        payload.extend_from_slice(&encode_data(&format!(
            "{{\"choices\":[{{\"index\":0,\"delta\":{{\"content\":{}}}}}]}}",
            Json::Str(delta).to_compact_string()
        )));
    }
    if complete {
        payload.extend_from_slice(&encode_data("[DONE]"));
    }
    // Torn chunking: at most 7 payload bytes per HTTP chunk.
    for piece in payload.chunks(7) {
        if write_chunk(conn, piece).is_err() {
            return false;
        }
    }
    if !complete {
        // Mid-stream disconnect: no terminal chunk, no [DONE].
        let _ = conn.flush();
        return false;
    }
    write_last_chunk(conn).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_handler_is_deterministic_per_prompt() {
        let request = RecordedRequest {
            path: "/v1/chat/completions".into(),
            authorization: None,
            model: Some("gpt-4".into()),
            last_user: Some("What is 6 times 7?".into()),
            stream: false,
            body: String::new(),
        };
        let server = LoopbackServer::start().unwrap();
        let handler = Arc::clone(&lock(&server.state.default_handler));
        let (Reply::Text(a), Reply::Text(b)) = (handler(&request), handler(&request)) else {
            panic!("default handler must answer with text");
        };
        assert_eq!(a, b);
        assert!(a.starts_with("echo:"));
    }

    #[test]
    fn fault_windows_claim_only_their_ordinals() {
        let storm = FaultWindow {
            from_hit: 2,
            to_hit: 4,
            fault: Fault::RateLimitStorm {
                retry_after: Some(1),
            },
        };
        assert!(storm.reply_for(1).is_none());
        assert!(matches!(
            storm.reply_for(2),
            Some(Reply::Status { status: 429, .. })
        ));
        assert!(matches!(
            storm.reply_for(3),
            Some(Reply::Status { status: 429, .. })
        ));
        assert!(storm.reply_for(4).is_none());

        let flapping = FaultWindow {
            from_hit: 0,
            to_hit: 10,
            fault: Fault::Flapping,
        };
        assert!(flapping.reply_for(0).is_none(), "even ordinals answer");
        assert!(matches!(flapping.reply_for(1), Some(Reply::Disconnect)));
        assert!(flapping.reply_for(8).is_none());
        assert!(matches!(flapping.reply_for(9), Some(Reply::Disconnect)));

        let blackout = FaultWindow {
            from_hit: 0,
            to_hit: 1,
            fault: Fault::Blackout,
        };
        assert!(matches!(blackout.reply_for(0), Some(Reply::Disconnect)));
        let loris = FaultWindow {
            from_hit: 0,
            to_hit: 1,
            fault: Fault::SlowLoris { delay_ms: 5 },
        };
        assert!(matches!(
            loris.reply_for(0),
            Some(Reply::DripDefault { delay_ms: 5 })
        ));
        let cut = FaultWindow {
            from_hit: 0,
            to_hit: 1,
            fault: Fault::MidStreamCut,
        };
        assert!(matches!(cut.reply_for(0), Some(Reply::CutDefault)));
    }

    #[test]
    fn completion_bodies_parse() {
        let body = completion_body("hello \"world\"");
        let json = Json::parse(&body).unwrap();
        assert_eq!(
            json.pointer("/choices/0/message/content")
                .and_then(Json::as_str),
            Some("hello \"world\"")
        );
        assert!(json.pointer("/usage/completion_tokens").is_some());
    }
}
