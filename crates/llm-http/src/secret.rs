//! Credential handling that cannot leak by accident.

use std::fmt;

/// An API key that never appears in diagnostics.
///
/// The wrapped secret reaches exactly one place: the `Authorization` header
/// written to the wire by the HTTP client. Every formatting path —
/// [`fmt::Debug`], error construction, request recording — sees only the
/// placeholder, so a key can sit inside an otherwise-`derive(Debug)`
/// configuration without poisoning logs, panics, or persisted reports.
/// There is deliberately no [`std::fmt::Display`] implementation.
#[derive(Clone, PartialEq, Eq)]
pub struct ApiKey(String);

impl ApiKey {
    /// Wraps a secret, trimming surrounding whitespace (a trailing newline
    /// from `$(cat key-file)` would otherwise corrupt the header).
    pub fn new(secret: impl Into<String>) -> Self {
        ApiKey(secret.into().trim().to_owned())
    }

    /// The secret itself — crate-private, used only to write the
    /// `Authorization` header.
    pub(crate) fn expose(&self) -> &str {
        &self.0
    }

    /// Whether the key is empty (treated as "no credential").
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for ApiKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ApiKey(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_never_shows_the_secret() {
        let key = ApiKey::new("sk-super-secret-123");
        let shown = format!("{key:?}");
        assert!(!shown.contains("super-secret"), "leaked: {shown}");
        assert!(shown.contains("redacted"));
        assert_eq!(key.expose(), "sk-super-secret-123");
    }

    #[test]
    fn keys_are_trimmed() {
        let key = ApiKey::new("  sk-abc\n");
        assert_eq!(key.expose(), "sk-abc");
        assert!(!key.is_empty());
        assert!(ApiKey::new("  \n").is_empty());
    }
}
