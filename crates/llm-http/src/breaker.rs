//! Per-endpoint circuit breaker: **closed → open → half-open → closed**.
//!
//! Each service endpoint (primary or fallback) gets one [`CircuitBreaker`].
//! Consecutive endpoint-health failures (5xx, transport faults — *not*
//! 429s, which prove the endpoint alive) trip the breaker **open**; while
//! open, [`CircuitBreaker::admit`] rejects traffic so the retry loop fails
//! over instead of hammering a dead endpoint. After
//! [`BreakerConfig::cooldown`] the breaker turns **half-open** and admits
//! exactly one *trial probe*; the probe's outcome either closes the breaker
//! (service recovered) or re-opens it for another cooldown.
//!
//! Every method that can change the state returns the new [`BreakerState`]
//! when a transition happened, so the client can export transitions as
//! [`askit_llm::LoadSignal::Breaker`] signals without diffing. All timing
//! flows through explicit `now: Instant` parameters — tests drive the
//! clock; nothing here reads it.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use askit_llm::BreakerState;

use crate::lock;

/// Thresholds for one endpoint's [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive endpoint-health failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker refuses traffic before granting a single
    /// half-open trial probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// What the breaker says about one prospective request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: proceed normally.
    Allowed,
    /// Half-open: proceed as the *single* trial probe. The caller must
    /// follow through with [`CircuitBreaker::record_success`] or
    /// [`CircuitBreaker::record_failure`] — the probe slot stays taken
    /// until one of them lands.
    Probe,
    /// Open (cooling down), or half-open with the probe already in flight:
    /// do not dispatch here.
    Rejected,
}

enum State {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen { probing: bool },
}

/// One endpoint's failure-detection state machine. See the module docs.
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("state", &self.state())
            .field("config", &self.config)
            .finish()
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
        }
    }

    /// The externally visible state right now. An open breaker whose
    /// cooldown has lapsed still reports [`BreakerState::Open`] — the
    /// half-open transition happens when [`admit`](Self::admit) grants the
    /// probe, not silently on a clock read.
    pub fn state(&self) -> BreakerState {
        match *lock(&self.state) {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Asks to dispatch one request. Returns the admission plus the new
    /// state when this call itself transitioned the machine (open breaker
    /// past its cooldown → half-open, probe granted).
    pub fn admit(&self, now: Instant) -> (Admission, Option<BreakerState>) {
        let mut state = lock(&self.state);
        match &mut *state {
            State::Closed { .. } => (Admission::Allowed, None),
            State::Open { since } => {
                if now.saturating_duration_since(*since) < self.config.cooldown {
                    (Admission::Rejected, None)
                } else {
                    *state = State::HalfOpen { probing: true };
                    (Admission::Probe, Some(BreakerState::HalfOpen))
                }
            }
            State::HalfOpen { probing } => {
                if *probing {
                    (Admission::Rejected, None)
                } else {
                    *probing = true;
                    (Admission::Probe, None)
                }
            }
        }
    }

    /// Whether an [`admit`](Self::admit) call at `now` would dispatch —
    /// without mutating anything (no probe slot is consumed). Used to
    /// decide failover targets before committing to one.
    pub fn would_admit(&self, now: Instant) -> bool {
        match &*lock(&self.state) {
            State::Closed { .. } => true,
            State::Open { since } => now.saturating_duration_since(*since) >= self.config.cooldown,
            State::HalfOpen { probing } => !*probing,
        }
    }

    /// Records a healthy response from the endpoint. Any success — probe
    /// or straggler from before the trip — closes the breaker: good news
    /// is good news. Returns the new state on transition.
    pub fn record_success(&self) -> Option<BreakerState> {
        let mut state = lock(&self.state);
        let was_closed = matches!(*state, State::Closed { .. });
        *state = State::Closed {
            consecutive_failures: 0,
        };
        (!was_closed).then_some(BreakerState::Closed)
    }

    /// Records an endpoint-health failure (5xx or transport fault).
    /// Reaching the consecutive-failure threshold — or failing the
    /// half-open probe — opens the breaker for a fresh cooldown from
    /// `now`. Returns the new state on transition.
    pub fn record_failure(&self, now: Instant) -> Option<BreakerState> {
        let mut state = lock(&self.state);
        match &mut *state {
            State::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.config.failure_threshold {
                    *state = State::Open { since: now };
                    Some(BreakerState::Open)
                } else {
                    None
                }
            }
            // A failure while already open (a straggler attempt dispatched
            // before the trip) changes nothing — the cooldown keeps running
            // from the original trip, so probes are never starved by
            // long-tail failures.
            State::Open { .. } => None,
            State::HalfOpen { .. } => {
                *state = State::Open { since: now };
                Some(BreakerState::Open)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown,
        })
    }

    #[test]
    fn full_lifecycle_closed_open_half_open_closed() {
        let b = breaker(3, Duration::from_secs(5));
        let t0 = Instant::now();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(t0), (Admission::Allowed, None));

        // Two failures: still closed (threshold is 3).
        assert_eq!(b.record_failure(t0), None);
        assert_eq!(b.record_failure(t0), None);
        assert_eq!(b.state(), BreakerState::Closed);
        // Third trips it open.
        assert_eq!(b.record_failure(t0), Some(BreakerState::Open));
        assert_eq!(b.state(), BreakerState::Open);

        // Open rejects until the cooldown lapses.
        assert_eq!(
            b.admit(t0 + Duration::from_secs(4)),
            (Admission::Rejected, None)
        );
        assert!(!b.would_admit(t0 + Duration::from_secs(4)));
        assert!(b.would_admit(t0 + Duration::from_secs(5)));
        // state() alone never transitions.
        assert_eq!(b.state(), BreakerState::Open);

        // Cooldown over: a single probe is granted.
        let (admission, transition) = b.admit(t0 + Duration::from_secs(5));
        assert_eq!(admission, Admission::Probe);
        assert_eq!(transition, Some(BreakerState::HalfOpen));
        // Probe succeeds: closed again, failure count reset.
        assert_eq!(b.record_success(), Some(BreakerState::Closed));
        assert_eq!(b.record_failure(t0 + Duration::from_secs(6)), None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_cooldown() {
        let b = breaker(1, Duration::from_secs(10));
        let t0 = Instant::now();
        assert_eq!(b.record_failure(t0), Some(BreakerState::Open));
        let t1 = t0 + Duration::from_secs(10);
        assert_eq!(b.admit(t1).0, Admission::Probe);
        // Probe fails: open again, cooldown restarts from the probe, not
        // the original trip.
        assert_eq!(b.record_failure(t1), Some(BreakerState::Open));
        assert_eq!(b.admit(t1 + Duration::from_secs(9)).0, Admission::Rejected);
        assert_eq!(b.admit(t1 + Duration::from_secs(10)).0, Admission::Probe);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = breaker(1, Duration::from_millis(0));
        let t0 = Instant::now();
        b.record_failure(t0);
        // Zero cooldown: immediately probe-able.
        assert_eq!(b.admit(t0).0, Admission::Probe);
        // Second and third askers are rejected while the probe flies.
        assert_eq!(b.admit(t0), (Admission::Rejected, None));
        assert_eq!(b.admit(t0), (Admission::Rejected, None));
        assert!(!b.would_admit(t0));
        // Probe lands: the next asker is a plain closed-state admit.
        assert_eq!(b.record_success(), Some(BreakerState::Closed));
        assert_eq!(b.admit(t0), (Admission::Allowed, None));
    }

    #[test]
    fn straggler_failures_while_open_do_not_extend_the_cooldown() {
        let b = breaker(1, Duration::from_secs(5));
        let t0 = Instant::now();
        b.record_failure(t0);
        // A late failure from a request dispatched before the trip.
        assert_eq!(b.record_failure(t0 + Duration::from_secs(4)), None);
        // Probe still lands on the original schedule.
        assert_eq!(b.admit(t0 + Duration::from_secs(5)).0, Admission::Probe);
    }

    #[test]
    fn straggler_success_closes_an_open_breaker() {
        let b = breaker(1, Duration::from_secs(60));
        b.record_failure(Instant::now());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.record_success(), Some(BreakerState::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let b = breaker(2, Duration::from_secs(1));
        let t0 = Instant::now();
        assert_eq!(b.record_failure(t0), None);
        assert_eq!(b.record_success(), None); // closed → closed: no signal
        assert_eq!(b.record_failure(t0), None); // count restarted at zero
        assert_eq!(b.record_failure(t0), Some(BreakerState::Open));
    }
}
