//! Per-model token-bucket rate limiting.
//!
//! This is the backend half of the ROADMAP's "per-model widths/rate
//! limits" item: the engine's worker pool decides *parallelism*, and this
//! limiter decides *admission* — how fast requests for each routed model
//! may reach the wire, whatever the pool width. Buckets refill
//! continuously; an empty bucket blocks the submitting worker (sleeping,
//! not spinning) until a token accrues, and a 429 from the service drains
//! the model's bucket so every worker backs off together rather than each
//! one discovering the limit with its own failed request.
//!
//! The drain is **scoped to the offending model**: each bucket sits behind
//! its own lock (the key set is fixed at construction, so the map itself
//! needs none), and unlimited models touch no lock at all. A 429 burst on
//! one model — with its workers cycling through drain/penalty re-checks —
//! therefore cannot pace or even contend traffic headed for any other
//! model.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use askit_llm::ModelChoice;

use crate::config::RateLimit;
use crate::lock;

#[derive(Debug)]
struct Bucket {
    limit: RateLimit,
    tokens: f64,
    refilled_at: Instant,
}

impl Bucket {
    fn refill(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.refilled_at).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.limit.per_second).min(self.limit.capacity);
        self.refilled_at = now;
    }
}

/// A set of token buckets keyed by routed model, each behind its own lock.
#[derive(Debug, Default)]
pub struct RateLimiter {
    /// The key set is immutable after construction; only the per-bucket
    /// mutexes guard mutable state, so models never contend each other.
    buckets: HashMap<ModelChoice, Mutex<Bucket>>,
}

impl RateLimiter {
    /// A limiter with one bucket per configured `(model, limit)` pair;
    /// models without an entry pass through unthrottled.
    pub fn new(limits: &[(ModelChoice, RateLimit)]) -> Self {
        let now = Instant::now();
        RateLimiter {
            buckets: limits
                .iter()
                .map(|&(model, limit)| {
                    (
                        model,
                        Mutex::new(Bucket {
                            limit,
                            tokens: limit.capacity,
                            refilled_at: now,
                        }),
                    )
                })
                .collect(),
        }
    }

    /// Blocks until `model` may issue one request. Unlimited models return
    /// immediately, touching no lock. The wait sleeps in bounded slices
    /// outside the bucket's lock, and only *this model's* lock is ever
    /// taken — acquisitions for other models proceed untouched however
    /// drained (or contended) this bucket is.
    pub fn acquire(&self, model: ModelChoice) {
        let Some(cell) = self.buckets.get(&model) else {
            return;
        };
        loop {
            let wait = {
                let mut bucket = lock(cell);
                bucket.refill(Instant::now());
                if bucket.tokens >= 1.0 {
                    bucket.tokens -= 1.0;
                    return;
                }
                let deficit = 1.0 - bucket.tokens;
                Duration::from_secs_f64(deficit / bucket.limit.per_second.max(1e-9))
            };
            std::thread::sleep(wait.min(Duration::from_millis(50)));
        }
    }

    /// Empties `model`'s bucket (the service said 429): the next request
    /// for that model waits a full token's worth of refill, and every
    /// worker headed for *that model* paces itself instead of hammering
    /// the limit. Other models' buckets — and their locks — are untouched.
    pub fn penalize(&self, model: ModelChoice) {
        if let Some(cell) = self.buckets.get(&model) {
            let mut bucket = lock(cell);
            bucket.refill(Instant::now());
            bucket.tokens = 0.0;
        }
    }

    /// Tokens currently available for `model` (`None` = unlimited).
    pub fn available(&self, model: ModelChoice) -> Option<f64> {
        self.buckets.get(&model).map(|cell| {
            let mut bucket = lock(cell);
            bucket.refill(Instant::now());
            bucket.tokens
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limiter(capacity: f64, per_second: f64) -> RateLimiter {
        RateLimiter::new(&[(
            ModelChoice::Gpt4,
            RateLimit {
                capacity,
                per_second,
            },
        )])
    }

    #[test]
    fn unlimited_models_never_block() {
        let limiter = limiter(1.0, 0.5);
        let started = Instant::now();
        for _ in 0..100 {
            limiter.acquire(ModelChoice::Gpt35);
        }
        assert!(started.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn burst_capacity_then_paced() {
        // 3-token burst, then 50/s refill: the 4th acquire must wait ~20ms.
        let limiter = limiter(3.0, 50.0);
        let started = Instant::now();
        for _ in 0..3 {
            limiter.acquire(ModelChoice::Gpt4);
        }
        assert!(
            started.elapsed() < Duration::from_millis(15),
            "burst should not block: {:?}",
            started.elapsed()
        );
        let before_fourth = Instant::now();
        limiter.acquire(ModelChoice::Gpt4);
        assert!(
            before_fourth.elapsed() >= Duration::from_millis(10),
            "4th token must be paced: {:?}",
            before_fourth.elapsed()
        );
    }

    #[test]
    fn penalize_drains_the_bucket() {
        let limiter = limiter(5.0, 1000.0);
        limiter.acquire(ModelChoice::Gpt4);
        assert!(limiter.available(ModelChoice::Gpt4).unwrap() > 3.0);
        limiter.penalize(ModelChoice::Gpt4);
        assert!(limiter.available(ModelChoice::Gpt4).unwrap() < 1.0);
        // Refill restores service.
        limiter.acquire(ModelChoice::Gpt4);
    }

    #[test]
    fn penalize_is_scoped_to_the_offending_model() {
        // Both models limited; gpt4's refill is slow, gpt35's generous.
        let limiter = RateLimiter::new(&[
            (
                ModelChoice::Gpt4,
                RateLimit {
                    capacity: 1.0,
                    per_second: 10.0,
                },
            ),
            (
                ModelChoice::Gpt35,
                RateLimit {
                    capacity: 1000.0,
                    per_second: 1000.0,
                },
            ),
        ]);
        // A sustained 429 burst on gpt4: drain it and park workers in its
        // acquire loop (each would wait ~2s for a token).
        limiter.penalize(ModelChoice::Gpt4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    // Parked in gpt4's drained bucket (10/s refill: the
                    // four of them queue for ~400ms between them).
                    limiter.acquire(ModelChoice::Gpt4);
                });
            }
            // Meanwhile the unrelated model keeps flowing at full speed.
            let started = Instant::now();
            for _ in 0..200 {
                limiter.acquire(ModelChoice::Gpt35);
            }
            assert!(
                started.elapsed() < Duration::from_millis(500),
                "gpt35 stalled behind gpt4's drain: {:?}",
                started.elapsed()
            );
        });
    }
}
