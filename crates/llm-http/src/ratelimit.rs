//! Per-model token-bucket rate limiting.
//!
//! This is the backend half of the ROADMAP's "per-model widths/rate
//! limits" item: the engine's worker pool decides *parallelism*, and this
//! limiter decides *admission* — how fast requests for each routed model
//! may reach the wire, whatever the pool width. Buckets refill
//! continuously; an empty bucket blocks the submitting worker (sleeping,
//! not spinning) until a token accrues, and a 429 from the service drains
//! the model's bucket so every worker backs off together rather than each
//! one discovering the limit with its own failed request.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use askit_llm::ModelChoice;

use crate::config::RateLimit;
use crate::lock;

#[derive(Debug)]
struct Bucket {
    limit: RateLimit,
    tokens: f64,
    refilled_at: Instant,
}

impl Bucket {
    fn refill(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.refilled_at).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.limit.per_second).min(self.limit.capacity);
        self.refilled_at = now;
    }
}

/// A set of token buckets keyed by routed model.
#[derive(Debug, Default)]
pub struct RateLimiter {
    buckets: Mutex<HashMap<ModelChoice, Bucket>>,
}

impl RateLimiter {
    /// A limiter with one bucket per configured `(model, limit)` pair;
    /// models without an entry pass through unthrottled.
    pub fn new(limits: &[(ModelChoice, RateLimit)]) -> Self {
        let now = Instant::now();
        RateLimiter {
            buckets: Mutex::new(
                limits
                    .iter()
                    .map(|&(model, limit)| {
                        (
                            model,
                            Bucket {
                                limit,
                                tokens: limit.capacity,
                                refilled_at: now,
                            },
                        )
                    })
                    .collect(),
            ),
        }
    }

    /// Blocks until `model` may issue one request. Unlimited models return
    /// immediately. The wait sleeps in bounded slices outside the lock, so
    /// concurrent acquisitions for other models are never held up.
    pub fn acquire(&self, model: ModelChoice) {
        loop {
            let wait = {
                let mut buckets = lock(&self.buckets);
                let Some(bucket) = buckets.get_mut(&model) else {
                    return;
                };
                bucket.refill(Instant::now());
                if bucket.tokens >= 1.0 {
                    bucket.tokens -= 1.0;
                    return;
                }
                let deficit = 1.0 - bucket.tokens;
                Duration::from_secs_f64(deficit / bucket.limit.per_second.max(1e-9))
            };
            std::thread::sleep(wait.min(Duration::from_millis(50)));
        }
    }

    /// Empties `model`'s bucket (the service said 429): the next request
    /// for that model waits a full token's worth of refill, and the whole
    /// pool paces itself instead of hammering the limit.
    pub fn penalize(&self, model: ModelChoice) {
        let mut buckets = lock(&self.buckets);
        if let Some(bucket) = buckets.get_mut(&model) {
            bucket.refill(Instant::now());
            bucket.tokens = 0.0;
        }
    }

    /// Tokens currently available for `model` (`None` = unlimited).
    pub fn available(&self, model: ModelChoice) -> Option<f64> {
        let mut buckets = lock(&self.buckets);
        buckets.get_mut(&model).map(|bucket| {
            bucket.refill(Instant::now());
            bucket.tokens
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limiter(capacity: f64, per_second: f64) -> RateLimiter {
        RateLimiter::new(&[(
            ModelChoice::Gpt4,
            RateLimit {
                capacity,
                per_second,
            },
        )])
    }

    #[test]
    fn unlimited_models_never_block() {
        let limiter = limiter(1.0, 0.5);
        let started = Instant::now();
        for _ in 0..100 {
            limiter.acquire(ModelChoice::Gpt35);
        }
        assert!(started.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn burst_capacity_then_paced() {
        // 3-token burst, then 50/s refill: the 4th acquire must wait ~20ms.
        let limiter = limiter(3.0, 50.0);
        let started = Instant::now();
        for _ in 0..3 {
            limiter.acquire(ModelChoice::Gpt4);
        }
        assert!(
            started.elapsed() < Duration::from_millis(15),
            "burst should not block: {:?}",
            started.elapsed()
        );
        let before_fourth = Instant::now();
        limiter.acquire(ModelChoice::Gpt4);
        assert!(
            before_fourth.elapsed() >= Duration::from_millis(10),
            "4th token must be paced: {:?}",
            before_fourth.elapsed()
        );
    }

    #[test]
    fn penalize_drains_the_bucket() {
        let limiter = limiter(5.0, 1000.0);
        limiter.acquire(ModelChoice::Gpt4);
        assert!(limiter.available(ModelChoice::Gpt4).unwrap() > 3.0);
        limiter.penalize(ModelChoice::Gpt4);
        assert!(limiter.available(ModelChoice::Gpt4).unwrap() < 1.0);
        // Refill restores service.
        limiter.acquire(ModelChoice::Gpt4);
    }
}
