//! The OpenAI chat-completions wire protocol: request-body encoding and
//! response decoding (both whole-JSON and streamed SSE deltas), built on
//! the workspace's own `askit-json` substrate.

use std::time::Duration;

use askit_json::{Json, Map};
use askit_llm::{tokenizer, ChatMessage, Completion, CompletionRequest, TokenUsage};

use crate::sse::{SseEvent, SseParser};

/// Encodes one [`CompletionRequest`] as a chat-completions JSON body.
pub fn encode_request(request: &CompletionRequest, wire_model: &str, stream: bool) -> String {
    let mut body = Map::new();
    body.insert("model", Json::Str(wire_model.to_owned()));
    body.insert("temperature", Json::Float(request.temperature));
    body.insert(
        "messages",
        Json::Array(
            request
                .messages
                .iter()
                .map(|message| {
                    let mut m = Map::new();
                    m.insert("role", Json::Str(message.role.as_str().to_owned()));
                    m.insert("content", Json::Str(message.content.clone()));
                    Json::Object(m)
                })
                .collect(),
        ),
    );
    if stream {
        body.insert("stream", Json::Bool(true));
    }
    Json::Object(body).to_compact_string()
}

/// Extracts `usage.{prompt_tokens,completion_tokens}` when the server
/// reported them.
fn decode_usage(json: &Json) -> Option<TokenUsage> {
    let usage = json.get_key("usage")?;
    Some(TokenUsage {
        prompt_tokens: usage.get_key("prompt_tokens")?.as_i64()? as usize,
        completion_tokens: usage.get_key("completion_tokens")?.as_i64()? as usize,
    })
}

/// Estimates usage with the workspace tokenizer when the server reported
/// none (streamed responses usually omit it).
fn estimate_usage(request: &CompletionRequest, text: &str) -> TokenUsage {
    TokenUsage {
        prompt_tokens: request
            .messages
            .iter()
            .map(|m: &ChatMessage| tokenizer::count_tokens(&m.content))
            .sum(),
        completion_tokens: tokenizer::count_tokens(text),
    }
}

/// Decodes a non-streamed chat-completion response body.
///
/// # Errors
///
/// A description of what was malformed (not JSON, no choices, no message
/// content).
pub fn decode_response(
    request: &CompletionRequest,
    body: &str,
    latency: Duration,
) -> Result<Completion, String> {
    let json = Json::parse(body).map_err(|e| format!("response body is not JSON: {e}"))?;
    let content = json
        .pointer("/choices/0/message/content")
        .and_then(Json::as_str)
        .ok_or_else(|| "response has no choices[0].message.content".to_owned())?;
    let usage = decode_usage(&json).unwrap_or_else(|| estimate_usage(request, content));
    Ok(Completion {
        text: content.to_owned(),
        usage,
        latency,
    })
}

/// Accumulates a streamed (SSE) chat completion: deltas are appended as
/// events arrive, and the stream is complete only when `data: [DONE]` has
/// been seen — a connection that closes earlier is a torn stream and must
/// be treated as a transport failure, not a short answer.
#[derive(Debug, Default)]
pub struct StreamAccumulator {
    parser: SseParser,
    text: String,
    usage: Option<TokenUsage>,
    done: bool,
    malformed: Option<String>,
}

impl StreamAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamAccumulator::default()
    }

    /// Feeds decoded body bytes (post chunked-decoding).
    pub fn feed(&mut self, bytes: &[u8]) {
        for event in self.parser.feed(bytes) {
            match event {
                SseEvent::Done => self.done = true,
                SseEvent::Data(payload) => match Json::parse(&payload) {
                    Ok(json) => {
                        if let Some(delta) = json
                            .pointer("/choices/0/delta/content")
                            .and_then(Json::as_str)
                        {
                            self.text.push_str(delta);
                        }
                        // OpenAI sends usage on the final chunk when asked;
                        // accept it wherever it appears.
                        if let Some(usage) = decode_usage(&json) {
                            self.usage = Some(usage);
                        }
                    }
                    Err(e) => {
                        self.malformed
                            .get_or_insert_with(|| format!("bad SSE payload: {e}"));
                    }
                },
            }
        }
    }

    /// Whether `data: [DONE]` has arrived.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Finalizes the stream into a [`Completion`].
    ///
    /// # Errors
    ///
    /// When the stream was cut before `[DONE]` or an event was malformed.
    pub fn finish(
        self,
        request: &CompletionRequest,
        latency: Duration,
    ) -> Result<Completion, String> {
        if let Some(problem) = self.malformed {
            return Err(problem);
        }
        if !self.done {
            return Err("stream ended before data: [DONE]".to_owned());
        }
        let usage = self
            .usage
            .unwrap_or_else(|| estimate_usage(request, &self.text));
        Ok(Completion {
            text: self.text,
            usage,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> CompletionRequest {
        CompletionRequest::from_prompt("What is 6 times 7?")
    }

    #[test]
    fn request_encoding_is_openai_shaped() {
        let mut req = request();
        req.messages.push(ChatMessage::assistant("43"));
        req.messages.push(ChatMessage::user("try again"));
        let body = encode_request(&req, "gpt-4", true);
        let json = Json::parse(&body).unwrap();
        assert_eq!(json.pointer("/model").and_then(Json::as_str), Some("gpt-4"));
        assert_eq!(json.pointer("/stream"), Some(&Json::Bool(true)));
        assert_eq!(
            json.pointer("/messages/1/role").and_then(Json::as_str),
            Some("assistant")
        );
        assert_eq!(
            json.pointer("/messages/2/content").and_then(Json::as_str),
            Some("try again")
        );
        let unstreamed = encode_request(&request(), "gpt-4", false);
        assert!(Json::parse(&unstreamed)
            .unwrap()
            .pointer("/stream")
            .is_none());
    }

    #[test]
    fn response_decoding_takes_reported_usage() {
        let body = r#"{"choices":[{"message":{"role":"assistant","content":"42"}}],
                       "usage":{"prompt_tokens":9,"completion_tokens":1}}"#;
        let completion = decode_response(&request(), body, Duration::from_millis(5)).unwrap();
        assert_eq!(completion.text, "42");
        assert_eq!(completion.usage.prompt_tokens, 9);
        assert_eq!(completion.latency, Duration::from_millis(5));
    }

    #[test]
    fn response_decoding_estimates_missing_usage() {
        let body = r#"{"choices":[{"message":{"content":"forty two"}}]}"#;
        let completion = decode_response(&request(), body, Duration::ZERO).unwrap();
        assert!(completion.usage.prompt_tokens > 0);
        assert!(completion.usage.completion_tokens > 0);
    }

    #[test]
    fn response_decoding_rejects_malformed_bodies() {
        assert!(decode_response(&request(), "not json", Duration::ZERO).is_err());
        assert!(decode_response(&request(), r#"{"choices":[]}"#, Duration::ZERO).is_err());
    }

    #[test]
    fn stream_accumulates_deltas_until_done() {
        let mut acc = StreamAccumulator::new();
        acc.feed(b"data: {\"choices\":[{\"delta\":{\"content\":\"4\"}}]}\n\n");
        acc.feed(b"data: {\"choices\":[{\"delta\":{\"content\":\"2\"}}]}\n\n");
        assert!(!acc.is_done());
        acc.feed(b"data: [DONE]\n\n");
        assert!(acc.is_done());
        let completion = acc.finish(&request(), Duration::ZERO).unwrap();
        assert_eq!(completion.text, "42");
    }

    #[test]
    fn torn_stream_is_an_error_not_a_short_answer() {
        let mut acc = StreamAccumulator::new();
        acc.feed(b"data: {\"choices\":[{\"delta\":{\"content\":\"partial\"}}]}\n\n");
        let err = acc.finish(&request(), Duration::ZERO).unwrap_err();
        assert!(err.contains("[DONE]"), "{err}");
    }
}
