//! # askit-llm-http
//!
//! The **network backend** for the AskIt reproduction: an
//! OpenAI-compatible chat-completions client implementing
//! [`askit_llm::LanguageModel`], plus the loopback test server that makes
//! the whole subsystem CI-testable offline.
//!
//! The paper runs its experiments against OpenAI's HTTP API; LMQL and APPL
//! likewise treat the model endpoint as a pluggable, rate-limited service
//! behind their runtimes. This crate is that endpoint layer for AskIt. The
//! build container has no crates.io access, so the entire protocol stack is
//! hand-rolled on `std`:
//!
//! * [`HttpLlm`] — the client: HTTP/1.1 over [`std::net::TcpStream`] with
//!   keep-alive connection pooling, `Content-Length`/chunked/SSE response
//!   decoding, retry with jittered exponential backoff on 429/5xx and
//!   transport faults, a per-model token-bucket [`RateLimiter`], and
//!   in-flight request coalescing (concurrent identical submissions share
//!   one round trip; speculative prefetches are *joined*, not re-paid) —
//!   plus the resilience layer: per-endpoint [`CircuitBreaker`]s,
//!   multi-endpoint failover, opt-in hedged requests, and deadline
//!   propagation (sleeps and socket timeouts clipped to the request's
//!   remaining budget, expired work shed before wire traffic);
//! * [`LoopbackServer`] — a scripted `127.0.0.1` server with fault
//!   injection (429 bursts, torn frames, mid-stream disconnects, and
//!   ordinal-keyed deterministic [`FaultWindow`] schedules) for tests,
//!   examples, and the chaos gate;
//! * [`ApiKey`] — credential handling that redacts itself in every
//!   `Debug`/error surface.
//!
//! The client is just another [`askit_llm::LanguageModel`], so the
//! execution engine (`askit-exec`) fronts it unchanged: completion cache,
//! worker pool, speculation ledger, persistence — all identical to the
//! mock-backed stack. Cache identity remains the request fingerprint; the
//! API base and key are service configuration, **not** part of the
//! fingerprint, so switching endpoints serves the same cache (point
//! different services at different `cache_dir`s when their answers must
//! not mix).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
mod client;
mod config;
pub mod loopback;
pub mod protocol;
pub mod ratelimit;
mod secret;
pub mod sse;
pub mod wire;

pub use breaker::{Admission, BreakerConfig, CircuitBreaker};
pub use client::{HttpLlm, HttpStats};
pub use config::{
    HedgeConfig, HttpLlmConfig, RateLimit, RetryConfig, API_BASE_ENV, API_FALLBACKS_ENV,
    API_KEY_ENV,
};
pub use loopback::{Fault, FaultWindow, LoopbackServer, RecordedRequest, Reply};
pub use ratelimit::RateLimiter;
pub use secret::ApiKey;

/// Locks a mutex, recovering from poisoning (the protected state is
/// counters, queues, and connection lists whose invariants hold per
/// operation).
pub(crate) fn lock<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// First occurrence of `needle` in `haystack` (shared by the client-side
/// and loopback-side header scanners).
pub(crate) fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// FNV-1a over `bytes` — the crate's one definition, used for backoff
/// jitter and the loopback server's deterministic echo payloads.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
