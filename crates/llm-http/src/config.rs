//! Configuration for the HTTP backend.

use std::time::Duration;

use askit_llm::ModelChoice;

use crate::breaker::BreakerConfig;
use crate::secret::ApiKey;

/// Environment variable naming the service base URL (e.g.
/// `http://127.0.0.1:8080/v1`).
pub const API_BASE_ENV: &str = "ASKIT_API_BASE";
/// Environment variable listing fallback base URLs, comma-separated, tried
/// in order when the primary endpoint's circuit breaker is open (or a
/// hedged request needs a second endpoint).
pub const API_FALLBACKS_ENV: &str = "ASKIT_API_FALLBACKS";
/// Environment variable holding the bearer credential. Read once at
/// configuration time into an [`ApiKey`], which redacts itself everywhere.
pub const API_KEY_ENV: &str = "ASKIT_API_KEY";

/// Retry discipline for 429/5xx statuses and transport failures.
///
/// Delays grow exponentially from [`RetryConfig::base_delay`] and are
/// *jittered* deterministically per (request, attempt) — see
/// [`crate::backoff::BackoffPolicy`] — so a burst of throttled workers
/// fans back in spread out instead of stampeding the service in lockstep.
/// A `Retry-After` header on a 429 overrides the computed delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Retries after the first attempt (0 = fail on the first bad status).
    pub max_retries: u32,
    /// First backoff delay; doubles each further attempt.
    pub base_delay: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub max_delay: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 4,
            base_delay: Duration::from_millis(200),
            max_delay: Duration::from_secs(10),
        }
    }
}

/// When and how a hedged request launches its second attempt.
///
/// Hedging races a duplicate attempt on a *different* endpoint once the
/// first has been in flight longer than a recent-latency percentile — the
/// first result wins, the loser is dropped. It trades up to one extra wire
/// round trip for a bounded tail: a request stuck behind a slow or dying
/// endpoint completes in roughly `percentile`-latency plus one healthy
/// round trip instead of waiting out a full timeout-and-retry cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Latency percentile (0..=1) of recent completed round trips after
    /// which the hedge launches.
    pub percentile: f64,
    /// Hedge delay used until [`HedgeConfig::min_samples`] latencies have
    /// been observed.
    pub initial_delay: Duration,
    /// Completed round trips required before the percentile is trusted.
    pub min_samples: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            percentile: 0.9,
            initial_delay: Duration::from_millis(150),
            min_samples: 8,
        }
    }
}

/// A token-bucket budget for one routed model: at most `capacity` requests
/// in a burst, refilled continuously at `per_second`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity (burst size), in requests.
    pub capacity: f64,
    /// Sustained refill rate, in requests per second.
    pub per_second: f64,
}

/// Configuration of an [`crate::HttpLlm`].
///
/// `Debug` is safe to log: the only secret lives in an [`ApiKey`], which
/// prints redacted.
#[derive(Debug, Clone)]
pub struct HttpLlmConfig {
    /// Service root, e.g. `http://api.example.com:8080/v1`. Only plain
    /// `http://` is supported (the workspace builds offline, with no TLS
    /// implementation); the client appends `/chat/completions`.
    pub api_base: String,
    /// Fallback service roots, tried in order when an earlier endpoint's
    /// circuit breaker is open (and raced against by hedged requests).
    /// Endpoints are **service advice**: they are not part of the request
    /// fingerprint, so every endpoint serves the same completion cache.
    pub fallback_api_bases: Vec<String>,
    /// Bearer credential sent as `Authorization: Bearer …`, if any (shared
    /// by every endpoint).
    pub api_key: Option<ApiKey>,
    /// Wire model name used for [`ModelChoice::Default`].
    pub default_model: String,
    /// Wire model name used for [`ModelChoice::Gpt35`].
    pub gpt35_model: String,
    /// Wire model name used for [`ModelChoice::Gpt4`].
    pub gpt4_model: String,
    /// Whether to request streamed (SSE) responses. Both framings are fully
    /// supported; streaming exercises the chunked/SSE decode path and gives
    /// a real service the chance to fail fast mid-generation.
    pub stream: bool,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Default per-round-trip deadline; a request's own
    /// [`askit_llm::RequestOptions::timeout`] wins per call.
    pub request_timeout: Duration,
    /// Retry/backoff discipline for 429/5xx and transport failures.
    pub retry: RetryConfig,
    /// Per-model request budgets, consulted *before* each wire attempt.
    /// Models without an entry are unthrottled. A 429 from the service
    /// additionally drains the model's bucket, so the whole worker pool
    /// backs off together instead of each thread discovering the limit.
    pub rate_limits: Vec<(ModelChoice, RateLimit)>,
    /// Keep-alive connections retained per endpoint (0 disables reuse).
    pub max_idle_connections: usize,
    /// Per-endpoint circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Hedged-request discipline (consulted only for requests that opt in
    /// via [`askit_llm::RequestOptions::hedge`] *and* only when at least
    /// one fallback endpoint is configured).
    pub hedge: HedgeConfig,
}

impl HttpLlmConfig {
    /// A configuration for `api_base` with OpenAI-ish defaults everywhere
    /// else (no credential, no rate limits, streaming off).
    pub fn new(api_base: impl Into<String>) -> Self {
        HttpLlmConfig {
            api_base: api_base.into(),
            fallback_api_bases: Vec::new(),
            api_key: None,
            default_model: "gpt-4".to_owned(),
            gpt35_model: "gpt-3.5-turbo".to_owned(),
            gpt4_model: "gpt-4".to_owned(),
            stream: false,
            connect_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(120),
            retry: RetryConfig::default(),
            rate_limits: Vec::new(),
            max_idle_connections: 8,
            breaker: BreakerConfig::default(),
            hedge: HedgeConfig::default(),
        }
    }

    /// Builds a configuration from the environment: [`API_BASE_ENV`] is
    /// required; [`API_KEY_ENV`] and [`API_FALLBACKS_ENV`] (comma-separated
    /// fallback base URLs) are optional. Returns `None` when no base URL
    /// is set.
    pub fn from_env() -> Option<Self> {
        let base = std::env::var(API_BASE_ENV).ok()?;
        let mut config = HttpLlmConfig::new(base);
        if let Ok(key) = std::env::var(API_KEY_ENV) {
            let key = ApiKey::new(key);
            if !key.is_empty() {
                config.api_key = Some(key);
            }
        }
        if let Ok(fallbacks) = std::env::var(API_FALLBACKS_ENV) {
            config.fallback_api_bases = fallbacks
                .split(',')
                .map(str::trim)
                .filter(|base| !base.is_empty())
                .map(str::to_owned)
                .collect();
        }
        Some(config)
    }

    /// Sets the bearer credential.
    #[must_use]
    pub fn with_api_key(mut self, key: impl Into<String>) -> Self {
        self.api_key = Some(ApiKey::new(key));
        self
    }

    /// Requests streamed (SSE) responses.
    #[must_use]
    pub fn with_stream(mut self, stream: bool) -> Self {
        self.stream = stream;
        self
    }

    /// Overrides the retry discipline.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Sets (or replaces) the budget for one routed model.
    #[must_use]
    pub fn with_rate_limit(mut self, model: ModelChoice, limit: RateLimit) -> Self {
        self.rate_limits.retain(|(m, _)| *m != model);
        self.rate_limits.push((model, limit));
        self
    }

    /// Overrides the default per-round-trip deadline.
    #[must_use]
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Appends a fallback endpoint (tried after the primary and any
    /// earlier fallbacks).
    #[must_use]
    pub fn with_fallback(mut self, api_base: impl Into<String>) -> Self {
        self.fallback_api_bases.push(api_base.into());
        self
    }

    /// Overrides the per-endpoint circuit-breaker thresholds.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Overrides the hedged-request discipline.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = hedge;
        self
    }

    /// The wire model name serving a routed choice.
    pub fn wire_model(&self, choice: ModelChoice) -> &str {
        match choice {
            ModelChoice::Default => &self.default_model,
            ModelChoice::Gpt35 => &self.gpt35_model,
            ModelChoice::Gpt4 => &self.gpt4_model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_models_route() {
        let config = HttpLlmConfig::new("http://127.0.0.1:1/v1");
        assert_eq!(config.wire_model(ModelChoice::Default), "gpt-4");
        assert_eq!(config.wire_model(ModelChoice::Gpt35), "gpt-3.5-turbo");
        assert_eq!(config.wire_model(ModelChoice::Gpt4), "gpt-4");
    }

    #[test]
    fn rate_limit_replaces_per_model() {
        let config = HttpLlmConfig::new("http://h:1/v1")
            .with_rate_limit(
                ModelChoice::Gpt4,
                RateLimit {
                    capacity: 1.0,
                    per_second: 1.0,
                },
            )
            .with_rate_limit(
                ModelChoice::Gpt4,
                RateLimit {
                    capacity: 9.0,
                    per_second: 2.0,
                },
            );
        assert_eq!(config.rate_limits.len(), 1);
        assert_eq!(config.rate_limits[0].1.capacity, 9.0);
    }

    #[test]
    fn debug_output_redacts_the_credential() {
        let config = HttpLlmConfig::new("http://h:1/v1").with_api_key("sk-very-secret");
        let shown = format!("{config:?}");
        assert!(!shown.contains("very-secret"), "leaked: {shown}");
    }
}
