//! Configuration for the HTTP backend.

use std::time::Duration;

use askit_llm::ModelChoice;

use crate::secret::ApiKey;

/// Environment variable naming the service base URL (e.g.
/// `http://127.0.0.1:8080/v1`).
pub const API_BASE_ENV: &str = "ASKIT_API_BASE";
/// Environment variable holding the bearer credential. Read once at
/// configuration time into an [`ApiKey`], which redacts itself everywhere.
pub const API_KEY_ENV: &str = "ASKIT_API_KEY";

/// Retry discipline for 429/5xx statuses and transport failures.
///
/// Delays grow exponentially from [`RetryConfig::base_delay`] and are
/// *jittered* deterministically per (request, attempt) — see
/// [`crate::backoff::BackoffPolicy`] — so a burst of throttled workers
/// fans back in spread out instead of stampeding the service in lockstep.
/// A `Retry-After` header on a 429 overrides the computed delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Retries after the first attempt (0 = fail on the first bad status).
    pub max_retries: u32,
    /// First backoff delay; doubles each further attempt.
    pub base_delay: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub max_delay: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 4,
            base_delay: Duration::from_millis(200),
            max_delay: Duration::from_secs(10),
        }
    }
}

/// A token-bucket budget for one routed model: at most `capacity` requests
/// in a burst, refilled continuously at `per_second`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity (burst size), in requests.
    pub capacity: f64,
    /// Sustained refill rate, in requests per second.
    pub per_second: f64,
}

/// Configuration of an [`crate::HttpLlm`].
///
/// `Debug` is safe to log: the only secret lives in an [`ApiKey`], which
/// prints redacted.
#[derive(Debug, Clone)]
pub struct HttpLlmConfig {
    /// Service root, e.g. `http://api.example.com:8080/v1`. Only plain
    /// `http://` is supported (the workspace builds offline, with no TLS
    /// implementation); the client appends `/chat/completions`.
    pub api_base: String,
    /// Bearer credential sent as `Authorization: Bearer …`, if any.
    pub api_key: Option<ApiKey>,
    /// Wire model name used for [`ModelChoice::Default`].
    pub default_model: String,
    /// Wire model name used for [`ModelChoice::Gpt35`].
    pub gpt35_model: String,
    /// Wire model name used for [`ModelChoice::Gpt4`].
    pub gpt4_model: String,
    /// Whether to request streamed (SSE) responses. Both framings are fully
    /// supported; streaming exercises the chunked/SSE decode path and gives
    /// a real service the chance to fail fast mid-generation.
    pub stream: bool,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Default per-round-trip deadline; a request's own
    /// [`askit_llm::RequestOptions::timeout`] wins per call.
    pub request_timeout: Duration,
    /// Retry/backoff discipline for 429/5xx and transport failures.
    pub retry: RetryConfig,
    /// Per-model request budgets, consulted *before* each wire attempt.
    /// Models without an entry are unthrottled. A 429 from the service
    /// additionally drains the model's bucket, so the whole worker pool
    /// backs off together instead of each thread discovering the limit.
    pub rate_limits: Vec<(ModelChoice, RateLimit)>,
    /// Keep-alive connections retained per client (0 disables reuse).
    pub max_idle_connections: usize,
}

impl HttpLlmConfig {
    /// A configuration for `api_base` with OpenAI-ish defaults everywhere
    /// else (no credential, no rate limits, streaming off).
    pub fn new(api_base: impl Into<String>) -> Self {
        HttpLlmConfig {
            api_base: api_base.into(),
            api_key: None,
            default_model: "gpt-4".to_owned(),
            gpt35_model: "gpt-3.5-turbo".to_owned(),
            gpt4_model: "gpt-4".to_owned(),
            stream: false,
            connect_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(120),
            retry: RetryConfig::default(),
            rate_limits: Vec::new(),
            max_idle_connections: 8,
        }
    }

    /// Builds a configuration from the environment: [`API_BASE_ENV`] is
    /// required, [`API_KEY_ENV`] optional. Returns `None` when no base URL
    /// is set.
    pub fn from_env() -> Option<Self> {
        let base = std::env::var(API_BASE_ENV).ok()?;
        let mut config = HttpLlmConfig::new(base);
        if let Ok(key) = std::env::var(API_KEY_ENV) {
            let key = ApiKey::new(key);
            if !key.is_empty() {
                config.api_key = Some(key);
            }
        }
        Some(config)
    }

    /// Sets the bearer credential.
    #[must_use]
    pub fn with_api_key(mut self, key: impl Into<String>) -> Self {
        self.api_key = Some(ApiKey::new(key));
        self
    }

    /// Requests streamed (SSE) responses.
    #[must_use]
    pub fn with_stream(mut self, stream: bool) -> Self {
        self.stream = stream;
        self
    }

    /// Overrides the retry discipline.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }

    /// Sets (or replaces) the budget for one routed model.
    #[must_use]
    pub fn with_rate_limit(mut self, model: ModelChoice, limit: RateLimit) -> Self {
        self.rate_limits.retain(|(m, _)| *m != model);
        self.rate_limits.push((model, limit));
        self
    }

    /// Overrides the default per-round-trip deadline.
    #[must_use]
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// The wire model name serving a routed choice.
    pub fn wire_model(&self, choice: ModelChoice) -> &str {
        match choice {
            ModelChoice::Default => &self.default_model,
            ModelChoice::Gpt35 => &self.gpt35_model,
            ModelChoice::Gpt4 => &self.gpt4_model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_models_route() {
        let config = HttpLlmConfig::new("http://127.0.0.1:1/v1");
        assert_eq!(config.wire_model(ModelChoice::Default), "gpt-4");
        assert_eq!(config.wire_model(ModelChoice::Gpt35), "gpt-3.5-turbo");
        assert_eq!(config.wire_model(ModelChoice::Gpt4), "gpt-4");
    }

    #[test]
    fn rate_limit_replaces_per_model() {
        let config = HttpLlmConfig::new("http://h:1/v1")
            .with_rate_limit(
                ModelChoice::Gpt4,
                RateLimit {
                    capacity: 1.0,
                    per_second: 1.0,
                },
            )
            .with_rate_limit(
                ModelChoice::Gpt4,
                RateLimit {
                    capacity: 9.0,
                    per_second: 2.0,
                },
            );
        assert_eq!(config.rate_limits.len(), 1);
        assert_eq!(config.rate_limits[0].1.capacity, 9.0);
    }

    #[test]
    fn debug_output_redacts_the_credential() {
        let config = HttpLlmConfig::new("http://h:1/v1").with_api_key("sk-very-secret");
        let shown = format!("{config:?}");
        assert!(!shown.contains("very-secret"), "leaked: {shown}");
    }
}
