//! # askit-json
//!
//! A self-contained JSON substrate for the AskIt workspace.
//!
//! The AskIt runtime constrains large-language-model answers to JSON and then
//! parses, validates and extracts them (paper §III-E). This crate owns that
//! entire layer so the rest of the workspace never touches a third-party JSON
//! implementation:
//!
//! * [`Json`] — the value model, with an insertion-ordered object [`Map`];
//! * [`Json::parse`] — a recursive-descent parser with line/column error
//!   reporting and a recursion-depth limit;
//! * serialization — [`Json::to_compact_string`] and [`Json::to_pretty_string`];
//! * [`extract`] — helpers that pull fenced code blocks and embedded JSON
//!   values out of free-form model prose;
//! * [`ToJson`]/[`FromJson`] — conversions between Rust values and [`Json`].
//!
//! # Examples
//!
//! ```
//! use askit_json::Json;
//!
//! let v = Json::parse(r#"{"answer": [1, 2, 3], "reason": "counted"}"#)?;
//! assert_eq!(v.get_key("answer").and_then(|a| a.get_idx(1)), Some(&Json::Int(2)));
//! assert_eq!(v.to_compact_string(), r#"{"answer":[1,2,3],"reason":"counted"}"#);
//! # Ok::<(), askit_json::ParseJsonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
pub mod extract;
mod macros;
mod parse;
mod ser;
mod value;

pub use convert::{FromJson, FromJsonError, ToJson};
pub use parse::{ParseJsonError, ParseJsonErrorKind};
pub use value::{Json, JsonKind, Map};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn end_to_end_roundtrip() {
        let text = r#"{"b": [true, null, -2.5e1], "a": "x\ny"}"#;
        let v = Json::parse(text).unwrap();
        let back = Json::parse(&v.to_compact_string()).unwrap();
        assert_eq!(v, back);
    }
}
