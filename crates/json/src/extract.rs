//! Extraction of fenced code blocks and embedded JSON from model prose.
//!
//! Step 3 of both AskIt interaction loops (paper §III-D and §III-E) begins by
//! pulling a payload out of a natural-language response: a ```` ```json ````
//! fence for directly answerable tasks, a ```` ```typescript ```` /
//! ```` ```python ```` fence for generated code. Models do not always oblige,
//! so [`extract_json`] falls back to scanning for the first parsable value —
//! exactly the leniency that makes the retry loop rarely needed.

use crate::value::Json;

/// One fenced code block found in a markdown-ish document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeBlock<'a> {
    /// The info string after the opening fence (e.g. `"json"`), possibly empty.
    pub lang: &'a str,
    /// The raw content between the fences, without the fence lines.
    pub content: &'a str,
}

/// Finds every triple-backtick code block in `text`, in order.
///
/// A fence opens at a line starting with ```` ``` ```` (leading whitespace
/// allowed) and closes at the next such line. An unclosed fence yields a block
/// running to the end of the text, which matches how chat UIs render it.
///
/// ```
/// use askit_json::extract::code_blocks;
/// let doc = "intro\n```json\n{\"a\": 1}\n```\ntail";
/// let blocks = code_blocks(doc);
/// assert_eq!(blocks.len(), 1);
/// assert_eq!(blocks[0].lang, "json");
/// assert_eq!(blocks[0].content.trim(), "{\"a\": 1}");
/// ```
pub fn code_blocks(text: &str) -> Vec<CodeBlock<'_>> {
    let mut blocks = Vec::new();
    let mut lines = LineSpans::new(text);
    while let Some((start, end)) = lines.next() {
        let line = &text[start..end];
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("```") {
            let lang = rest.trim();
            // Content starts right after this line's newline.
            let content_start = (end + 1).min(text.len());
            let mut content_end = text.len();
            for (s2, e2) in lines.by_ref() {
                if text[s2..e2].trim_start().starts_with("```") {
                    content_end = s2;
                    break;
                }
                content_end = text.len();
            }
            // Trim a single trailing newline that belongs to the fence line.
            let content = &text[content_start.min(content_end)..content_end];
            let content = content.strip_suffix('\n').unwrap_or(content);
            blocks.push(CodeBlock { lang, content });
        }
    }
    blocks
}

/// Returns the first code block whose info string equals `lang`
/// (case-insensitive), or whose info string is empty if none matches exactly.
///
/// ```
/// use askit_json::extract::code_block;
/// let doc = "```text\nx\n```\n```TypeScript\nlet a = 1;\n```";
/// assert_eq!(code_block(doc, "typescript").unwrap(), "let a = 1;");
/// ```
pub fn code_block<'a>(text: &'a str, lang: &str) -> Option<&'a str> {
    let blocks = code_blocks(text);
    if let Some(b) = blocks.iter().find(|b| b.lang.eq_ignore_ascii_case(lang)) {
        return Some(b.content);
    }
    blocks.iter().find(|b| b.lang.is_empty()).map(|b| b.content)
}

/// Extracts a JSON value from a model response.
///
/// Tries, in order:
/// 1. a ```` ```json ```` fence (or an unlabeled fence) parsed as JSON;
/// 2. the first `{` or `[` in the text from which a complete value parses.
///
/// Returns `None` when no strategy yields valid JSON — the condition that
/// trips criterion 1 of the runtime's retry loop (paper §III-E).
///
/// ```
/// use askit_json::{extract::extract_json, Json};
/// let v = extract_json("Sure! Here you go: {\"answer\": 7} — enjoy").unwrap();
/// assert_eq!(v.get_key("answer"), Some(&Json::Int(7)));
/// ```
pub fn extract_json(text: &str) -> Option<Json> {
    for block in code_blocks(text) {
        if block.lang.eq_ignore_ascii_case("json") || block.lang.is_empty() {
            if let Ok(v) = Json::parse(block.content.trim()) {
                return Some(v);
            }
            // A fence that fails to parse may still hold a value plus noise.
            if let Ok((v, _)) = Json::parse_prefix(block.content.trim_start()) {
                return Some(v);
            }
        }
    }
    scan_for_json(text)
}

/// Scans raw text for the first position where a JSON object or array parses.
fn scan_for_json(text: &str) -> Option<Json> {
    for (idx, ch) in text.char_indices() {
        if ch == '{' || ch == '[' {
            if let Ok((v, _)) = Json::parse_prefix(&text[idx..]) {
                return Some(v);
            }
        }
    }
    None
}

/// Iterator over `(start, end)` byte spans of lines (excluding the `\n`).
struct LineSpans<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> LineSpans<'a> {
    fn new(text: &'a str) -> Self {
        LineSpans { text, pos: 0 }
    }
}

impl Iterator for LineSpans<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.pos > self.text.len() {
            return None;
        }
        if self.pos == self.text.len() && self.pos != 0 {
            return None;
        }
        let start = self.pos;
        let end = self.text[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(self.text.len());
        self.pos = end + 1;
        Some((start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_multiple_blocks_in_order() {
        let doc = "a\n```json\n1\n```\nmid\n```python\nx = 2\n```\n";
        let blocks = code_blocks(doc);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].lang, "json");
        assert_eq!(blocks[0].content, "1");
        assert_eq!(blocks[1].lang, "python");
        assert_eq!(blocks[1].content, "x = 2");
    }

    #[test]
    fn unclosed_fence_runs_to_end() {
        let doc = "```ts\nlet a = 1;\nlet b = 2;";
        let blocks = code_blocks(doc);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].content, "let a = 1;\nlet b = 2;");
    }

    #[test]
    fn indented_fences_are_recognized() {
        let doc = "  ```json\n  {\"a\": 1}\n  ```";
        let blocks = code_blocks(doc);
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].content.contains("\"a\""));
    }

    #[test]
    fn block_lookup_is_case_insensitive_with_unlabeled_fallback() {
        let doc = "```\nplain\n```";
        assert_eq!(code_block(doc, "typescript"), Some("plain"));
        let doc2 = "```TypeScript\ncode\n```";
        assert_eq!(code_block(doc2, "typescript"), Some("code"));
        assert_eq!(code_block("no fences here", "json"), None);
    }

    #[test]
    fn empty_block_is_empty() {
        let doc = "```json\n```";
        let blocks = code_blocks(doc);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].content, "");
    }

    #[test]
    fn extract_json_prefers_the_fence() {
        let doc = "noise {\"decoy\": 0}\n```json\n{\"answer\": 1}\n```";
        let v = extract_json(doc).unwrap();
        assert_eq!(v.get_key("answer"), Some(&Json::Int(1)));
    }

    #[test]
    fn extract_json_falls_back_to_prose_scan() {
        let doc = "The result is {\"answer\": [1, 2]} as requested.";
        let v = extract_json(doc).unwrap();
        assert_eq!(v.get_key("answer").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn extract_json_skips_unparsable_braces() {
        let doc = "set {x} then see [not json] then [3,4] done";
        let v = extract_json(doc).unwrap();
        assert_eq!(v, Json::parse("[3,4]").unwrap());
    }

    #[test]
    fn extract_json_handles_fence_with_trailing_prose() {
        let doc = "```json\n{\"answer\": true} // inline comment\n```";
        let v = extract_json(doc).unwrap();
        assert_eq!(v.get_key("answer"), Some(&Json::Bool(true)));
    }

    #[test]
    fn extract_json_returns_none_when_hopeless() {
        assert_eq!(extract_json("nothing to see here"), None);
        assert_eq!(extract_json("{ broken"), None);
    }

    #[test]
    fn line_spans_handles_trailing_newline() {
        let spans: Vec<_> = LineSpans::new("a\nb\n").collect();
        assert_eq!(spans, vec![(0, 1), (2, 3)]);
        let spans2: Vec<_> = LineSpans::new("a\nb").collect();
        assert_eq!(spans2, vec![(0, 1), (2, 3)]);
    }
}
