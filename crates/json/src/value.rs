//! The [`Json`] value model and the insertion-ordered object [`Map`].

use std::fmt;

/// A JSON value.
///
/// Integers and floating-point numbers are kept distinct ([`Json::Int`] vs
/// [`Json::Float`]) because the AskIt type language distinguishes `int` from
/// `float` (paper Table I); validation needs to know whether `3` arrived as an
/// integer literal.
///
/// # Examples
///
/// ```
/// use askit_json::Json;
///
/// let v = Json::from(vec![1i64, 2, 3]);
/// assert!(v.is_array());
/// assert_eq!(v.get_idx(2), Some(&Json::Int(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Json {
    /// The JSON `null` literal.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (no fractional part or exponent in the source text).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Array(Vec<Json>),
    /// An object; see [`Map`].
    Object(Map),
}

/// The coarse kind of a [`Json`] value, used in error messages and the
/// type-usage statistics behind the paper's Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JsonKind {
    /// `null`
    Null,
    /// `true` / `false`
    Bool,
    /// integer number
    Int,
    /// floating-point number
    Float,
    /// string
    Str,
    /// array
    Array,
    /// object
    Object,
}

impl fmt::Display for JsonKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            JsonKind::Null => "null",
            JsonKind::Bool => "boolean",
            JsonKind::Int => "integer",
            JsonKind::Float => "float",
            JsonKind::Str => "string",
            JsonKind::Array => "array",
            JsonKind::Object => "object",
        };
        f.write_str(name)
    }
}

impl Json {
    /// Returns the [`JsonKind`] of this value.
    ///
    /// ```
    /// use askit_json::{Json, JsonKind};
    /// assert_eq!(Json::Int(3).kind(), JsonKind::Int);
    /// ```
    pub fn kind(&self) -> JsonKind {
        match self {
            Json::Null => JsonKind::Null,
            Json::Bool(_) => JsonKind::Bool,
            Json::Int(_) => JsonKind::Int,
            Json::Float(_) => JsonKind::Float,
            Json::Str(_) => JsonKind::Str,
            Json::Array(_) => JsonKind::Array,
            Json::Object(_) => JsonKind::Object,
        }
    }

    /// Returns `true` for [`Json::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Returns `true` for [`Json::Bool`].
    pub fn is_bool(&self) -> bool {
        matches!(self, Json::Bool(_))
    }

    /// Returns `true` for [`Json::Int`] or [`Json::Float`].
    pub fn is_number(&self) -> bool {
        matches!(self, Json::Int(_) | Json::Float(_))
    }

    /// Returns `true` for [`Json::Str`].
    pub fn is_string(&self) -> bool {
        matches!(self, Json::Str(_))
    }

    /// Returns `true` for [`Json::Array`].
    pub fn is_array(&self) -> bool {
        matches!(self, Json::Array(_))
    }

    /// Returns `true` for [`Json::Object`].
    pub fn is_object(&self) -> bool {
        matches!(self, Json::Object(_))
    }

    /// The boolean payload, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`.
    ///
    /// [`Json::Float`] values are accepted when they are finite and integral,
    /// mirroring the lenient int coercion the AskIt runtime applies to model
    /// output.
    ///
    /// ```
    /// use askit_json::Json;
    /// assert_eq!(Json::Float(4.0).as_i64(), Some(4));
    /// assert_eq!(Json::Float(4.5).as_i64(), None);
    /// ```
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.is_finite() && f.fract() == 0.0 && f.abs() < 9.0e15 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` ([`Json::Int`] widens losslessly for |i| < 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is a [`Json::Array`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array payload, if this is a [`Json::Array`].
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Json>> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is a [`Json::Object`].
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object payload, if this is a [`Json::Object`].
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on an object; `None` for other kinds or missing keys.
    pub fn get_key(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Element lookup on an array; `None` for other kinds or out of range.
    pub fn get_idx(&self, idx: usize) -> Option<&Json> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Resolves an RFC 6901 JSON Pointer (`""`, `"/a/0/b"`, …).
    ///
    /// `~0` decodes to `~` and `~1` to `/` as the RFC requires.
    ///
    /// ```
    /// use askit_json::Json;
    /// let v = Json::parse(r#"{"a": [10, {"b": true}]}"#).unwrap();
    /// assert_eq!(v.pointer("/a/1/b"), Some(&Json::Bool(true)));
    /// assert_eq!(v.pointer("/missing"), None);
    /// ```
    pub fn pointer(&self, pointer: &str) -> Option<&Json> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        let mut cur = self;
        for raw in pointer[1..].split('/') {
            let token = raw.replace("~1", "/").replace("~0", "~");
            cur = match cur {
                Json::Object(m) => m.get(&token)?,
                Json::Array(a) => a.get(token.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Structural equality that treats `Int(n)` and `Float(n.0)` as equal.
    ///
    /// The semantic validation of generated code (paper §III-D, Step 3)
    /// compares interpreter output against expected values; MiniLang numbers
    /// are doubles, so `6` must match `6.0`.
    pub fn loosely_equals(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Int(_) | Json::Float(_), Json::Int(_) | Json::Float(_)) => {
                match (self.as_f64(), other.as_f64()) {
                    (Some(a), Some(b)) => {
                        if a == b {
                            true
                        } else {
                            // Tolerate tiny float error from arithmetic re-association.
                            let scale = a.abs().max(b.abs()).max(1.0);
                            (a - b).abs() <= 1e-9 * scale
                        }
                    }
                    _ => false,
                }
            }
            (Json::Array(a), Json::Array(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.loosely_equals(y))
            }
            (Json::Object(a), Json::Object(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .all(|(k, v)| b.get(k).is_some_and(|w| v.loosely_equals(w)))
            }
            _ => self == other,
        }
    }

    /// Total number of nodes in the value tree (the value itself counts as 1).
    pub fn node_count(&self) -> usize {
        match self {
            Json::Array(a) => 1 + a.iter().map(Json::node_count).sum::<usize>(),
            Json::Object(m) => 1 + m.values().map(Json::node_count).sum::<usize>(),
            _ => 1,
        }
    }
}

impl fmt::Display for Json {
    /// Formats as compact JSON, identical to [`Json::to_compact_string`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}

impl From<i32> for Json {
    fn from(i: i32) -> Self {
        Json::Int(i64::from(i))
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Self {
        Json::Int(i as i64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Self {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<Map> for Json {
    fn from(m: Map) -> Self {
        Json::Object(m)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Json::Array(iter.into_iter().map(Into::into).collect())
    }
}

/// An insertion-ordered string-keyed map used for [`Json::Object`].
///
/// JSON objects produced by AskIt keep the order fields were written in —
/// important because prompts show `{"reason": ..., "answer": ...}` in a fixed
/// order (paper Listing 2) and the cached artifacts should be byte-stable.
/// Lookup is linear; AskIt objects are small (a handful of fields).
///
/// Equality is order-insensitive, matching JSON object semantics.
///
/// # Examples
///
/// ```
/// use askit_json::{Json, Map};
///
/// let mut m = Map::new();
/// m.insert("reason", Json::from("thought about it"));
/// m.insert("answer", Json::Int(42));
/// assert_eq!(m.keys().collect::<Vec<_>>(), ["reason", "answer"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Json)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Creates an empty map with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Map {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` under `key`, replacing (in place, keeping the original
    /// position) any existing entry. Returns the previous value if present.
    pub fn insert(&mut self, key: impl Into<String>, value: Json) -> Option<Json> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup of `key`.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the entry for `key`, preserving the order of the
    /// remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Json> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|w| w == v))
    }
}

impl<K: Into<String>> FromIterator<(K, Json)> for Map {
    fn from_iter<I: IntoIterator<Item = (K, Json)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K: Into<String>> Extend<(K, Json)> for Map {
    fn extend<I: IntoIterator<Item = (K, Json)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl IntoIterator for Map {
    type Item = (String, Json);
    type IntoIter = std::vec::IntoIter<(String, Json)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_reports_every_variant() {
        assert_eq!(Json::Null.kind(), JsonKind::Null);
        assert_eq!(Json::Bool(true).kind(), JsonKind::Bool);
        assert_eq!(Json::Int(1).kind(), JsonKind::Int);
        assert_eq!(Json::Float(1.5).kind(), JsonKind::Float);
        assert_eq!(Json::Str("s".into()).kind(), JsonKind::Str);
        assert_eq!(Json::Array(vec![]).kind(), JsonKind::Array);
        assert_eq!(Json::Object(Map::new()).kind(), JsonKind::Object);
    }

    #[test]
    fn as_i64_accepts_integral_floats_only() {
        assert_eq!(Json::Int(-3).as_i64(), Some(-3));
        assert_eq!(Json::Float(7.0).as_i64(), Some(7));
        assert_eq!(Json::Float(7.25).as_i64(), None);
        assert_eq!(Json::Float(f64::NAN).as_i64(), None);
        assert_eq!(Json::Str("7".into()).as_i64(), None);
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Json::Int(4).as_f64(), Some(4.0));
        assert_eq!(Json::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Json::Bool(true).as_f64(), None);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a", Json::Int(1));
        m.insert("b", Json::Int(2));
        let old = m.insert("a", Json::Int(10));
        assert_eq!(old, Some(Json::Int(1)));
        assert_eq!(m.keys().collect::<Vec<_>>(), ["a", "b"]);
        assert_eq!(m.get("a"), Some(&Json::Int(10)));
    }

    #[test]
    fn map_remove_preserves_order() {
        let mut m: Map = [
            ("x", Json::Int(1)),
            ("y", Json::Int(2)),
            ("z", Json::Int(3)),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.remove("y"), Some(Json::Int(2)));
        assert_eq!(m.keys().collect::<Vec<_>>(), ["x", "z"]);
        assert_eq!(m.remove("y"), None);
    }

    #[test]
    fn map_equality_is_order_insensitive() {
        let a: Map = [("x", Json::Int(1)), ("y", Json::Int(2))]
            .into_iter()
            .collect();
        let b: Map = [("y", Json::Int(2)), ("x", Json::Int(1))]
            .into_iter()
            .collect();
        assert_eq!(a, b);
        let c: Map = [("x", Json::Int(1))].into_iter().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn pointer_walks_nested_structures() {
        let v = Json::parse(r#"{"a~b": {"c/d": [null, 5]}}"#).unwrap();
        assert_eq!(v.pointer("/a~0b/c~1d/1"), Some(&Json::Int(5)));
        assert_eq!(v.pointer(""), Some(&v));
        assert_eq!(v.pointer("/nope"), None);
        assert_eq!(v.pointer("no-slash"), None);
    }

    #[test]
    fn loose_equality_bridges_int_and_float() {
        assert!(Json::Int(6).loosely_equals(&Json::Float(6.0)));
        assert!(!Json::Int(6).loosely_equals(&Json::Float(6.5)));
        let a = Json::parse(r#"[1, {"n": 2}]"#).unwrap();
        let b = Json::parse(r#"[1.0, {"n": 2.0}]"#).unwrap();
        assert!(a.loosely_equals(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn loose_equality_tolerates_float_noise() {
        let a = Json::Float(0.1 + 0.2);
        let b = Json::Float(0.3);
        assert!(a.loosely_equals(&b));
    }

    #[test]
    fn node_count_counts_every_node() {
        let v = Json::parse(r#"{"a": [1, 2], "b": null}"#).unwrap();
        // object + array + 1 + 2 + null
        assert_eq!(v.node_count(), 5);
    }

    #[test]
    fn from_impls_build_expected_variants() {
        assert_eq!(Json::from(3i32), Json::Int(3));
        assert_eq!(Json::from(3usize), Json::Int(3));
        assert_eq!(Json::from("hi"), Json::Str("hi".into()));
        assert_eq!(
            Json::from(vec![1i64, 2]),
            Json::Array(vec![Json::Int(1), Json::Int(2)])
        );
        let collected: Json = (0i64..3).collect();
        assert_eq!(collected.as_array().unwrap().len(), 3);
    }
}
