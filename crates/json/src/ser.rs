//! Compact and pretty serialization for [`Json`].

use crate::value::Json;

impl Json {
    /// Serializes without any insignificant whitespace.
    ///
    /// Non-finite floats have no JSON representation and serialize as `null`;
    /// integral floats keep a trailing `.0` so the int/float distinction
    /// survives a round trip.
    ///
    /// ```
    /// use askit_json::Json;
    /// let v = Json::parse(r#"{ "a": [1, 2.0] }"#).unwrap();
    /// assert_eq!(v.to_compact_string(), r#"{"a":[1,2.0]}"#);
    /// ```
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serializes with 2-space indentation, one element per line.
    ///
    /// ```
    /// use askit_json::Json;
    /// let v = Json::parse(r#"{"a":[1]}"#).unwrap();
    /// assert_eq!(v.to_pretty_string(), "{\n  \"a\": [\n    1\n  ]\n}");
    /// ```
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => write_float(out, *f),
        Json::Str(s) => write_escaped(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; null is the least-bad stand-in.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the float-ness visible: "5" would re-parse as Int(5).
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes) into `out`.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Map;

    #[test]
    fn compact_scalars() {
        assert_eq!(Json::Null.to_compact_string(), "null");
        assert_eq!(Json::Bool(true).to_compact_string(), "true");
        assert_eq!(Json::Int(-7).to_compact_string(), "-7");
        assert_eq!(Json::Float(2.5).to_compact_string(), "2.5");
        assert_eq!(Json::Str("a\"b".into()).to_compact_string(), r#""a\"b""#);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(5.0).to_compact_string(), "5.0");
        let back = Json::parse(&Json::Float(5.0).to_compact_string()).unwrap();
        assert_eq!(back, Json::Float(5.0));
    }

    #[test]
    fn scientific_formatting_still_parses() {
        let v = Json::Float(1.0e300);
        let back = Json::parse(&v.to_compact_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        assert_eq!(Json::Str("\u{1}".into()).to_compact_string(), "\"\\u0001\"");
        assert_eq!(Json::Str("\n\t".into()).to_compact_string(), r#""\n\t""#);
    }

    #[test]
    fn empty_containers_are_compact_even_in_pretty_mode() {
        let v = Json::parse(r#"{"a": [], "b": {}}"#).unwrap();
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }

    #[test]
    fn object_order_is_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Json::Int(1));
        m.insert("a", Json::Int(2));
        assert_eq!(Json::Object(m).to_compact_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn display_matches_compact() {
        let v = Json::parse(r#"[1,{"k":null}]"#).unwrap();
        assert_eq!(v.to_string(), v.to_compact_string());
    }

    #[test]
    fn pretty_nested() {
        let v = Json::parse(r#"{"a":{"b":[true]}}"#).unwrap();
        let expected = "{\n  \"a\": {\n    \"b\": [\n      true\n    ]\n  }\n}";
        assert_eq!(v.to_pretty_string(), expected);
    }
}
