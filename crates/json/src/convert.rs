//! [`ToJson`] / [`FromJson`]: conversions between Rust values and [`Json`].
//!
//! These traits are the Rust analog of the typed extraction AskIt performs on
//! model answers: once the runtime has validated a [`Json`] value against an
//! AskIt type, `FromJson` moves it into a plain Rust value.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::value::{Json, JsonKind, Map};

/// Conversion of a Rust value into [`Json`].
///
/// ```
/// use askit_json::{Json, ToJson};
/// assert_eq!(vec![1i64, 2].to_json(), Json::parse("[1,2]").unwrap());
/// ```
pub trait ToJson {
    /// Converts `self` to a [`Json`] value.
    fn to_json(&self) -> Json;
}

/// Conversion of a [`Json`] value into a Rust value.
///
/// ```
/// use askit_json::{FromJson, Json};
/// let v = Json::parse("[1, 2, 3]").unwrap();
/// let xs: Vec<i64> = FromJson::from_json(&v)?;
/// assert_eq!(xs, [1, 2, 3]);
/// # Ok::<(), askit_json::FromJsonError>(())
/// ```
pub trait FromJson: Sized {
    /// Converts a [`Json`] value to `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`FromJsonError`] when the value has the wrong shape.
    fn from_json(v: &Json) -> Result<Self, FromJsonError>;
}

/// Error for a failed [`FromJson`] conversion, carrying the path into the
/// value where the mismatch occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromJsonError {
    path: String,
    expected: String,
    found: JsonKind,
}

impl FromJsonError {
    /// Creates a mismatch error at the value root.
    pub fn mismatch(expected: impl Into<String>, found: &Json) -> Self {
        FromJsonError {
            path: String::new(),
            expected: expected.into(),
            found: found.kind(),
        }
    }

    /// Returns this error re-rooted under `segment` (e.g. an array index or
    /// object key), used when conversions recurse.
    #[must_use]
    pub fn nested(mut self, segment: &str) -> Self {
        if self.path.is_empty() {
            self.path = segment.to_owned();
        } else {
            self.path = format!("{segment}.{}", self.path);
        }
        self
    }

    /// The dotted path from the root to the mismatched value (empty = root).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl fmt::Display for FromJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "expected {}, found {}", self.expected, self.found)
        } else {
            write!(
                f,
                "at {}: expected {}, found {}",
                self.path, self.expected, self.found
            )
        }
    }
}

impl Error for FromJsonError {}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        v.as_bool()
            .ok_or_else(|| FromJsonError::mismatch("boolean", v))
    }
}

macro_rules! int_conversions {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }

        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, FromJsonError> {
                let i = v.as_i64().ok_or_else(|| FromJsonError::mismatch("integer", v))?;
                <$t>::try_from(i).map_err(|_| FromJsonError::mismatch(
                    concat!("integer in range of ", stringify!($t)), v))
            }
        }
    )*};
}

int_conversions!(i8, i16, i32, i64, u8, u16, u32, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        v.as_f64()
            .ok_or_else(|| FromJsonError::mismatch("number", v))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| FromJsonError::mismatch("string", v))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| FromJsonError::mismatch("array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.nested(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<T: FromJson> FromJson for BTreeMap<String, T> {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| FromJsonError::mismatch("object", v))?;
        obj.iter()
            .map(|(k, val)| {
                T::from_json(val)
                    .map(|t| (k.to_owned(), t))
                    .map_err(|e| e.nested(k))
            })
            .collect()
    }
}

impl ToJson for Map {
    fn to_json(&self) -> Json {
        Json::Object(self.clone())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| FromJsonError::mismatch("2-element array", v))?;
        if items.len() != 2 {
            return Err(FromJsonError::mismatch("2-element array", v));
        }
        Ok((
            A::from_json(&items[0]).map_err(|e| e.nested("[0]"))?,
            B::from_json(&items[1]).map_err(|e| e.nested("[1]"))?,
        ))
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, FromJsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| FromJsonError::mismatch("3-element array", v))?;
        if items.len() != 3 {
            return Err(FromJsonError::mismatch("3-element array", v));
        }
        Ok((
            A::from_json(&items[0]).map_err(|e| e.nested("[0]"))?,
            B::from_json(&items[1]).map_err(|e| e.nested("[1]"))?,
            C::from_json(&items[2]).map_err(|e| e.nested("[2]"))?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert!(bool::from_json(&true.to_json()).unwrap());
        assert_eq!(i64::from_json(&(-9i64).to_json()).unwrap(), -9);
        assert_eq!(u8::from_json(&Json::Int(200)).unwrap(), 200);
        assert_eq!(f64::from_json(&2.5f64.to_json()).unwrap(), 2.5);
        assert_eq!(String::from_json(&"hi".to_json()).unwrap(), "hi");
    }

    #[test]
    fn int_range_checking() {
        assert!(u8::from_json(&Json::Int(300)).is_err());
        assert!(u32::from_json(&Json::Int(-1)).is_err());
        assert!(i64::from_json(&Json::Float(1.5)).is_err());
        assert_eq!(i64::from_json(&Json::Float(3.0)).unwrap(), 3);
    }

    #[test]
    fn f64_accepts_ints() {
        assert_eq!(f64::from_json(&Json::Int(4)).unwrap(), 4.0);
    }

    #[test]
    fn vec_roundtrip_and_error_path() {
        let v = vec![1i64, 2, 3].to_json();
        let back: Vec<i64> = FromJson::from_json(&v).unwrap();
        assert_eq!(back, [1, 2, 3]);

        let bad = Json::parse(r#"[1, "x", 3]"#).unwrap();
        let err = <Vec<i64>>::from_json(&bad).unwrap_err();
        assert_eq!(err.path(), "[1]");
        assert!(err.to_string().contains("at [1]"), "{err}");
    }

    #[test]
    fn option_maps_null() {
        assert_eq!(<Option<i64>>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(<Option<i64>>::from_json(&Json::Int(1)).unwrap(), Some(1));
        assert_eq!(None::<i64>.to_json(), Json::Null);
    }

    #[test]
    fn btreemap_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1i64);
        m.insert("b".to_owned(), 2);
        let v = m.to_json();
        let back: BTreeMap<String, i64> = FromJson::from_json(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_error_paths_compose() {
        let bad = Json::parse(r#"{"xs": [true, "no"]}"#).unwrap();
        let err = <BTreeMap<String, Vec<bool>>>::from_json(&bad).unwrap_err();
        assert_eq!(err.path(), "xs.[1]");
    }

    #[test]
    fn tuple_conversions() {
        let v = (1i64, "x".to_owned()).to_json();
        let back: (i64, String) = FromJson::from_json(&v).unwrap();
        assert_eq!(back, (1, "x".to_owned()));
        assert!(<(i64, String)>::from_json(&Json::parse("[1]").unwrap()).is_err());

        let t3 = (1i64, 2.0f64, true).to_json();
        let back3: (i64, f64, bool) = FromJson::from_json(&t3).unwrap();
        assert_eq!(back3, (1, 2.0, true));
    }

    #[test]
    fn slices_serialize() {
        let xs = [1i64, 2];
        assert_eq!(xs[..].to_json(), Json::parse("[1,2]").unwrap());
    }
}
