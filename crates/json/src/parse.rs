//! A recursive-descent JSON parser with positioned errors.
//!
//! The parser is strict RFC 8259 JSON with two deliberate extensions used by
//! the AskIt runtime when reading model output:
//!
//! * [`Json::parse_prefix`] parses a value from the *front* of a string and
//!   reports how many bytes it consumed, which the fence-less extractor in
//!   [`crate::extract`] uses to pull a JSON object out of surrounding prose;
//! * duplicate object keys are tolerated (the last one wins), because models
//!   occasionally repeat a field.

use std::error::Error;
use std::fmt;

use crate::value::{Json, Map};

/// Maximum nesting depth accepted by the parser.
///
/// Model output is adversarially weird; a depth limit keeps a pathological
/// `[[[[…]]]]` from overflowing the stack.
pub const MAX_DEPTH: usize = 128;

/// Why a parse failed; see [`ParseJsonError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseJsonErrorKind {
    /// Input ended while a value was still open.
    UnexpectedEof,
    /// A byte that cannot start or continue the expected construct.
    UnexpectedChar,
    /// A malformed number literal.
    BadNumber,
    /// A malformed string literal or escape sequence.
    BadString,
    /// A `\uXXXX` escape that is not a valid scalar value / surrogate pair.
    BadUnicodeEscape,
    /// Nesting exceeded the parser's `MAX_DEPTH`.
    TooDeep,
    /// `Json::parse` found bytes after the first complete value.
    TrailingData,
}

/// An error produced by [`Json::parse`] or [`Json::parse_prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    kind: ParseJsonErrorKind,
    line: usize,
    col: usize,
    detail: String,
}

impl ParseJsonError {
    /// The category of failure.
    pub fn kind(&self) -> ParseJsonErrorKind {
        self.kind
    }

    /// 1-based line of the offending byte.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the offending byte.
    pub fn col(&self) -> usize {
        self.col
    }
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.detail, self.line, self.col
        )
    }
}

impl Error for ParseJsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseJsonError`] (with line/column) on malformed input or
    /// if non-whitespace bytes follow the first value.
    ///
    /// ```
    /// use askit_json::Json;
    /// let v = Json::parse("[1, 2.5, \"x\"]")?;
    /// assert_eq!(v.get_idx(0), Some(&Json::Int(1)));
    /// assert!(Json::parse("[1] trailing").is_err());
    /// # Ok::<(), askit_json::ParseJsonError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Json, ParseJsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err(ParseJsonErrorKind::TrailingData, "unexpected trailing data"));
        }
        Ok(v)
    }

    /// Parses one JSON value from the front of `text`, returning the value
    /// and the number of bytes consumed (including leading whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseJsonError`] if no valid value starts at the front.
    ///
    /// ```
    /// use askit_json::Json;
    /// let (v, used) = Json::parse_prefix("{\"a\":1} and then prose")?;
    /// assert_eq!(v.get_key("a"), Some(&Json::Int(1)));
    /// assert_eq!(&" and then prose"[..], &"{\"a\":1} and then prose"[used..]);
    /// # Ok::<(), askit_json::ParseJsonError>(())
    /// ```
    pub fn parse_prefix(text: &str) -> Result<(Json, usize), ParseJsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        Ok((v, p.pos))
    }
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ParseJsonErrorKind, detail: impl Into<String>) -> ParseJsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseJsonError {
            kind,
            line,
            col,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(self.err(
                ParseJsonErrorKind::UnexpectedChar,
                format!("expected '{}', found '{}'", b as char, got as char),
            )),
            None => Err(self.err(ParseJsonErrorKind::UnexpectedEof, "unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(
                ParseJsonErrorKind::UnexpectedChar,
                format!("invalid literal, expected '{word}'"),
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(ParseJsonErrorKind::TooDeep, "value nested too deeply"));
        }
        match self.peek() {
            None => Err(self.err(ParseJsonErrorKind::UnexpectedEof, "unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(
                ParseJsonErrorKind::UnexpectedChar,
                format!("unexpected character '{}'", c as char),
            )),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(
                        ParseJsonErrorKind::UnexpectedChar,
                        format!("expected ',' or ']' in array, found '{}'", c as char),
                    ));
                }
                None => {
                    return Err(self.err(ParseJsonErrorKind::UnexpectedEof, "unterminated array"))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(
                        ParseJsonErrorKind::UnexpectedChar,
                        format!("expected ',' or '}}' in object, found '{}'", c as char),
                    ));
                }
                None => {
                    return Err(self.err(ParseJsonErrorKind::UnexpectedEof, "unterminated object"))
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err(ParseJsonErrorKind::BadNumber, "leading zero in number"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => {
                return Err(self.err(ParseJsonErrorKind::BadNumber, "invalid number"));
            }
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ParseJsonErrorKind::BadNumber, "missing digits after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ParseJsonErrorKind::BadNumber, "missing exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            // Overflowing integer literals degrade to float, like JS.
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(ParseJsonErrorKind::BadNumber, "number out of range"))
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err(ParseJsonErrorKind::BadString, "expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(b) = self.bump() else {
                return Err(self.err(ParseJsonErrorKind::UnexpectedEof, "unterminated string"));
            };
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.bump() else {
                        return Err(
                            self.err(ParseJsonErrorKind::UnexpectedEof, "unterminated escape")
                        );
                    };
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a following \uXXXX low surrogate.
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(self.err(
                                        ParseJsonErrorKind::BadUnicodeEscape,
                                        "unpaired high surrogate",
                                    ));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err(
                                        ParseJsonErrorKind::BadUnicodeEscape,
                                        "invalid low surrogate",
                                    ));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                None
                            } else {
                                char::from_u32(hi)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(self.err(
                                        ParseJsonErrorKind::BadUnicodeEscape,
                                        "invalid unicode escape",
                                    ))
                                }
                            }
                        }
                        other => {
                            return Err(self.err(
                                ParseJsonErrorKind::BadString,
                                format!("invalid escape '\\{}'", other as char),
                            ))
                        }
                    }
                }
                0x00..=0x1F => {
                    return Err(self.err(
                        ParseJsonErrorKind::BadString,
                        "unescaped control character in string",
                    ))
                }
                _ => {
                    // Re-sync to a char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(
                            self.err(ParseJsonErrorKind::BadString, "truncated utf-8 sequence")
                        );
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => {
                            return Err(
                                self.err(ParseJsonErrorKind::BadString, "invalid utf-8 in string")
                            )
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.bump() else {
                return Err(self.err(ParseJsonErrorKind::UnexpectedEof, "truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => {
                    return Err(self.err(ParseJsonErrorKind::BadUnicodeEscape, "invalid hex digit"))
                }
            };
            v = v * 16 + d;
        }
        Ok(v)
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Json::Null);
        assert_eq!(parse("true"), Json::Bool(true));
        assert_eq!(parse("false"), Json::Bool(false));
        assert_eq!(parse("0"), Json::Int(0));
        assert_eq!(parse("-42"), Json::Int(-42));
        assert_eq!(parse("3.5"), Json::Float(3.5));
        assert_eq!(parse("-2.5e2"), Json::Float(-250.0));
        assert_eq!(parse("1E+2"), Json::Float(100.0));
        assert_eq!(parse("\"hi\""), Json::Str("hi".into()));
    }

    #[test]
    fn int_float_distinction_is_preserved() {
        assert_eq!(parse("5"), Json::Int(5));
        assert_eq!(parse("5.0"), Json::Float(5.0));
        assert_ne!(parse("5"), parse("5.0"));
    }

    #[test]
    fn huge_integers_degrade_to_float() {
        let v = parse("123456789012345678901234567890");
        assert!(matches!(v, Json::Float(_)));
    }

    #[test]
    fn rejects_bad_numbers() {
        for s in ["01", "1.", ".5", "1e", "--1", "+1", "1e+"] {
            assert!(Json::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn parses_nested_structures_and_whitespace() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] , \"c\" : { } } ");
        assert_eq!(v.pointer("/a/0"), Some(&Json::Int(1)));
        assert!(v.pointer("/a/1/b").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a": 1, "a": 2}"#);
        assert_eq!(v.get_key("a"), Some(&Json::Int(2)));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\/d\b\f\n\r\t""#);
        assert_eq!(v, Json::Str("a\"b\\c/d\u{8}\u{c}\n\r\t".into()));
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse(r#""é""#), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#), Json::Str("😀".into()));
        assert!(
            Json::parse(r#""\uD83D""#).is_err(),
            "unpaired high surrogate"
        );
        assert!(Json::parse(r#""\uDE00""#).is_err(), "lone low surrogate");
        assert!(Json::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn raw_multibyte_utf8_in_strings() {
        assert_eq!(parse("\"héllo 😀\""), Json::Str("héllo 😀".into()));
    }

    #[test]
    fn rejects_control_chars_in_strings() {
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn trailing_data_is_an_error_with_position() {
        let err = Json::parse("[1, 2]\nrest").unwrap_err();
        assert_eq!(err.kind(), ParseJsonErrorKind::TrailingData);
        assert_eq!(err.line(), 2);
        assert_eq!(err.col(), 1);
    }

    #[test]
    fn parse_prefix_reports_consumed_bytes() {
        let (v, used) = Json::parse_prefix("  [1,2] tail").unwrap();
        assert_eq!(v, parse("[1,2]"));
        assert_eq!(&"  [1,2] tail"[used..], " tail");
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.kind(), ParseJsonErrorKind::TooDeep);
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn error_positions_are_one_based() {
        let err = Json::parse("{\"a\": tru}").unwrap_err();
        assert_eq!(err.line(), 1);
        assert_eq!(err.col(), 7);
        assert_eq!(err.kind(), ParseJsonErrorKind::UnexpectedChar);
    }

    #[test]
    fn eof_inside_value_is_reported() {
        for s in ["{\"a\": 1", "[1, 2", "\"abc", "{\"a\""] {
            let err = Json::parse(s).unwrap_err();
            assert_eq!(err.kind(), ParseJsonErrorKind::UnexpectedEof, "for {s:?}");
        }
    }

    #[test]
    fn display_of_error_mentions_position() {
        let msg = Json::parse("nul").unwrap_err().to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }
}
