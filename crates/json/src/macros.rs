//! The [`json!`] construction macro.

/// Builds a [`Json`](crate::Json) value with JSON-like syntax.
///
/// Object keys may be string literals or identifiers; values may be `null`,
/// booleans, literals, nested arrays/objects, or any expression implementing
/// [`ToJson`](crate::ToJson). Compound expressions (including unary minus)
/// must be parenthesized: `json!({"x": (-1)})`.
///
/// # Examples
///
/// ```
/// use askit_json::{json, Json};
///
/// let n = 5i64;
/// let v = json!({
///     "reason": "small cases",
///     answer: [1, (n), true, null],
/// });
/// assert_eq!(v.pointer("/answer/1"), Some(&Json::Int(5)));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    (true) => { $crate::Json::Bool(true) };
    (false) => { $crate::Json::Bool(false) };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Json::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $value:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($crate::json_key!($key), $crate::json!($value)); )*
        $crate::Json::Object(map)
    }};
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Internal helper for [`json!`]: turns a key token into a `String`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    ($key:literal) => {
        ::std::string::String::from($key)
    };
    ($key:ident) => {
        ::std::string::String::from(stringify!($key))
    };
    ($key:expr) => {
        ::std::string::String::from($key)
    };
}

#[cfg(test)]
mod tests {
    use crate::{Json, Map};

    #[test]
    fn literals() {
        assert_eq!(json!(null), Json::Null);
        assert_eq!(json!(true), Json::Bool(true));
        assert_eq!(json!(false), Json::Bool(false));
        assert_eq!(json!(3i64), Json::Int(3));
        assert_eq!(json!("s"), Json::Str("s".into()));
        assert_eq!(json!(2.5f64), Json::Float(2.5));
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = json!({
            "a": [1i64, [2i64], {"b": null}],
            c: "text",
        });
        assert_eq!(v.pointer("/a/1/0"), Some(&Json::Int(2)));
        assert_eq!(v.pointer("/a/2/b"), Some(&Json::Null));
        assert_eq!(v.get_key("c"), Some(&Json::Str("text".into())));
    }

    #[test]
    fn expressions_need_parens() {
        let n = 10i64;
        let v = json!([(n), (n * 2), (-3i64)]);
        assert_eq!(
            v,
            Json::Array(vec![Json::Int(10), Json::Int(20), Json::Int(-3)])
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(json!([]), Json::Array(vec![]));
        assert_eq!(json!({}), Json::Object(Map::new()));
    }

    #[test]
    fn trailing_commas_allowed() {
        let v = json!({ "a": 1i64, });
        assert_eq!(v.get_key("a"), Some(&Json::Int(1)));
        let a = json!([1i64, 2i64,]);
        assert_eq!(a.as_array().unwrap().len(), 2);
    }
}
