//! Property tests: serialization and parsing are inverse operations.

use askit_json::{Json, Map};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values with finite floats (NaN/Inf have
/// no JSON representation) and modest size.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        prop::num::f64::NORMAL.prop_map(Json::Float),
        Just(Json::Float(0.0)),
        "[a-zA-Z0-9 _\\-\\\\\"\n\t\u{e9}\u{1F600}]{0,12}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..6).prop_map(|pairs| {
                let mut m = Map::new();
                for (k, v) in pairs {
                    m.insert(k, v);
                }
                Json::Object(m)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// compact-serialize → parse is the identity.
    #[test]
    fn compact_roundtrip(v in arb_json()) {
        let text = v.to_compact_string();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// pretty-serialize → parse is the identity.
    #[test]
    fn pretty_roundtrip(v in arb_json()) {
        let text = v.to_pretty_string();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Both serializations parse to the same value.
    #[test]
    fn compact_and_pretty_agree(v in arb_json()) {
        let a = Json::parse(&v.to_compact_string()).unwrap();
        let b = Json::parse(&v.to_pretty_string()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Values survive being embedded in a markdown fence and re-extracted —
    /// the exact path the AskIt runtime takes on every model response.
    #[test]
    fn fence_extraction_roundtrip(v in arb_json()) {
        let doc = format!(
            "Here is my answer.\n```json\n{}\n```\nHope that helps!",
            v.to_pretty_string()
        );
        let got = askit_json::extract::extract_json(&doc).unwrap();
        prop_assert_eq!(got, v);
    }

    /// `parse_prefix` consumes exactly the serialized value.
    #[test]
    fn parse_prefix_consumes_exactly(v in arb_json(), tail in "( [a-z]{0,8})?") {
        // A tail that could extend the value (digits etc.) is excluded by the regex.
        let text = format!("{}{}", v.to_compact_string(), tail);
        let (got, used) = Json::parse_prefix(&text).unwrap();
        prop_assert_eq!(got, v.clone());
        prop_assert_eq!(used, v.to_compact_string().len());
    }

    /// loose equality is reflexive.
    #[test]
    fn loose_equality_reflexive(v in arb_json()) {
        prop_assert!(v.loosely_equals(&v));
    }

    /// parsing never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(s in "\\PC{0,64}") {
        let _ = Json::parse(&s);
    }
}
