//! # askit-template
//!
//! Prompt templates with `{{var}}` placeholders (paper §III-B, Listing 1).
//!
//! A [`Template`] is the single artifact a developer writes for a task; the
//! same template drives *both* of AskIt's modes:
//!
//! * for **directly answerable tasks**, the runtime renders it as the task
//!   section of the prompt — placeholders become quoted names and the actual
//!   arguments are appended in a `where 'x' = value` clause (paper Listing 2,
//!   lines 11–12): see [`Template::render_task`];
//! * for **codable tasks**, the compiler renders it as the instruction
//!   comment in the empty function body (paper Figure 4): see
//!   [`Template::render_quoted`] — placeholders become quoted parameter
//!   names, since the generated function receives them as parameters.
//!
//! Placeholder names become the *named parameters* of `define`d functions
//! ("Named parameters are not affected by the appearance order in a template
//! prompt", §III-D).
//!
//! # Examples
//!
//! ```
//! use askit_template::Template;
//! use askit_json::{json, Map};
//!
//! let t = Template::parse("List {{n}} classic books on {{subject}}.")?;
//! assert_eq!(t.params(), ["n", "subject"]);
//!
//! let mut args = Map::new();
//! args.insert("n", json!(5i64));
//! args.insert("subject", json!("computer science"));
//! assert_eq!(
//!     t.render_task(&args)?,
//!     "List 'n' classic books on 'subject'.\nwhere 'n' = 5, 'subject' = \"computer science\""
//! );
//! # Ok::<(), askit_template::TemplateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use askit_json::{Json, Map};

/// One piece of a parsed template: literal text or a placeholder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Literal prompt text.
    Text(String),
    /// A `{{name}}` placeholder.
    Var(String),
}

/// A parsed prompt template.
///
/// See the [crate docs](crate) for the role templates play in AskIt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    source: String,
    segments: Vec<Segment>,
    params: Vec<String>,
}

/// An error from [`Template::parse`] or the render methods.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TemplateError {
    /// A `{{` with no matching `}}`.
    UnclosedPlaceholder {
        /// Byte offset of the `{{`.
        at: usize,
    },
    /// A placeholder whose content is not a valid identifier.
    InvalidIdentifier {
        /// The offending placeholder content.
        name: String,
    },
    /// `render_task`/`render_substituted` was not given a required argument.
    MissingArgument {
        /// The parameter that had no argument.
        name: String,
    },
    /// An argument was supplied that no placeholder mentions.
    UnknownArgument {
        /// The extraneous argument name.
        name: String,
    },
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnclosedPlaceholder { at } => {
                write!(f, "unclosed '{{{{' placeholder at byte {at}")
            }
            TemplateError::InvalidIdentifier { name } => {
                write!(f, "placeholder {name:?} is not a valid identifier")
            }
            TemplateError::MissingArgument { name } => {
                write!(f, "missing argument for parameter '{name}'")
            }
            TemplateError::UnknownArgument { name } => {
                write!(f, "argument '{name}' does not appear in the template")
            }
        }
    }
}

impl Error for TemplateError {}

impl Template {
    /// Parses a template, extracting `{{name}}` placeholders.
    ///
    /// Placeholder names must be identifiers of the host language
    /// (`[A-Za-z_][A-Za-z0-9_]*`, paper §III-B: "The variable name within
    /// this placeholder should be a valid identifier"). Stray single braces
    /// are literal text.
    ///
    /// # Errors
    ///
    /// [`TemplateError::UnclosedPlaceholder`] for a dangling `{{`,
    /// [`TemplateError::InvalidIdentifier`] for a malformed name.
    pub fn parse(source: &str) -> Result<Template, TemplateError> {
        let mut segments = Vec::new();
        let mut params: Vec<String> = Vec::new();
        let mut text = String::new();
        let mut rest = source;
        let mut offset = 0;
        while let Some(open) = rest.find("{{") {
            text.push_str(&rest[..open]);
            let after_open = &rest[open + 2..];
            let Some(close) = after_open.find("}}") else {
                return Err(TemplateError::UnclosedPlaceholder { at: offset + open });
            };
            let raw_name = &after_open[..close];
            let name = raw_name.trim();
            if !is_identifier(name) {
                return Err(TemplateError::InvalidIdentifier {
                    name: raw_name.to_owned(),
                });
            }
            if !text.is_empty() {
                segments.push(Segment::Text(std::mem::take(&mut text)));
            }
            segments.push(Segment::Var(name.to_owned()));
            if !params.iter().any(|p| p == name) {
                params.push(name.to_owned());
            }
            offset += open + 2 + close + 2;
            rest = &after_open[close + 2..];
        }
        text.push_str(rest);
        if !text.is_empty() {
            segments.push(Segment::Text(text));
        }
        Ok(Template {
            source: source.to_owned(),
            segments,
            params,
        })
    }

    /// The original template text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Unique parameter names in order of first appearance.
    pub fn params(&self) -> Vec<&str> {
        self.params.iter().map(String::as_str).collect()
    }

    /// Whether the template has any placeholders.
    pub fn has_params(&self) -> bool {
        !self.params.is_empty()
    }

    /// Renders with every `{{x}}` replaced by `'x'` (paper §III-E: "`{{` and
    /// `}}` in the prompt template are replaced with single quotes").
    ///
    /// ```
    /// use askit_template::Template;
    /// let t = Template::parse("Reverse the string {{s}}.").unwrap();
    /// assert_eq!(t.render_quoted(), "Reverse the string 's'.");
    /// ```
    pub fn render_quoted(&self) -> String {
        let mut out = String::with_capacity(self.source.len());
        for seg in &self.segments {
            match seg {
                Segment::Text(t) => out.push_str(t),
                Segment::Var(v) => {
                    out.push('\'');
                    out.push_str(v);
                    out.push('\'');
                }
            }
        }
        out
    }

    /// Renders the runtime task section (paper Listing 2, lines 11–12):
    /// the quoted form followed by a `where` clause binding each parameter
    /// to its argument, serialized as JSON.
    ///
    /// Templates without parameters render as just the text.
    ///
    /// # Errors
    ///
    /// [`TemplateError::MissingArgument`] if `args` lacks a parameter;
    /// [`TemplateError::UnknownArgument`] if `args` has a key the template
    /// never mentions (catching typos at the call site).
    pub fn render_task(&self, args: &Map) -> Result<String, TemplateError> {
        self.check_args(args)?;
        let mut out = self.render_quoted();
        if !self.params.is_empty() {
            out.push_str("\nwhere ");
            for (i, name) in self.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let value = args.get(name).expect("checked by check_args");
                out.push_str(&format!("'{name}' = {}", value.to_compact_string()));
            }
        }
        Ok(out)
    }

    /// Renders with arguments substituted inline: `{{x}}` becomes the value
    /// itself (strings bare, other values as compact JSON). This is the
    /// "hand-written prompt" style AskIt replaces; the evaluation harness
    /// uses it to build baseline prompts.
    ///
    /// # Errors
    ///
    /// Same as [`Template::render_task`].
    pub fn render_substituted(&self, args: &Map) -> Result<String, TemplateError> {
        self.check_args(args)?;
        let mut out = String::with_capacity(self.source.len());
        for seg in &self.segments {
            match seg {
                Segment::Text(t) => out.push_str(t),
                Segment::Var(v) => {
                    let value = args.get(v).expect("checked by check_args");
                    match value {
                        Json::Str(s) => out.push_str(s),
                        other => out.push_str(&other.to_compact_string()),
                    }
                }
            }
        }
        Ok(out)
    }

    fn check_args(&self, args: &Map) -> Result<(), TemplateError> {
        for name in &self.params {
            if !args.contains_key(name) {
                return Err(TemplateError::MissingArgument { name: name.clone() });
            }
        }
        for (key, _) in args.iter() {
            if !self.params.iter().any(|p| p == key) {
                return Err(TemplateError::UnknownArgument {
                    name: key.to_owned(),
                });
            }
        }
        Ok(())
    }
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_json::json;

    fn args(pairs: &[(&str, Json)]) -> Map {
        pairs.iter().cloned().collect()
    }

    #[test]
    fn parse_splits_text_and_vars() {
        let t = Template::parse("What is the sentiment of {{review}}?").unwrap();
        assert_eq!(
            t.segments(),
            &[
                Segment::Text("What is the sentiment of ".into()),
                Segment::Var("review".into()),
                Segment::Text("?".into()),
            ]
        );
        assert_eq!(t.params(), ["review"]);
    }

    #[test]
    fn params_are_unique_in_first_appearance_order() {
        let t = Template::parse("{{b}} then {{a}} then {{b}} again").unwrap();
        assert_eq!(t.params(), ["b", "a"]);
    }

    #[test]
    fn no_params_is_fine() {
        let t = Template::parse("What is 7 times 8?").unwrap();
        assert!(!t.has_params());
        assert_eq!(t.render_quoted(), "What is 7 times 8?");
        assert_eq!(t.render_task(&Map::new()).unwrap(), "What is 7 times 8?");
    }

    #[test]
    fn whitespace_inside_braces_is_trimmed() {
        let t = Template::parse("x = {{ x }}").unwrap();
        assert_eq!(t.params(), ["x"]);
    }

    #[test]
    fn stray_single_braces_are_literal() {
        let t = Template::parse("a { b } c }} d").unwrap();
        assert_eq!(t.render_quoted(), "a { b } c }} d");
        assert!(t.params().is_empty());
    }

    #[test]
    fn unclosed_placeholder_errors_with_offset() {
        let err = Template::parse("abc {{x").unwrap_err();
        assert_eq!(err, TemplateError::UnclosedPlaceholder { at: 4 });
    }

    #[test]
    fn invalid_identifiers_are_rejected() {
        for bad in ["{{1x}}", "{{a b}}", "{{}}", "{{a-b}}", "{{a.b}}"] {
            assert!(
                matches!(
                    Template::parse(bad),
                    Err(TemplateError::InvalidIdentifier { .. })
                ),
                "{bad} should be rejected"
            );
        }
        assert!(Template::parse("{{_ok}}").is_ok());
        assert!(Template::parse("{{x2}}").is_ok());
    }

    #[test]
    fn render_task_matches_listing_2() {
        let t = Template::parse("List {{n}} classic books on {{subject}}.").unwrap();
        let a = args(&[("n", json!(5i64)), ("subject", json!("computer science"))]);
        assert_eq!(
            t.render_task(&a).unwrap(),
            "List 'n' classic books on 'subject'.\nwhere 'n' = 5, 'subject' = \"computer science\""
        );
    }

    #[test]
    fn render_task_orders_bindings_by_first_appearance() {
        let t = Template::parse("{{y}} before {{x}}").unwrap();
        let a = args(&[("x", json!(1i64)), ("y", json!(2i64))]);
        assert_eq!(
            t.render_task(&a).unwrap(),
            "'y' before 'x'\nwhere 'y' = 2, 'x' = 1"
        );
    }

    #[test]
    fn render_substituted_inlines_values() {
        let t = Template::parse("Determine the sentiment of this review: '{{review}}'.").unwrap();
        let a = args(&[("review", json!("Great!"))]);
        assert_eq!(
            t.render_substituted(&a).unwrap(),
            "Determine the sentiment of this review: 'Great!'."
        );
        let t2 = Template::parse("Sort {{ns}} ascending").unwrap();
        let a2 = args(&[("ns", json!([3i64, 1i64]))]);
        assert_eq!(t2.render_substituted(&a2).unwrap(), "Sort [3,1] ascending");
    }

    #[test]
    fn missing_and_unknown_arguments_are_errors() {
        let t = Template::parse("{{x}}").unwrap();
        assert_eq!(
            t.render_task(&Map::new()).unwrap_err(),
            TemplateError::MissingArgument { name: "x".into() }
        );
        let a = args(&[("x", json!(1i64)), ("typo", json!(2i64))]);
        assert_eq!(
            t.render_task(&a).unwrap_err(),
            TemplateError::UnknownArgument {
                name: "typo".into()
            }
        );
    }

    #[test]
    fn repeated_placeholder_binds_once() {
        let t = Template::parse("{{s}} and {{s}}").unwrap();
        let a = args(&[("s", json!("hi"))]);
        assert_eq!(
            t.render_task(&a).unwrap(),
            "'s' and 's'\nwhere 's' = \"hi\""
        );
    }

    #[test]
    fn adjacent_placeholders() {
        let t = Template::parse("{{a}}{{b}}").unwrap();
        assert_eq!(t.params(), ["a", "b"]);
        assert_eq!(t.render_quoted(), "'a''b'");
    }

    #[test]
    fn source_is_preserved_verbatim() {
        let src =
            "Append {{review}} and {{sentiment}} as a new row in the CSV file named {{filename}}";
        let t = Template::parse(src).unwrap();
        assert_eq!(t.source(), src);
        assert_eq!(t.params(), ["review", "sentiment", "filename"]);
    }
}
