//! # askit-datasets
//!
//! The workloads behind every table and figure of the AskIt paper, rebuilt
//! as deterministic generators plus the oracle knowledge that stands in for
//! GPT's abilities (see DESIGN.md §1 for the substitution argument):
//!
//! * [`top50`] — the 50 common coding tasks of **Table II**;
//! * [`humaneval`] — 164 programming tasks with hand-written reference
//!   solutions, standing in for HumanEval (**Figure 5**);
//! * [`evals`] — 50 prompt-pair benchmarks standing in for OpenAI Evals
//!   (**Figures 6 and 7**);
//! * [`gsm8k`] — a seeded generator of 1,319 grade-school math word
//!   problems (**Table III**).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evals;
pub mod gsm8k;
pub mod humaneval;
pub mod top50;
