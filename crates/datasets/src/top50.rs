//! The 50 common coding tasks of the paper's Table II.
//!
//! The paper asked ChatGPT for the 50 most commonly requested TypeScript
//! coding tasks and implemented each as a one-line `define`. This module
//! carries the same catalogue: template prompt, return/parameter types,
//! example tests, and — standing in for GPT's coding ability — a reference
//! implementation the oracle serves when the compiler asks for code.
//!
//! Five tasks are **Python-ambiguous** (the paper's #11 and #21–#24): their
//! reference implementation depends on knowing the parameter types, which
//! the Python pipeline does not put in the prompt. For those the oracle
//! returns a wrong-assumption implementation when the signature arrives
//! untyped — mechanically reproducing the paper's Python failures.

use askit_core::{example, Example};
use askit_json::Json;
use askit_llm::{CodeTask, Oracle};
use askit_template::Template;
use askit_types::{any, boolean, float, int, list, string, Type};
use minilang::FuncDecl;

/// One Table II task.
#[derive(Debug, Clone)]
pub struct CodingTask {
    /// 1-based task number.
    pub id: usize,
    /// The `define` template prompt.
    pub template: &'static str,
    /// The declared return type.
    pub return_type: Type,
    /// Parameter types (used by the TS pipeline only, as in the paper).
    pub param_types: Vec<(&'static str, Type)>,
    /// Example tests supplied to `define` for validation.
    pub tests: Vec<Example>,
    /// Whether the Python pipeline generates a wrong-assumption body.
    pub py_ambiguous: bool,
    /// Reference implementation (MiniTS source).
    reference: &'static str,
    /// Wrong-assumption implementation served to untyped signatures.
    wrong_when_untyped: Option<&'static str>,
}

impl CodingTask {
    /// The oracle lookup key: the template with quoted parameter names.
    pub fn instruction_key(&self) -> String {
        Template::parse(self.template)
            .expect("catalogue templates are valid")
            .render_quoted()
    }

    /// The reference implementation parsed to an AST.
    pub fn reference_decl(&self) -> FuncDecl {
        minilang::parse_ts(self.reference)
            .expect("catalogue reference parses")
            .functions[0]
            .clone()
    }

    /// The wrong-assumption implementation, if this task has one.
    pub fn wrong_decl(&self) -> Option<FuncDecl> {
        self.wrong_when_untyped.map(|src| {
            minilang::parse_ts(src)
                .expect("catalogue wrong variant parses")
                .functions[0]
                .clone()
        })
    }
}

/// Registers the whole catalogue's coding knowledge with an oracle.
///
/// The skill keys on the instruction comment; when the requesting signature
/// is untyped (`any` parameters — the Python pipeline) and the task is
/// ambiguous, the wrong-assumption body is served instead.
pub fn register_oracle(oracle: &mut Oracle) {
    let entries: Vec<(String, FuncDecl, Option<FuncDecl>)> = tasks()
        .iter()
        .map(|t| {
            (
                t.instruction_key().to_lowercase(),
                t.reference_decl(),
                t.wrong_decl(),
            )
        })
        .collect();
    oracle.add_code_fn("top50", move |task: &CodeTask<'_>| {
        let key = task.instruction.to_lowercase();
        let (_, reference, wrong) = entries.iter().find(|(k, _, _)| *k == key)?;
        // The paper's Python failures come from "the Python variant of AskIt
        // not leveraging parameter types for prompt generation": the wrong
        // assumption is only made when the *Python* pipeline omits the types.
        // (A deliberate `any` in the TypeScript pipeline, like task #21's
        // `{o: any}`, still reads as "a JSON value" to the model.)
        let blind = task.syntax == minilang::Syntax::Py
            && task.params.iter().all(|p| p.ty == askit_types::any());
        match (blind, wrong) {
            (true, Some(w)) => Some(w.clone()),
            _ => Some(reference.clone()),
        }
    });
}

/// Builds the 50-task catalogue.
pub fn tasks() -> Vec<CodingTask> {
    let mut tasks = vec![
        CodingTask {
            id: 1,
            template: "Reverse the string {{s}}.",
            return_type: string(),
            param_types: vec![("s", string())],
            tests: vec![example(&[("s", "hello")], "olleh"), example(&[("s", "")], "")],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): string {\n  return s.split('').reverse().join('');\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 2,
            template: "Calculate the factorial of {{n}}.",
            return_type: int(),
            param_types: vec![("n", int())],
            tests: vec![example(&[("n", 5i64)], 120i64), example(&[("n", 0i64)], 1i64)],
            py_ambiguous: false,
            reference: "export function f({n}: {n: number}): number {\n  let acc = 1;\n  for (let i = 2; i <= n; i++) {\n    acc *= i;\n  }\n  return acc;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 3,
            template: "Concatenate the strings {{ss}}.",
            return_type: string(),
            param_types: vec![("ss", list(string()))],
            tests: vec![example(
                &[("ss", Json::parse(r#"["a","b","c"]"#).unwrap())],
                Json::from("abc"),
            )],
            py_ambiguous: false,
            reference: "export function f({ss}: {ss: string[]}): string {\n  return ss.join('');\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 4,
            template: "Sort the numbers {{ns}} in ascending order.",
            return_type: list(int()),
            param_types: vec![("ns", list(int()))],
            tests: vec![example(
                &[("ns", Json::parse("[3,1,2]").unwrap())],
                Json::parse("[1,2,3]").unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({ns}: {ns: number[]}): number[] {\n  let copy = ns.slice();\n  copy.sort();\n  return copy;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 5,
            template: "Find the largest number in {{ns}}.",
            return_type: int(),
            param_types: vec![("ns", list(int()))],
            tests: vec![example(&[("ns", Json::parse("[4,9,2]").unwrap())], Json::Int(9))],
            py_ambiguous: false,
            reference: "export function f({ns}: {ns: number[]}): number {\n  let best = ns[0];\n  for (const v of ns) {\n    if (v > best) {\n      best = v;\n    }\n  }\n  return best;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 6,
            template: "Check if {{n}} is a palindrome.",
            return_type: boolean(),
            param_types: vec![("n", int())],
            tests: vec![
                example(&[("n", 121i64)], true),
                example(&[("n", 123i64)], false),
            ],
            py_ambiguous: false,
            reference: "export function f({n}: {n: number}): boolean {\n  let t = String(n);\n  return t === t.split('').reverse().join('');\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 7,
            template: "Calculate the sum of all numbers in {{ns}}.",
            return_type: int(),
            param_types: vec![("ns", list(int()))],
            tests: vec![example(&[("ns", Json::parse("[1,2,3]").unwrap())], Json::Int(6))],
            py_ambiguous: false,
            reference: "export function f({ns}: {ns: number[]}): number {\n  let total = 0;\n  for (const v of ns) {\n    total += v;\n  }\n  return total;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 8,
            template: "Calculate the average of all numbers in {{ns}}.",
            return_type: float(),
            param_types: vec![("ns", list(float()))],
            tests: vec![example(&[("ns", Json::parse("[1,2,3,4]").unwrap())], Json::Float(2.5))],
            py_ambiguous: false,
            reference: "export function f({ns}: {ns: number[]}): number {\n  let total = 0;\n  for (const v of ns) {\n    total += v;\n  }\n  return total / ns.length;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 9,
            template: "Count the number of occurrences of {{x}} in {{xs}}.",
            return_type: int(),
            param_types: vec![("xs", list(int())), ("x", int())],
            tests: vec![example(
                &[("xs", Json::parse("[1,2,1,1]").unwrap()), ("x", Json::Int(1))],
                Json::Int(3),
            )],
            py_ambiguous: false,
            reference: "export function f({xs, x}: {xs: number[], x: number}): number {\n  let c = 0;\n  for (const v of xs) {\n    if (v === x) {\n      c += 1;\n    }\n  }\n  return c;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 10,
            template: "Remove all instances of {{x}} from {{xs}}.",
            return_type: list(int()),
            param_types: vec![("xs", list(int())), ("x", int())],
            tests: vec![example(
                &[("xs", Json::parse("[1,2,1,3]").unwrap()), ("x", Json::Int(1))],
                Json::parse("[2,3]").unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({xs, x}: {xs: number[], x: number}): number[] {\n  let out = [];\n  for (const v of xs) {\n    if (v !== x) {\n      out.push(v);\n    }\n  }\n  return out;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 11,
            template: "Return the unique elements in {{xs}}.",
            return_type: list(int()),
            param_types: vec![("xs", list(int()))],
            tests: vec![example(
                &[("xs", Json::parse("[3,1,3,2]").unwrap())],
                Json::parse("[3,1,2]").unwrap(),
            )],
            py_ambiguous: true,
            reference: "export function f({xs}: {xs: number[]}): number[] {\n  let out = [];\n  for (const v of xs) {\n    if (!out.includes(v)) {\n      out.push(v);\n    }\n  }\n  return out;\n}",
            // The paper: "we presumed the parameter type for xs was Array.
            // Contrarily, the generated code assumed it was set" — a set
            // loses the original order.
            wrong_when_untyped: Some(
                "export function f({xs}: {xs: any}): any {\n  let out = [];\n  for (const v of xs) {\n    if (!out.includes(v)) {\n      out.push(v);\n    }\n  }\n  out.sort();\n  return out;\n}",
            ),
        },
        CodingTask {
            id: 12,
            template: "Find the factorial of {{n}}.",
            return_type: int(),
            param_types: vec![("n", int())],
            tests: vec![example(&[("n", 6i64)], 720i64)],
            py_ambiguous: false,
            reference: "export function f({n}: {n: number}): number {\n  if (n <= 1) {\n    return 1;\n  }\n  let acc = 1;\n  for (let i = 2; i <= n; i++) {\n    acc *= i;\n  }\n  return acc;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 13,
            template: "Check if the string {{s}} is a palindrome.",
            return_type: boolean(),
            param_types: vec![("s", string())],
            tests: vec![
                example(&[("s", "racecar")], true),
                example(&[("s", "rust")], false),
            ],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): boolean {\n  return s === s.split('').reverse().join('');\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 14,
            template: "Generate the Fibonacci sequence up to {{n}}.",
            return_type: list(int()),
            param_types: vec![("n", int())],
            tests: vec![example(
                &[("n", 7i64)],
                Json::parse("[0,1,1,2,3,5,8]").unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({n}: {n: number}): number[] {\n  let seq = [];\n  let a = 0;\n  let b = 1;\n  for (let i = 0; i < n; i++) {\n    seq.push(a);\n    let t = a + b;\n    a = b;\n    b = t;\n  }\n  return seq;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 15,
            template: "Find the minimum number in {{ns}}.",
            return_type: int(),
            param_types: vec![("ns", list(int()))],
            tests: vec![example(&[("ns", Json::parse("[4,9,2]").unwrap())], Json::Int(2))],
            py_ambiguous: false,
            reference: "export function f({ns}: {ns: number[]}): number {\n  let best = ns[0];\n  for (const v of ns) {\n    if (v < best) {\n      best = v;\n    }\n  }\n  return best;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 16,
            template: "Convert the string {{s}} to uppercase.",
            return_type: string(),
            param_types: vec![("s", string())],
            tests: vec![example(&[("s", "abc")], "ABC")],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): string {\n  return s.toUpperCase();\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 17,
            template: "Convert the string {{s}} to lowercase.",
            return_type: string(),
            param_types: vec![("s", string())],
            tests: vec![example(&[("s", "AbC")], "abc")],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): string {\n  return s.toLowerCase();\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 18,
            template: "Count the vowels in {{s}}.",
            return_type: int(),
            param_types: vec![("s", string())],
            tests: vec![example(&[("s", "Education")], 5i64)],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): number {\n  let c = 0;\n  for (const ch of s) {\n    if ('aeiou'.includes(ch.toLowerCase())) {\n      c += 1;\n    }\n  }\n  return c;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 19,
            template: "Check if {{s}} contains the substring {{sub}}.",
            return_type: boolean(),
            param_types: vec![("s", string()), ("sub", string())],
            tests: vec![
                example(&[("s", "hello world"), ("sub", "o w")], Json::Bool(true)),
                example(&[("s", "hello"), ("sub", "z")], Json::Bool(false)),
            ],
            py_ambiguous: false,
            reference: "export function f({s, sub}: {s: string, sub: string}): boolean {\n  return s.includes(sub);\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 20,
            template: "Split the string {{s}} by the delimiter {{d}}.",
            return_type: list(string()),
            param_types: vec![("s", string()), ("d", string())],
            tests: vec![example(
                &[("s", "a,b,c"), ("d", ",")],
                Json::parse(r#"["a","b","c"]"#).unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({s, d}: {s: string, d: string}): string[] {\n  return s.split(d);\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 21,
            template: "Convert the JSON object {{o}} into a string.",
            return_type: string(),
            param_types: vec![("o", any())],
            tests: vec![example(
                &[("o", Json::parse(r#"{"a":1}"#).unwrap())],
                Json::from(r#"{"a":1}"#),
            )],
            py_ambiguous: true,
            reference: "export function f({o}: {o: any}): string {\n  return JSON.stringify(o);\n}",
            // Without a type, the model assumed `o` was already a string.
            wrong_when_untyped: Some(
                "export function f({o}: {o: any}): any {\n  return o;\n}",
            ),
        },
        CodingTask {
            id: 22,
            template: "Merge the objects {{a}} and {{b}}.",
            return_type: any(),
            param_types: vec![("a", any()), ("b", any())],
            tests: vec![example(
                &[
                    ("a", Json::parse(r#"{"x":1}"#).unwrap()),
                    ("b", Json::parse(r#"{"y":2}"#).unwrap()),
                ],
                Json::parse(r#"{"x":1,"y":2}"#).unwrap(),
            )],
            py_ambiguous: true,
            reference: "export function f({a, b}: {a: any, b: any}): any {\n  let out = {};\n  for (const k of Object.keys(a)) {\n    out[k] = a[k];\n  }\n  for (const k of Object.keys(b)) {\n    out[k] = b[k];\n  }\n  return out;\n}",
            // Without types, the model assumed lists and concatenated.
            wrong_when_untyped: Some(
                "export function f({a, b}: {a: any, b: any}): any {\n  return a.concat(b);\n}",
            ),
        },
        CodingTask {
            id: 23,
            template: "Get the keys of the object {{o}}.",
            return_type: list(string()),
            param_types: vec![("o", any())],
            tests: vec![example(
                &[("o", Json::parse(r#"{"alpha":1,"beta":2}"#).unwrap())],
                Json::parse(r#"["alpha","beta"]"#).unwrap(),
            )],
            py_ambiguous: true,
            reference: "export function f({o}: {o: any}): string[] {\n  return Object.keys(o);\n}",
            // Without types, the model assumed a list of pairs.
            wrong_when_untyped: Some(
                "export function f({o}: {o: any}): any {\n  let out = [];\n  for (const p of o) {\n    out.push(p[0]);\n  }\n  return out;\n}",
            ),
        },
        CodingTask {
            id: 24,
            template: "Find the difference in days between the dates {{d1}} and {{d2}}.",
            return_type: int(),
            param_types: vec![("d1", string()), ("d2", string())],
            tests: vec![
                example(&[("d1", "2021-01-01"), ("d2", "2021-01-31")], Json::Int(30)),
                example(&[("d1", "2020-02-28"), ("d2", "2020-03-01")], Json::Int(2)),
            ],
            py_ambiguous: true,
            reference: "export function f({d1, d2}: {d1: string, d2: string}): number {\n  let totals = [];\n  for (const ds of [d1, d2]) {\n    let parts = ds.split('-');\n    let y = parseInt(parts[0]);\n    let m = parseInt(parts[1]);\n    let day = parseInt(parts[2]);\n    let mdays = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];\n    let total = (y - 1970) * 365 + Math.floor((y - 1969) / 4) + mdays[m - 1] + (day - 1);\n    if (m > 2 && y % 4 === 0) {\n      total += 1;\n    }\n    totals.push(total);\n  }\n  return abs(totals[0] - totals[1]);\n}",
            // Without types, the model assumed Date objects and subtracted.
            wrong_when_untyped: Some(
                "export function f({d1, d2}: {d1: any, d2: any}): any {\n  return d2 - d1;\n}",
            ),
        },
        CodingTask {
            id: 25,
            template: "Check if {{n}} is a prime number.",
            return_type: boolean(),
            param_types: vec![("n", int())],
            tests: vec![
                example(&[("n", 13i64)], true),
                example(&[("n", 12i64)], false),
                example(&[("n", 1i64)], false),
            ],
            py_ambiguous: false,
            reference: "export function f({n}: {n: number}): boolean {\n  if (n < 2) {\n    return false;\n  }\n  let i = 2;\n  while (i * i <= n) {\n    if (n % i === 0) {\n      return false;\n    }\n    i += 1;\n  }\n  return true;\n}",
            wrong_when_untyped: None,
        },
    ];
    tasks.extend(tasks_26_to_50());
    debug_assert_eq!(tasks.len(), 50);
    tasks
}

fn tasks_26_to_50() -> Vec<CodingTask> {
    vec![
        CodingTask {
            id: 26,
            template: "Compute the greatest common divisor of {{a}} and {{b}}.",
            return_type: int(),
            param_types: vec![("a", int()), ("b", int())],
            tests: vec![example(&[("a", 12i64), ("b", 18i64)], 6i64)],
            py_ambiguous: false,
            reference: "export function f({a, b}: {a: number, b: number}): number {\n  let x = abs(a);\n  let y = abs(b);\n  while (y !== 0) {\n    let t = y;\n    y = x % y;\n    x = t;\n  }\n  return x;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 27,
            template: "Compute the least common multiple of {{a}} and {{b}}.",
            return_type: int(),
            param_types: vec![("a", int()), ("b", int())],
            tests: vec![example(&[("a", 4i64), ("b", 6i64)], 12i64)],
            py_ambiguous: false,
            reference: "export function f({a, b}: {a: number, b: number}): number {\n  let x = abs(a);\n  let y = abs(b);\n  while (y !== 0) {\n    let t = y;\n    y = x % y;\n    x = t;\n  }\n  return abs(a * b) / x;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 28,
            template: "Convert {{c}} degrees Celsius to Fahrenheit.",
            return_type: float(),
            param_types: vec![("c", float())],
            tests: vec![example(&[("c", 100i64)], 212i64), example(&[("c", 0i64)], 32i64)],
            py_ambiguous: false,
            reference: "export function f({c}: {c: number}): number {\n  return c * 9 / 5 + 32;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 29,
            template: "Find the index of {{x}} in {{xs}}.",
            return_type: int(),
            param_types: vec![("xs", list(int())), ("x", int())],
            tests: vec![
                example(&[("xs", Json::parse("[5,6,7]").unwrap()), ("x", Json::Int(6))], Json::Int(1)),
                example(&[("xs", Json::parse("[5]").unwrap()), ("x", Json::Int(9))], Json::Int(-1)),
            ],
            py_ambiguous: false,
            reference: "export function f({xs, x}: {xs: number[], x: number}): number {\n  return xs.indexOf(x);\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 30,
            template: "Check if the list {{xs}} is sorted in ascending order.",
            return_type: boolean(),
            param_types: vec![("xs", list(int()))],
            tests: vec![
                example(&[("xs", Json::parse("[1,2,2,4]").unwrap())], Json::Bool(true)),
                example(&[("xs", Json::parse("[2,1]").unwrap())], Json::Bool(false)),
            ],
            py_ambiguous: false,
            reference: "export function f({xs}: {xs: number[]}): boolean {\n  for (let i = 1; i < xs.length; i++) {\n    if (xs[i - 1] > xs[i]) {\n      return false;\n    }\n  }\n  return true;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 31,
            template: "Capitalize the first letter of each word in {{s}}.",
            return_type: string(),
            param_types: vec![("s", string())],
            tests: vec![example(&[("s", "hello brave world")], "Hello Brave World")],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): string {\n  let out = [];\n  for (const w of s.split(' ')) {\n    if (w.length > 0) {\n      out.push(w.slice(0, 1).toUpperCase() + w.slice(1));\n    } else {\n      out.push(w);\n    }\n  }\n  return out.join(' ');\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 32,
            template: "Trim the whitespace from the string {{s}}.",
            return_type: string(),
            param_types: vec![("s", string())],
            tests: vec![example(&[("s", "  hi  ")], "hi")],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): string {\n  return s.trim();\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 33,
            template: "Repeat the string {{s}} {{n}} times.",
            return_type: string(),
            param_types: vec![("s", string()), ("n", int())],
            tests: vec![example(&[("s", Json::from("ab")), ("n", Json::Int(3))], Json::from("ababab"))],
            py_ambiguous: false,
            reference: "export function f({s, n}: {s: string, n: number}): string {\n  return s.repeat(n);\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 34,
            template: "Find the longest word in the sentence {{s}}.",
            return_type: string(),
            param_types: vec![("s", string())],
            tests: vec![example(&[("s", "the quick brown foxes")], "quick")],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): string {\n  let best = '';\n  for (const w of s.split(' ')) {\n    if (w.length > best.length) {\n      best = w;\n    }\n  }\n  return best;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 35,
            template: "Count the words in the sentence {{s}}.",
            return_type: int(),
            param_types: vec![("s", string())],
            tests: vec![example(&[("s", "one two  three")], 3i64)],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): number {\n  let c = 0;\n  for (const w of s.split(' ')) {\n    if (w.length > 0) {\n      c += 1;\n    }\n  }\n  return c;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 36,
            template: "Compute the absolute value of {{n}}.",
            return_type: float(),
            param_types: vec![("n", float())],
            tests: vec![example(&[("n", Json::Int(-4))], Json::Int(4))],
            py_ambiguous: false,
            reference: "export function f({n}: {n: number}): number {\n  if (n < 0) {\n    return -n;\n  }\n  return n;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 37,
            template: "Round {{x}} to {{d}} decimal places.",
            return_type: float(),
            param_types: vec![("x", float()), ("d", int())],
            // Not approximations of pi: the task is literally "round this".
            #[allow(clippy::approx_constant)]
            tests: vec![example(&[("x", Json::Float(3.14159)), ("d", Json::Int(2))], Json::Float(3.14))],
            py_ambiguous: false,
            reference: "export function f({x, d}: {x: number, d: number}): number {\n  let factor = 10 ** d;\n  return round(x * factor) / factor;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 38,
            template: "Convert the binary string {{b}} to a number.",
            return_type: int(),
            param_types: vec![("b", string())],
            tests: vec![example(&[("b", "1011")], 11i64)],
            py_ambiguous: false,
            reference: "export function f({b}: {b: string}): number {\n  let v = 0;\n  for (const ch of b) {\n    v = v * 2 + parseInt(ch);\n  }\n  return v;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 39,
            template: "Convert the number {{n}} to a binary string.",
            return_type: string(),
            param_types: vec![("n", int())],
            tests: vec![example(&[("n", 11i64)], "1011"), example(&[("n", 0i64)], "0")],
            py_ambiguous: false,
            reference: "export function f({n}: {n: number}): string {\n  if (n === 0) {\n    return '0';\n  }\n  let v = n;\n  let out = '';\n  while (v > 0) {\n    out = String(v % 2) + out;\n    v = Math.floor(v / 2);\n  }\n  return out;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 40,
            template: "Find the second largest number in {{ns}}.",
            return_type: int(),
            param_types: vec![("ns", list(int()))],
            tests: vec![example(&[("ns", Json::parse("[4,9,2,7]").unwrap())], Json::Int(7))],
            py_ambiguous: false,
            reference: "export function f({ns}: {ns: number[]}): number {\n  let copy = ns.slice();\n  copy.sort();\n  return copy[copy.length - 2];\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 41,
            template: "Interleave the lists {{a}} and {{b}}.",
            return_type: list(int()),
            param_types: vec![("a", list(int())), ("b", list(int()))],
            tests: vec![example(
                &[("a", Json::parse("[1,3]").unwrap()), ("b", Json::parse("[2,4]").unwrap())],
                Json::parse("[1,2,3,4]").unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({a, b}: {a: number[], b: number[]}): number[] {\n  let out = [];\n  for (let i = 0; i < a.length; i++) {\n    out.push(a[i]);\n    out.push(b[i]);\n  }\n  return out;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 42,
            template: "Flatten the nested list {{xs}} by one level.",
            return_type: list(int()),
            param_types: vec![("xs", list(list(int())))],
            tests: vec![example(
                &[("xs", Json::parse("[[1,2],[3]]").unwrap())],
                Json::parse("[1,2,3]").unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({xs}: {xs: number[][]}): number[] {\n  let out = [];\n  for (const inner of xs) {\n    for (const v of inner) {\n      out.push(v);\n    }\n  }\n  return out;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 43,
            template: "Compute the dot product of {{a}} and {{b}}.",
            return_type: int(),
            param_types: vec![("a", list(int())), ("b", list(int()))],
            tests: vec![example(
                &[("a", Json::parse("[1,2,3]").unwrap()), ("b", Json::parse("[4,5,6]").unwrap())],
                Json::Int(32),
            )],
            py_ambiguous: false,
            reference: "export function f({a, b}: {a: number[], b: number[]}): number {\n  let total = 0;\n  for (let i = 0; i < a.length; i++) {\n    total += a[i] * b[i];\n  }\n  return total;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 44,
            template: "Find all numbers in {{ns}} greater than {{t}}.",
            return_type: list(int()),
            param_types: vec![("ns", list(int())), ("t", int())],
            tests: vec![example(
                &[("ns", Json::parse("[1,5,3,8]").unwrap()), ("t", Json::Int(3))],
                Json::parse("[5,8]").unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({ns, t}: {ns: number[], t: number}): number[] {\n  let out = [];\n  for (const v of ns) {\n    if (v > t) {\n      out.push(v);\n    }\n  }\n  return out;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 45,
            template: "Compute the running sum of {{ns}}.",
            return_type: list(int()),
            param_types: vec![("ns", list(int()))],
            tests: vec![example(
                &[("ns", Json::parse("[1,2,3]").unwrap())],
                Json::parse("[1,3,6]").unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({ns}: {ns: number[]}): number[] {\n  let out = [];\n  let total = 0;\n  for (const v of ns) {\n    total += v;\n    out.push(total);\n  }\n  return out;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 46,
            template: "Check if {{s}} is a valid email address.",
            return_type: boolean(),
            param_types: vec![("s", string())],
            tests: vec![
                example(&[("s", "a@b.co")], true),
                example(&[("s", "nope")], false),
                example(&[("s", "@b.co")], false),
            ],
            py_ambiguous: false,
            reference: "export function f({s}: {s: string}): boolean {\n  let at = s.indexOf('@');\n  if (at <= 0) {\n    return false;\n  }\n  let rest = s.slice(at + 1);\n  return rest.includes('.') && !rest.includes('@') && rest.length > 2;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 47,
            template: "Pad the number {{n}} with zeros to width {{w}}.",
            return_type: string(),
            param_types: vec![("n", int()), ("w", int())],
            tests: vec![example(&[("n", Json::Int(7)), ("w", Json::Int(3))], Json::from("007"))],
            py_ambiguous: false,
            reference: "export function f({n, w}: {n: number, w: number}): string {\n  return String(n).padStart(w, '0');\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 48,
            template: "Swap the keys and values of the object {{o}}.",
            return_type: any(),
            param_types: vec![("o", any())],
            tests: vec![example(
                &[("o", Json::parse(r#"{"a":"x","b":"y"}"#).unwrap())],
                Json::parse(r#"{"x":"a","y":"b"}"#).unwrap(),
            )],
            py_ambiguous: false,
            reference: "export function f({o}: {o: any}): any {\n  let out = {};\n  for (const k of Object.keys(o)) {\n    out[o[k]] = k;\n  }\n  return out;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 49,
            template: "Compute the median of {{ns}}.",
            return_type: float(),
            param_types: vec![("ns", list(float()))],
            tests: vec![
                example(&[("ns", Json::parse("[3,1,2]").unwrap())], Json::Int(2)),
                example(&[("ns", Json::parse("[4,1,2,3]").unwrap())], Json::Float(2.5)),
            ],
            py_ambiguous: false,
            reference: "export function f({ns}: {ns: number[]}): number {\n  let copy = ns.slice();\n  copy.sort();\n  let mid = Math.floor(copy.length / 2);\n  if (copy.length % 2 === 1) {\n    return copy[mid];\n  }\n  return (copy[mid - 1] + copy[mid]) / 2;\n}",
            wrong_when_untyped: None,
        },
        CodingTask {
            id: 50,
            template: "Generate a list of the first {{n}} square numbers.",
            return_type: list(int()),
            param_types: vec![("n", int())],
            tests: vec![example(&[("n", 4i64)], Json::parse("[1,4,9,16]").unwrap())],
            py_ambiguous: false,
            reference: "export function f({n}: {n: number}): number[] {\n  let out = [];\n  for (let i = 1; i <= n; i++) {\n    out.push(i * i);\n  }\n  return out;\n}",
            wrong_when_untyped: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::pretty::Syntax;
    use minilang::Interp;

    #[test]
    fn catalogue_has_50_distinct_tasks() {
        let all = tasks();
        assert_eq!(all.len(), 50);
        let mut keys: Vec<String> = all.iter().map(CodingTask::instruction_key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 50, "instruction keys must be unique");
        let ambiguous: Vec<usize> = all
            .iter()
            .filter(|t| t.py_ambiguous)
            .map(|t| t.id)
            .collect();
        assert_eq!(ambiguous, [11, 21, 22, 23, 24], "the paper's failing tasks");
    }

    #[test]
    fn every_reference_passes_its_own_tests() {
        for task in tasks() {
            let decl = task.reference_decl();
            let program = minilang::ast::Program {
                functions: vec![decl],
            };
            for (i, t) in task.tests.iter().enumerate() {
                let out = Interp::new(&program)
                    .call_json("f", &t.input)
                    .unwrap_or_else(|e| panic!("task {} test {i}: {e}", task.id));
                assert!(
                    out.loosely_equals(&t.output),
                    "task {} test {i}: expected {}, got {out}",
                    task.id,
                    t.output
                );
            }
        }
    }

    #[test]
    fn every_reference_survives_python_printing() {
        // The oracle prints these ASTs as MiniPy for the Python pipeline;
        // the printed form must re-parse and still pass the tests.
        for task in tasks() {
            let decl = task.reference_decl();
            let py = minilang::print_function(&decl, Syntax::Py);
            let program = minilang::parse_py(&py).unwrap_or_else(|e| {
                panic!("task {}: printed Py does not parse: {e}\n{py}", task.id)
            });
            for (i, t) in task.tests.iter().enumerate() {
                let out = Interp::new(&program)
                    .call_json("f", &t.input)
                    .unwrap_or_else(|e| panic!("task {} (py) test {i}: {e}\n{py}", task.id));
                assert!(
                    out.loosely_equals(&t.output),
                    "task {} (py) test {i}: expected {}, got {out}",
                    task.id,
                    t.output
                );
            }
        }
    }

    #[test]
    fn wrong_variants_fail_at_least_one_test() {
        for task in tasks().iter().filter(|t| t.py_ambiguous) {
            let decl = task
                .wrong_decl()
                .expect("ambiguous tasks carry a wrong variant");
            let program = minilang::ast::Program {
                functions: vec![decl],
            };
            let all_pass = task.tests.iter().all(|t| {
                Interp::new(&program)
                    .call_json("f", &t.input)
                    .map(|out| out.loosely_equals(&t.output))
                    .unwrap_or(false)
            });
            assert!(
                !all_pass,
                "task {}: wrong variant passes all tests",
                task.id
            );
        }
    }

    #[test]
    fn oracle_serves_reference_or_wrong_by_typedness() {
        let mut oracle = Oracle::empty();
        register_oracle(&mut oracle);
        let unique = tasks().into_iter().find(|t| t.id == 11).unwrap();
        let key = unique.instruction_key();
        let typed_params = vec![minilang::ast::Param {
            name: "xs".into(),
            ty: list(int()),
        }];
        let untyped_params = vec![minilang::ast::Param {
            name: "xs".into(),
            ty: any(),
        }];
        let ret = list(int());
        let typed = oracle
            .implement(&CodeTask {
                instruction: &key,
                name: "u",
                params: &typed_params,
                ret: &ret,
                syntax: Syntax::Ts,
            })
            .unwrap();
        let untyped = oracle
            .implement(&CodeTask {
                instruction: &key,
                name: "u",
                params: &untyped_params,
                ret: &ret,
                syntax: Syntax::Py,
            })
            .unwrap();
        assert_ne!(
            typed.body, untyped.body,
            "typedness must select the variant"
        );
    }
}
