//! A GSM8K-like workload: grade-school math word problems (Table III).
//!
//! The paper "converted numerical values surrounded by spaces in the problem
//! description into variables since the generated programs are often reused
//! with different values" — i.e. every GSM8K problem became a template with
//! numeric `{{parameters}}`. This generator produces such problems directly:
//! each one is a story template over parameters `a..d`, a sampled binding,
//! and a hidden arithmetic expression that both defines the ground truth and
//! serves as the oracle's "knowledge" of the problem.
//!
//! Solve rates are gated per `(problem, run)` by a deterministic hash so the
//! TS and Python runs disagree slightly — as the paper's did (1,138 vs 1,159
//! of 1,319 solved) purely from sampling randomness.

use askit_json::{Json, Map};
use askit_llm::{AnswerOutcome, Oracle};
use askit_types::int;
use minilang::build::{add, div, mul, num, ret, sub, var};
use minilang::{Expr, FuncDecl, Interp, Param, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The number of problems in the GSM8K test split.
pub const TEST_SET_SIZE: usize = 1319;

/// Fraction of problems the simulated GPT-4 answers correctly in direct
/// mode (the paper: 1,138/1,319 ≈ 0.863 TS run, 1,159/1,319 ≈ 0.879 Py run).
pub const DIRECT_SOLVE_RATE: f64 = 0.871;

/// Fraction of directly-solved problems whose code generation also succeeds
/// (the paper: 1,114/1,138 ≈ 0.979 and 1,134/1,159 ≈ 0.978).
pub const CODE_SOLVE_RATE: f64 = 0.979;

/// One generated word problem.
#[derive(Debug, Clone)]
pub struct Gsm8kProblem {
    /// 0-based problem id.
    pub id: usize,
    /// The story text with `{{a}}`-style numeric parameters.
    pub template: String,
    /// The original numeric values (used as the test example, as in the
    /// paper: "We used the original values as test examples").
    pub args: Map,
    /// Ground-truth answer.
    pub answer: Json,
    /// Parameter names in order.
    pub params: Vec<&'static str>,
    /// The hidden arithmetic over the parameters.
    pub expr: Expr,
}

impl Gsm8kProblem {
    /// Evaluates the hidden arithmetic under a binding.
    pub fn evaluate(&self, args: &Map) -> Option<Json> {
        let decl = solution_decl(self, "solve");
        let program = Program {
            functions: vec![decl],
        };
        Interp::new(&program).call_json("solve", args).ok()
    }

    /// Whether the simulated model solves this problem directly in the
    /// given run (see [`gate`]).
    pub fn is_direct_solvable(&self, run_seed: u64) -> bool {
        gate(&self.instruction_key(), run_seed, DIRECT_SOLVE_RATE)
    }

    /// Whether code generation also succeeds for this problem in the given
    /// run (conditional on direct solvability, see [`gate`]).
    pub fn is_codable(&self, run_seed: u64) -> bool {
        self.is_direct_solvable(run_seed)
            && gate(
                &self.instruction_key(),
                run_seed.wrapping_add(1),
                CODE_SOLVE_RATE,
            )
    }

    /// The oracle key: the template with quoted parameter names.
    pub fn instruction_key(&self) -> String {
        askit_template::Template::parse(&self.template)
            .expect("generated templates are valid")
            .render_quoted()
    }
}

/// Builds a one-function solution program for a problem.
pub fn solution_decl(problem: &Gsm8kProblem, name: &str) -> FuncDecl {
    FuncDecl {
        name: name.to_owned(),
        params: problem
            .params
            .iter()
            .map(|p| Param {
                name: (*p).to_owned(),
                ty: int(),
            })
            .collect(),
        ret: int(),
        body: vec![ret(problem.expr.clone())],
        exported: true,
        doc: vec![],
    }
}

struct Shape {
    text: &'static str,
    params: &'static [&'static str],
    /// Extra surface-variation slots: TOKEN → pool of spellings. Together
    /// with the NAME pool these keep problem statements (mostly) distinct,
    /// like real GSM8K; the solve gate is keyed on the statement text.
    slots: &'static [(&'static str, &'static [&'static str])],
    sample: fn(&mut StdRng) -> Vec<i64>,
    build: fn() -> Expr,
}

/// The story shapes. Parameter samplers keep every answer a non-negative
/// integer, like real GSM8K answers.
fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            text: "NAME has {{a}} ITEM. NAME buys {{b}} bags with {{c}} ITEM in each bag. How many ITEM does NAME have now?",
            params: &["a", "b", "c"],
            slots: &[("ITEM", &["apples", "oranges", "marbles", "stickers", "coins", "seashells"])],
            sample: |r| vec![r.gen_range(2..60), r.gen_range(2..10), r.gen_range(2..12)],
            build: || add(var("a"), mul(var("b"), var("c"))),
        },
        Shape {
            text: "NAME baked {{a}} ITEM and gave {{b}} of them to friends. NAME sold the rest for {{c}} dollars each. How many dollars did NAME make?",
            params: &["a", "b", "c"],
            slots: &[("ITEM", &["cookies", "muffins", "brownies", "cupcakes", "pies", "tarts"])],
            sample: |r| {
                let a = r.gen_range(12..80);
                vec![a, r.gen_range(1..a), r.gen_range(2..6)]
            },
            build: || mul(sub(var("a"), var("b")), var("c")),
        },
        Shape {
            text: "NAME earns {{a}} dollars per hour and works {{b}} hours this week. After spending {{c}} dollars on ITEM, how many dollars does NAME have left?",
            params: &["a", "b", "c"],
            slots: &[("ITEM", &["groceries", "books", "art supplies", "bus tickets", "snacks", "plants"])],
            sample: |r| {
                let a = r.gen_range(8..30);
                let b = r.gen_range(10..40);
                vec![a, b, r.gen_range(1..a * b)]
            },
            build: || sub(mul(var("a"), var("b")), var("c")),
        },
        Shape {
            text: "NAME and {{a}} friends share {{b}} ITEM equally. How many ITEM does each person get?",
            params: &["a", "b"],
            slots: &[("ITEM", &["candies", "grapes", "crayons", "baseball cards", "beads", "buttons"])],
            sample: |r| {
                let a = r.gen_range(1..7);
                let per = r.gen_range(2..15);
                vec![a, (a + 1) * per]
            },
            build: || div(var("b"), add(var("a"), num(1.0))),
        },
        Shape {
            text: "ORG buys {{a}} boxes of ITEM1 with {{b}} ITEM1 in each box and {{c}} boxes of ITEM2 with {{d}} ITEM2 in each box. How many items are bought in total?",
            params: &["a", "b", "c", "d"],
            slots: &[("ORG", &["A school", "The library", "A club", "The office", "A studio", "The lab"]), ("ITEM1", &["pencils", "markers", "crayons", "erasers"]), ("ITEM2", &["pens", "notebooks", "folders", "rulers"])],
            sample: |r| {
                vec![r.gen_range(2..15), r.gen_range(5..30), r.gen_range(2..15), r.gen_range(5..30)]
            },
            build: || add(mul(var("a"), var("b")), mul(var("c"), var("d"))),
        },
        Shape {
            text: "NAME has {{a}} dollars. NAME spends {{b}} dollars on ITEM1 and {{c}} dollars on ITEM2. How many dollars remain?",
            params: &["a", "b", "c"],
            slots: &[("ITEM1", &["lunch", "a movie ticket", "a puzzle", "a scarf"]), ("ITEM2", &["a book", "a poster", "a plant", "a game"])],
            sample: |r| {
                let b = r.gen_range(3..20);
                let c = r.gen_range(3..20);
                vec![b + c + r.gen_range(1..50), b, c]
            },
            build: || sub(sub(var("a"), var("b")), var("c")),
        },
        Shape {
            text: "Each of the {{a}} shelves in ORG holds {{b}} ITEM1 books and {{c}} ITEM2 books. How many books are there in total?",
            params: &["a", "b", "c"],
            slots: &[("ORG", &["a library", "a bookshop", "the archive", "a study hall", "the lab", "a classroom"]), ("ITEM1", &["red", "new", "hardcover", "large"]), ("ITEM2", &["blue", "old", "paperback", "small"])],
            sample: |r| vec![r.gen_range(2..12), r.gen_range(3..25), r.gen_range(3..25)],
            build: || mul(var("a"), add(var("b"), var("c"))),
        },
        Shape {
            text: "ORG plants {{a}} rows of {{b}} ITEM. Unfortunately {{c}} ITEM do not survive. How many ITEM are left?",
            params: &["a", "b", "c"],
            slots: &[("ORG", &["A farmer", "A gardener", "An orchardist", "A volunteer", "A ranger", "A neighbor"]), ("ITEM", &["trees", "saplings", "bushes", "vines"])],
            sample: |r| {
                let a = r.gen_range(3..20);
                let b = r.gen_range(4..25);
                vec![a, b, r.gen_range(1..a * b)]
            },
            build: || sub(mul(var("a"), var("b")), var("c")),
        },
        Shape {
            text: "NAME reads {{a}} pages per day for {{b}} days, then {{c}} pages per day for {{d}} days. How many pages does NAME read altogether?",
            params: &["a", "b", "c", "d"],
            slots: &[],
            sample: |r| {
                vec![r.gen_range(5..40), r.gen_range(2..10), r.gen_range(5..40), r.gen_range(2..10)]
            },
            build: || add(mul(var("a"), var("b")), mul(var("c"), var("d"))),
        },
        Shape {
            text: "ORG holds {{a}} liters. A pump fills it at {{b}} liters per minute. How many minutes does it take to fill it from empty?",
            params: &["a", "b"],
            slots: &[("ORG", &["A water tank", "A pool", "A barrel", "A cistern", "An aquarium", "A reservoir"])],
            sample: |r| {
                let b = r.gen_range(2..20);
                vec![b * r.gen_range(3..40), b]
            },
            build: || div(var("a"), var("b")),
        },
        Shape {
            text: "NAME buys {{a}} packs of ITEM with {{b}} cards in each pack and gives away {{c}} cards. How many cards does NAME keep?",
            params: &["a", "b", "c"],
            slots: &[("ITEM", &["trading cards", "sports cards", "game cards", "collector cards"])],
            sample: |r| {
                let a = r.gen_range(2..15);
                let b = r.gen_range(5..20);
                vec![a, b, r.gen_range(1..a * b)]
            },
            build: || sub(mul(var("a"), var("b")), var("c")),
        },
        Shape {
            text: "Tickets cost {{a}} dollars for adults and {{b}} dollars for children. A group of {{c}} adults and {{d}} children visits ORG. How many dollars does the group pay?",
            params: &["a", "b", "c", "d"],
            slots: &[("ORG", &["the museum", "the zoo", "the aquarium", "the theater", "the fair", "the planetarium"])],
            sample: |r| {
                vec![r.gen_range(8..30), r.gen_range(3..15), r.gen_range(1..10), r.gen_range(1..15)]
            },
            build: || add(mul(var("a"), var("c")), mul(var("b"), var("d"))),
        },
    ]
}

const NAMES: &[&str] = &[
    "Natalia", "James", "Ken", "Weng", "Betty", "Julie", "Mark", "Sam", "Olivia", "Leah", "Toula",
    "Carlos",
];

/// Generates `count` problems deterministically from `seed`.
pub fn problems(count: usize, seed: u64) -> Vec<Gsm8kProblem> {
    let shapes = shapes();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|id| {
            let shape = &shapes[id % shapes.len()];
            let name = NAMES[rng.gen_range(0..NAMES.len())];
            let mut template = shape.text.replace("NAME", name);
            for (token, pool) in shape.slots {
                let choice = pool[rng.gen_range(0..pool.len())];
                template = template.replace(token, choice);
            }
            let values = (shape.sample)(&mut rng);
            let args: Map = shape
                .params
                .iter()
                .zip(&values)
                .map(|(p, v)| ((*p).to_owned(), Json::Int(*v)))
                .collect();
            let expr = (shape.build)();
            let problem = Gsm8kProblem {
                id,
                template,
                args: args.clone(),
                answer: Json::Null,
                params: shape.params.to_vec(),
                expr,
            };
            let answer = problem
                .evaluate(&args)
                .expect("shapes are total on their samples");
            Gsm8kProblem { answer, ..problem }
        })
        .collect()
}

/// Deterministic per-(task, run) gate used to model "GPT fails this one".
///
/// Keyed on the *template text*, not the problem id: several generated
/// problems can share a template verbatim (shapes without a name slot), and
/// a model either understands a problem statement or it does not —
/// identical statements must share their fate.
pub fn gate(template_key: &str, run_seed: u64, rate: f64) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in template_key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ((h >> 16) % 10_000) as f64 / 10_000.0 < rate
}

/// Registers GSM8K knowledge with the oracle for one run.
///
/// * The **answer skill** recognizes a problem by its quoted template and
///   evaluates the hidden arithmetic on the prompt's bindings — gated by
///   [`DIRECT_SOLVE_RATE`].
/// * The **code skill** serves the one-line solution function — gated, among
///   directly solvable problems, by [`CODE_SOLVE_RATE`].
pub fn register_oracle(oracle: &mut Oracle, problems: &[Gsm8kProblem], run_seed: u64) {
    let answer_index: std::collections::HashMap<String, Gsm8kProblem> = problems
        .iter()
        .map(|p| (p.instruction_key(), p.clone()))
        .collect();
    let code_index = answer_index.clone();

    oracle.add_answer_fn("gsm8k", move |task| {
        let problem = answer_index.get(task.template)?;
        if !gate(task.template, run_seed, DIRECT_SOLVE_RATE) {
            return None; // the model "can't solve this one"
        }
        let answer = problem.evaluate(task.bindings)?;
        Some(AnswerOutcome::new(
            answer,
            "Working through the quantities step by step.".to_owned(),
        ))
    });

    oracle.add_code_fn("gsm8k-code", move |task| {
        let problem = code_index.get(task.instruction)?;
        if !gate(task.instruction, run_seed, DIRECT_SOLVE_RATE) {
            return None;
        }
        if !gate(task.instruction, run_seed.wrapping_add(1), CODE_SOLVE_RATE) {
            return None;
        }
        Some(solution_decl(problem, "solve"))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_sized() {
        let a = problems(50, 7);
        let b = problems(50, 7);
        assert_eq!(a.len(), 50);
        assert_eq!(a[10].template, b[10].template);
        assert_eq!(a[10].answer, b[10].answer);
        let c = problems(50, 8);
        assert!(
            (0..50).any(|i| a[i].args != c[i].args),
            "different seeds should differ"
        );
    }

    #[test]
    fn answers_are_nonnegative_integers() {
        for p in problems(200, 42) {
            let Json::Int(v) = p.answer else {
                panic!("problem {} answer {} is not an integer", p.id, p.answer)
            };
            assert!(v >= 0, "problem {}: negative answer {v}", p.id);
        }
    }

    #[test]
    fn templates_parse_and_quote() {
        for p in problems(24, 1) {
            let key = p.instruction_key();
            assert!(!key.contains("{{"), "{key}");
            for param in &p.params {
                assert!(key.contains(&format!("'{param}'")), "{key}");
            }
        }
    }

    #[test]
    fn evaluate_matches_reparametrization() {
        // The generated solution must be reusable with different values —
        // the paper's reason for templating.
        let p = &problems(12, 3)[0]; // shape 1: a + b*c
        let mut args = Map::new();
        args.insert("a", Json::Int(10));
        args.insert("b", Json::Int(2));
        args.insert("c", Json::Int(5));
        assert_eq!(p.evaluate(&args), Some(Json::Int(20)));
    }

    #[test]
    fn gate_is_deterministic_and_near_rate() {
        let ps = problems(TEST_SET_SIZE, 99);
        let hits = ps.iter().filter(|p| p.is_direct_solvable(99)).count();
        let rate = hits as f64 / TEST_SET_SIZE as f64;
        assert!((rate - DIRECT_SOLVE_RATE).abs() < 0.06, "observed {rate}");
        assert_eq!(gate("k", 99, 0.5), gate("k", 99, 0.5));
        assert!(gate("k", 1, 1.0));
        assert!(!gate("k", 1, 0.0));
        // Identical templates share their fate within a run.
        let a = &ps[4];
        let twin = ps.iter().skip(5).find(|q| q.template == a.template);
        if let Some(twin) = twin {
            assert_eq!(a.is_direct_solvable(7), twin.is_direct_solvable(7));
        }
    }

    #[test]
    fn oracle_solves_gated_problems_only() {
        let ps = problems(40, 11);
        let mut oracle = Oracle::empty();
        register_oracle(&mut oracle, &ps, 1234);
        let mut solved = 0;
        for p in &ps {
            let task = askit_llm::AnswerTask {
                template: &p.instruction_key(),
                bindings: &p.args,
                answer_type: &int(),
            };
            if let Some(out) = oracle.answer(&task) {
                assert_eq!(out.answer, p.answer, "problem {}", p.id);
                solved += 1;
            }
        }
        assert!(
            solved >= 30,
            "most problems should be solvable, got {solved}/40"
        );
        assert!(solved < 40, "some problems should fail the gate");
    }

    #[test]
    fn code_skill_produces_runnable_solutions() {
        let ps = problems(12, 5);
        let mut oracle = Oracle::empty();
        register_oracle(&mut oracle, &ps, 77);
        let mut served = 0;
        for p in &ps {
            let key = p.instruction_key();
            let params: Vec<Param> = p
                .params
                .iter()
                .map(|n| Param {
                    name: (*n).to_owned(),
                    ty: int(),
                })
                .collect();
            let ret_ty = int();
            let task = askit_llm::CodeTask {
                instruction: &key,
                name: "solve",
                params: &params,
                ret: &ret_ty,
                syntax: minilang::Syntax::Ts,
            };
            if let Some(decl) = oracle.implement(&task) {
                let program = Program {
                    functions: vec![decl],
                };
                let out = Interp::new(&program).call_json("solve", &p.args).unwrap();
                assert_eq!(out, p.answer, "problem {}", p.id);
                served += 1;
            }
        }
        assert!(
            served >= 8,
            "most problems should be codable, got {served}/12"
        );
    }
}
