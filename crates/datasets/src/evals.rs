//! An OpenAI-Evals-like benchmark: 50 prompt pairs (Figures 6 and 7).
//!
//! Each benchmark carries the **original prompt** — the task text plus the
//! hand-written format directives a prompt engineer needs when there is no
//! type system ("respond with a single line in the format (x, y)") — and the
//! **AskIt form**: the same task as a template plus an answer type. The
//! format directives are exactly what type-guided output control makes
//! redundant, so the character reduction (Figure 6) is
//! `len(original) − len(task text)`, and the types feed the usage counts of
//! Figure 7. The paper measured a 16.14% mean reduction.

use askit_json::{Json, Map};
use askit_types::{any, boolean, dict, float, list, literal, string, union, Type};

/// One benchmark: a prompt pair plus the expected answer type.
#[derive(Debug, Clone)]
pub struct EvalBenchmark {
    /// Benchmark name (mimicking the evals registry naming style).
    pub name: &'static str,
    /// The task content (also the AskIt template; several have parameters).
    pub task: &'static str,
    /// The format directive the original prompt needed.
    pub directive: &'static str,
    /// Arguments for the first test case.
    pub args: Map,
    /// The expected answer type in the AskIt version.
    pub answer_type: Type,
}

/// Harness instructions real evals prompts carry around the task content.
/// These stay in *both* prompt forms — AskIt removes format directives, not
/// task context.
const CONTEXTS: &[&str] = &[
    "You are an expert evaluator taking part in a benchmark run. Read the exercise below carefully; it may contain irrelevant or distracting details, and your job is to answer exactly what is asked, reasoning step by step before you settle on a final answer.",
    "The following is one item from an evaluation suite used to measure language-model reliability. Consider the input thoroughly, take into account any edge cases, and be precise: graders compare your final answer mechanically against a gold label.",
    "Below is an exercise submitted by a real user of a production assistant. Treat it the way a careful human expert would: identify what is being asked, work through the relevant facts or computations, and commit to a single best answer.",
    "This task is part of an automated regression test for an AI application. The surrounding system will consume your answer programmatically, so correctness matters more than style. Think about the question from first principles before answering.",
    "You will be shown a short exercise. Some exercises involve text analysis, some involve arithmetic, and some involve general knowledge; in every case, answer based only on the information given plus well-established common knowledge.",
];

impl EvalBenchmark {
    /// The shared harness context for this benchmark (present in both
    /// prompt forms).
    pub fn context(&self) -> &'static str {
        let mut h: usize = 0;
        for b in self.name.bytes() {
            h = h.wrapping_mul(31).wrapping_add(b as usize);
        }
        CONTEXTS[h % CONTEXTS.len()]
    }

    /// The original (pre-AskIt) prompt: harness context, task text with
    /// values inlined, then the hand-written format directive.
    pub fn original_prompt(&self) -> String {
        format!(
            "{}\n\n{} {}",
            self.context(),
            self.rendered_task(),
            self.directive
        )
    }

    /// The AskIt prompt content the developer writes: context and task,
    /// with the format directive gone (the type system supplies it).
    pub fn askit_prompt(&self) -> String {
        format!("{}\n\n{}", self.context(), self.rendered_task())
    }

    /// Character reduction achieved by AskIt (Figure 6's x-axis).
    pub fn reduction(&self) -> usize {
        self.original_prompt().len() - self.askit_prompt().len()
    }

    fn rendered_task(&self) -> String {
        let template =
            askit_template::Template::parse(self.task).expect("catalogue templates are valid");
        template
            .render_substituted(&self.args)
            .expect("catalogue args are complete")
    }
}

fn arg(name: &str, v: Json) -> Map {
    let mut m = Map::new();
    m.insert(name, v);
    m
}

/// Builds the 50-benchmark catalogue.
///
/// The answer-type distribution follows Figure 7: `string` dominates the
/// top level, then `number` and `boolean`, with objects, arrays, unions and
/// literals in the tail.
pub fn benchmarks() -> Vec<EvalBenchmark> {
    vec![
        EvalBenchmark {
            name: "2d-movement",
            task: "A robot starts at (0, 0) and executes the moves {{moves}}. Where does it end up?",
            directive: "Please note: In the following EXERCISE, it is essential that you only respond with a single line in the format (x, y).",
            args: arg("moves", Json::from("up, up, left")),
            answer_type: dict([("x", float()), ("y", float())]),
        },
        EvalBenchmark {
            name: "sentiment-basic",
            task: "Decide the sentiment of this review: {{review}}",
            directive: "Reply with exactly one word, either positive or negative, in lowercase and nothing else.",
            args: arg("review", Json::from("Loved it, would buy again")),
            answer_type: union([literal("positive"), literal("negative")]),
        },
        EvalBenchmark {
            name: "arith-add",
            task: "Compute {{a}} + {{b}}.",
            directive: "Output only the number with no commentary.",
            args: [("a", Json::Int(17)), ("b", Json::Int(25))].into_iter().collect(),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "capital-city",
            task: "What is the capital city of {{country}}?",
            directive: "Answer with just the city name.",
            args: arg("country", Json::from("Japan")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "is-even",
            task: "Is {{n}} an even number?",
            directive: "Respond with exactly 'true' or 'false' and nothing more.",
            args: arg("n", Json::Int(42)),
            answer_type: boolean(),
        },
        EvalBenchmark {
            name: "list-primes",
            task: "List the prime numbers less than {{n}}.",
            directive: "Format the answer as a comma-separated list of integers on one line, e.g. 2, 3, 5.",
            args: arg("n", Json::Int(20)),
            answer_type: list(float()),
        },
        EvalBenchmark {
            name: "translate-fr",
            task: "Translate the following sentence into French: {{text}}",
            directive: "Reply with the translation only; do not add quotes or explanations.",
            args: arg("text", Json::from("The weather is nice today.")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "summarize-one-line",
            task: "Summarize this paragraph in one sentence: {{paragraph}}",
            directive: "Your entire reply must be a single sentence of at most 20 words.",
            args: arg("paragraph", Json::from("The committee met for three hours to discuss the budget. After much debate, they agreed to increase research funding by ten percent while cutting administrative costs.")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "extract-email",
            task: "Extract the email address from this text: {{text}}",
            directive: "Output the address alone on one line; if none, output NONE.",
            args: arg("text", Json::from("Contact Joan at joan@example.com for details.")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "yes-no-capital",
            task: "Is {{city}} the capital of {{country}}?",
            directive: "Answer strictly yes or no, lowercase, no punctuation.",
            args: [("city", Json::from("Sydney")), ("country", Json::from("Australia"))]
                .into_iter()
                .collect(),
            answer_type: union([literal("yes"), literal("no")]),
        },
        EvalBenchmark {
            name: "word-count",
            task: "How many words are in this sentence: {{sentence}}",
            directive: "Reply with a single integer only.",
            args: arg("sentence", Json::from("brevity is the soul of wit")),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "name-parts",
            task: "Split the full name {{name}} into its parts.",
            directive: "Respond as JSON with keys \"first\" and \"last\", double-quoted, no trailing text.",
            args: arg("name", Json::from("Ada Lovelace")),
            answer_type: dict([("first", string()), ("last", string())]),
        },
        EvalBenchmark {
            name: "anagram-check",
            task: "Are {{a}} and {{b}} anagrams of each other?",
            directive: "Respond with exactly 'true' or 'false'.",
            args: [("a", Json::from("listen")), ("b", Json::from("silent"))].into_iter().collect(),
            answer_type: boolean(),
        },
        EvalBenchmark {
            name: "next-in-sequence",
            task: "What is the next number in the sequence {{seq}}?",
            directive: "Output only the number.",
            args: arg("seq", Json::from("2, 4, 8, 16")),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "rhyme-pick",
            task: "Which of these words rhymes with {{word}}: {{options}}?",
            directive: "Answer with the single matching word and nothing else.",
            args: [("word", Json::from("light")), ("options", Json::from("night, lamp, tree"))]
                .into_iter()
                .collect(),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "classify-language",
            task: "Identify the language of this text: {{text}}",
            directive: "Reply with the English name of the language, one word.",
            args: arg("text", Json::from("Guten Morgen, wie geht es dir?")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "roman-numeral",
            task: "Convert {{n}} to a Roman numeral.",
            directive: "Uppercase letters only, no spaces, nothing else in the reply.",
            args: arg("n", Json::Int(49)),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "celsius-convert",
            task: "Convert {{c}} degrees Celsius to Fahrenheit.",
            directive: "Give just the numeric value rounded to one decimal place.",
            args: arg("c", Json::Int(37)),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "odd-one-out",
            task: "Which word does not belong: {{words}}?",
            directive: "Name only the word that does not belong.",
            args: arg("words", Json::from("apple, banana, carrot, cherry")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "count-vowels",
            task: "Count the vowels in {{word}}.",
            directive: "Answer with one integer and no explanation.",
            args: arg("word", Json::from("encyclopedia")),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "book-recommend",
            task: "Recommend {{n}} classic books on {{subject}}.",
            directive: "Format: a JSON array of objects with fields \"title\", \"author\" and \"year\" (a number). Output the JSON only, no markdown, no commentary before or after, and ensure it parses.",
            args: [("n", Json::Int(3)), ("subject", Json::from("computer science"))]
                .into_iter()
                .collect(),
            answer_type: list(dict([
                ("title", string()),
                ("author", string()),
                ("year", float()),
            ])),
        },
        EvalBenchmark {
            name: "spam-detect",
            task: "Is this message spam? {{message}}",
            directive: "Reply spam or ham, lowercase, one word.",
            args: arg("message", Json::from("WIN a FREE cruise!!! Click now")),
            answer_type: union([literal("spam"), literal("ham")]),
        },
        EvalBenchmark {
            name: "date-extract",
            task: "Extract the date mentioned in: {{text}}",
            directive: "Use ISO format YYYY-MM-DD and output the date alone.",
            args: arg("text", Json::from("The invoice is due on March 5th, 2024.")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "sort-numbers",
            task: "Sort these numbers ascending: {{ns}}",
            directive: "Output them space-separated on one line, smallest first, no brackets.",
            args: arg("ns", Json::from("9 3 7 1")),
            answer_type: list(float()),
        },
        EvalBenchmark {
            name: "chemical-symbol",
            task: "What is the chemical symbol for {{element}}?",
            directive: "Answer with the symbol only.",
            args: arg("element", Json::from("gold")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "plural-form",
            task: "Give the plural of {{word}}.",
            directive: "One word answer only.",
            args: arg("word", Json::from("analysis")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "tip-calc",
            task: "A bill is {{bill}} dollars. How much is a {{pct}} percent tip?",
            directive: "Answer with the dollar amount as a plain number, two decimals, no $ sign.",
            args: [("bill", Json::Int(80)), ("pct", Json::Int(15))].into_iter().collect(),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "acronym-expand",
            task: "What does the acronym {{acronym}} stand for?",
            directive: "Reply with the expansion only, in title case.",
            args: arg("acronym", Json::from("CPU")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "hex-to-dec",
            task: "Convert the hexadecimal number {{hex}} to decimal.",
            directive: "Output the decimal integer only.",
            args: arg("hex", Json::from("1F")),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "fact-check",
            task: "True or false: {{claim}}",
            directive: "Respond with exactly 'true' or 'false', lowercase.",
            args: arg("claim", Json::from("The Pacific is the largest ocean.")),
            answer_type: boolean(),
        },
        EvalBenchmark {
            name: "emoji-meaning",
            task: "What emotion does this emoji convey: {{emoji}}?",
            directive: "Answer with a single lowercase word.",
            args: arg("emoji", Json::from("😢")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "age-question",
            task: "If someone was born in {{year}}, how old are they in 2023?",
            directive: "Answer with the number alone.",
            args: arg("year", Json::Int(1990)),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "keyword-extract",
            task: "Extract the three most important keywords from: {{text}}",
            directive: "Return a JSON array of exactly three lowercase strings and nothing else, e.g. [\"a\", \"b\", \"c\"].",
            args: arg("text", Json::from("Quantum computing promises exponential speedups for certain optimization problems in cryptography.")),
            answer_type: list(string()),
        },
        EvalBenchmark {
            name: "opposite-word",
            task: "What is the opposite of {{word}}?",
            directive: "One word only.",
            args: arg("word", Json::from("generous")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "scrabble-score",
            task: "What is the Scrabble score of the word {{word}}?",
            directive: "Reply with only the integer score.",
            args: arg("word", Json::from("quiz")),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "movie-year",
            task: "In what year was the movie {{title}} released?",
            directive: "Output the four-digit year only.",
            args: arg("title", Json::from("Casablanca")),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "password-strength",
            task: "Rate the strength of this password: {{password}}",
            directive: "Answer with exactly one of: weak, medium, strong.",
            args: arg("password", Json::from("hunter2")),
            answer_type: union([literal("weak"), literal("medium"), literal("strong")]),
        },
        EvalBenchmark {
            name: "haiku-syllables",
            task: "How many syllables are in the word {{word}}?",
            directive: "Respond with a single digit.",
            args: arg("word", Json::from("wonderful")),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "ingredient-list",
            task: "List the main ingredients of {{dish}}.",
            directive: "Return a JSON array of lowercase ingredient names, valid JSON only, no prose.",
            args: arg("dish", Json::from("guacamole")),
            answer_type: list(string()),
        },
        EvalBenchmark {
            name: "currency-symbol",
            task: "What currency is used in {{country}}?",
            directive: "Answer with the currency name only.",
            args: arg("country", Json::from("Switzerland")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "grammar-fix",
            task: "Correct the grammar in this sentence: {{sentence}}",
            directive: "Reply with the corrected sentence only, preserving the original meaning.",
            args: arg("sentence", Json::from("She don't like apples")),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "triangle-type",
            task: "A triangle has sides {{a}}, {{b}} and {{c}}. What type is it?",
            directive: "Answer with exactly one of: equilateral, isosceles, scalene.",
            args: [("a", Json::Int(3)), ("b", Json::Int(3)), ("c", Json::Int(3))]
                .into_iter()
                .collect(),
            answer_type: union([
                literal("equilateral"),
                literal("isosceles"),
                literal("scalene"),
            ]),
        },
        EvalBenchmark {
            name: "stock-mood",
            task: "Classify the market mood of this headline: {{headline}}",
            directive: "One of bullish/bearish/neutral, lowercase, nothing else.",
            args: arg("headline", Json::from("Shares plunge as forecasts disappoint")),
            answer_type: union([literal("bullish"), literal("bearish"), literal("neutral")]),
        },
        EvalBenchmark {
            name: "unit-convert",
            task: "Convert {{miles}} miles to kilometers.",
            directive: "Numeric answer only, two decimal places.",
            args: arg("miles", Json::Int(26)),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "contact-card",
            task: "Build a contact card from: {{text}}",
            directive: "Respond as a JSON object with keys \"name\", \"phone\" and \"city\" (all strings). Output must be parseable JSON with those exact keys and no additional keys or text.",
            args: arg("text", Json::from("Call Maria in Lisbon at 555-0181.")),
            answer_type: dict([("name", string()), ("phone", string()), ("city", string())]),
        },
        EvalBenchmark {
            name: "todo-priority",
            task: "Assign a priority to this task: {{task}}",
            directive: "Reply with high, medium or low only.",
            args: arg("task", Json::from("Fix the production outage")),
            answer_type: union([literal("high"), literal("medium"), literal("low")]),
        },
        EvalBenchmark {
            name: "count-sentences",
            task: "How many sentences does this paragraph contain? {{paragraph}}",
            directive: "Answer with one integer.",
            args: arg("paragraph", Json::from("It rained. We stayed in. The fire crackled.")),
            answer_type: float(),
        },
        EvalBenchmark {
            name: "color-mix",
            task: "What color do you get by mixing {{c1}} and {{c2}}?",
            directive: "One lowercase word.",
            args: [("c1", Json::from("blue")), ("c2", Json::from("yellow"))].into_iter().collect(),
            answer_type: string(),
        },
        EvalBenchmark {
            name: "misc-json",
            task: "Describe the planet {{planet}} in terms of its order from the sun and whether it has rings.",
            directive: "Respond as JSON: {\"order\": <number>, \"rings\": <true|false>} — JSON only, no markdown fences, no commentary.",
            args: arg("planet", Json::from("Saturn")),
            answer_type: dict([("order", float()), ("rings", boolean())]),
        },
        EvalBenchmark {
            name: "free-response",
            task: "Suggest a name for a coffee shop near a library.",
            directive: "Reply with the name only, in plain text.",
            args: Map::new(),
            answer_type: any(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use askit_types::stats::{TypeStats, TypeTag};

    #[test]
    fn catalogue_has_50_benchmarks() {
        let all = benchmarks();
        assert_eq!(all.len(), 50);
        let mut names: Vec<&str> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 50, "names must be unique");
    }

    #[test]
    fn reductions_are_positive_and_mean_is_near_the_paper() {
        let all = benchmarks();
        let mut fractions = Vec::new();
        for b in &all {
            let red = b.reduction();
            assert!(red > 0, "{}: reduction must be positive", b.name);
            fractions.push(red as f64 / b.original_prompt().len() as f64);
        }
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        // Paper: 16.14% mean reduction. Accept a sensible band around it.
        assert!(
            (0.08..0.30).contains(&mean),
            "mean reduction fraction {mean}"
        );
    }

    #[test]
    fn type_distribution_matches_figure_7() {
        let all = benchmarks();
        let stats = TypeStats::collect(all.iter().map(|b| &b.answer_type));
        // Figure 7: string is the most frequent top-level type,
        // then number, then boolean.
        let s = stats.count(TypeTag::String, false);
        let n = stats.count(TypeTag::Number, false);
        let b = stats.count(TypeTag::Boolean, false);
        assert!(s > n, "string ({s}) must beat number ({n})");
        assert!(n > b, "number ({n}) must beat boolean ({b})");
        // Literals are frequent among all types though absent at top level.
        assert_eq!(stats.count(TypeTag::Literal, false), 0);
        assert!(stats.count(TypeTag::Literal, true) >= 10);
        // Arrays, objects and unions all appear.
        assert!(stats.count(TypeTag::Array, false) >= 3);
        assert!(stats.count(TypeTag::Object, false) >= 3);
        assert!(stats.count(TypeTag::Union, false) >= 2);
    }

    #[test]
    fn original_prompts_contain_their_directives() {
        for b in benchmarks() {
            assert!(b.original_prompt().contains(b.directive), "{}", b.name);
            assert!(!b.askit_prompt().contains(b.directive), "{}", b.name);
        }
    }

    #[test]
    fn templates_render_with_their_args() {
        for b in benchmarks() {
            // rendered_task panics on mismatched args; reaching here is the test.
            let _ = b.askit_prompt();
        }
    }
}
