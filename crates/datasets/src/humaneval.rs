//! A HumanEval-like benchmark: 164 programming tasks with hand-written
//! reference solutions (the paper's Figure 5 workload).
//!
//! Tasks come from 12 problem families, each instantiated with 14 different
//! constants (168, truncated to HumanEval's 164). Every task carries:
//!
//! * a **reference solution** — the "hand-written code" axis of Figure 5;
//! * a **model solution** in an independent style — what the oracle serves
//!   as "generated code", deliberately shorter than the reference for about
//!   a third of the families (the paper found 35.3% of generated solutions
//!   shorter than the hand-written ones);
//! * test cases (outputs computed from the reference), used as validation
//!   examples exactly as the paper used HumanEval's tests;
//! * a **hard** flag on ~1/7 of tasks: the oracle refuses those, the mock
//!   hallucinates, validation fails — reproducing the 139/164 ≈ 84.8%
//!   success rate.

use askit_core::Example;
use askit_json::{Json, Map};
use askit_llm::Oracle;
use askit_types::{boolean, int, list, string, Type};
use minilang::{FuncDecl, Interp, Program};

/// One HumanEval-like task.
#[derive(Debug, Clone)]
pub struct HumanEvalTask {
    /// 0-based task id.
    pub id: usize,
    /// The `define` template prompt.
    pub prompt: String,
    /// Declared return type.
    pub return_type: Type,
    /// Parameter types.
    pub param_types: Vec<(&'static str, Type)>,
    /// Validation examples (the benchmark's test cases).
    pub tests: Vec<Example>,
    /// Few-shot examples (the docstring examples of real HumanEval).
    pub few_shot: Vec<Example>,
    /// The hand-written reference solution (MiniTS).
    pub reference_source: String,
    /// The independent model-style solution (MiniTS).
    pub model_source: String,
    /// Whether the simulated model cannot solve this task.
    pub hard: bool,
}

impl HumanEvalTask {
    /// The oracle key for this task.
    pub fn instruction_key(&self) -> String {
        askit_template::Template::parse(&self.prompt)
            .expect("catalogue prompts are valid")
            .render_quoted()
    }

    /// Hand-written LOC (Figure 5's x-axis).
    pub fn reference_loc(&self) -> usize {
        minilang::loc::count_loc(&self.reference_source)
    }
}

/// A parameter-name / type-constructor pair of a task family.
type ParamSpec = (&'static str, fn() -> Type);

struct Family {
    params: &'static [ParamSpec],
    ret: fn() -> Type,
    prompt: fn(usize) -> String,
    reference: fn(usize) -> String,
    model: fn(usize) -> String,
    inputs: fn(usize) -> Vec<Map>,
}

const LETTERS: &[char] = &[
    'a', 'e', 'o', 'r', 't', 'n', 's', 'l', 'c', 'd', 'm', 'u', 'g', 'b',
];

fn ns_inputs(_k: usize) -> Vec<Map> {
    ["[1,5,12,7]", "[3]", "[]"]
        .iter()
        .map(|src| {
            let mut m = Map::new();
            m.insert("ns", Json::parse(src).unwrap());
            m
        })
        .collect()
}

fn s_inputs(k: usize) -> Vec<Map> {
    let letter = LETTERS[k % LETTERS.len()];
    [
        format!("banana {letter} cabbage {letter}"),
        "xyz".to_owned(),
        format!("{letter}"),
    ]
    .iter()
    .map(|s| {
        let mut m = Map::new();
        m.insert("s", Json::from(s.as_str()));
        m
    })
    .collect()
}

fn n_inputs(k: usize) -> Vec<Map> {
    [10 + k as i64, 37, 1]
        .iter()
        .map(|n| {
            let mut m = Map::new();
            m.insert("n", Json::Int(*n));
            m
        })
        .collect()
}

fn families() -> Vec<Family> {
    vec![
        // F1: sum of multiples — reference loops, model uses the closed form.
        Family {
            params: &[("n", int)],
            ret: int,
            prompt: |k| {
                format!("Compute the sum of all multiples of {k} from {k} up to {{{{n}}}}.")
            },
            reference: |k| {
                format!(
                "export function f({{n}}: {{n: number}}): number {{\n  let total = 0;\n  let i = {k};\n  while (i <= n) {{\n    total += i;\n    i += {k};\n  }}\n  return total;\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{n}}: {{n: number}}): number {{\n  let m = Math.floor(n / {k});\n  return {k} * m * (m + 1) / 2;\n}}"
            )
            },
            inputs: n_inputs,
        },
        // F2: count a letter — reference loops, model splits.
        Family {
            params: &[("s", string)],
            ret: int,
            prompt: |k| {
                format!(
                    "Count how many times the letter {} appears in {{{{s}}}}.",
                    LETTERS[k % LETTERS.len()]
                )
            },
            reference: |k| {
                format!(
                "export function f({{s}}: {{s: string}}): number {{\n  let c = 0;\n  for (const ch of s) {{\n    if (ch === '{}') {{\n      c += 1;\n    }}\n  }}\n  return c;\n}}",
                LETTERS[k % LETTERS.len()]
            )
            },
            model: |k| {
                format!(
                "export function f({{s}}: {{s: string}}): number {{\n  return s.split('{}').length - 1;\n}}",
                LETTERS[k % LETTERS.len()]
            )
            },
            inputs: s_inputs,
        },
        // F3: add a constant — reference maps, model loops.
        Family {
            params: &[("ns", || list(int()))],
            ret: || list(int()),
            prompt: |k| format!("Add {k} to every element of {{{{ns}}}}."),
            reference: |k| {
                format!(
                "export function f({{ns}}: {{ns: number[]}}): number[] {{\n  return ns.map(v => v + {k});\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{ns}}: {{ns: number[]}}): number[] {{\n  let out = [];\n  for (const v of ns) {{\n    out.push(v + {k});\n  }}\n  return out;\n}}"
            )
            },
            inputs: ns_inputs,
        },
        // F4: scale — reference maps, model loops.
        Family {
            params: &[("ns", || list(int()))],
            ret: || list(int()),
            prompt: |k| format!("Multiply every element of {{{{ns}}}} by {k}."),
            reference: |k| {
                format!(
                "export function f({{ns}}: {{ns: number[]}}): number[] {{\n  return ns.map(v => v * {k});\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{ns}}: {{ns: number[]}}): number[] {{\n  let out = [];\n  for (const v of ns) {{\n    out.push(v * {k});\n  }}\n  return out;\n}}"
            )
            },
            inputs: ns_inputs,
        },
        // F5: fixed power — reference uses **, model multiplies in a loop.
        Family {
            params: &[("x", int)],
            ret: int,
            prompt: |k| format!("Raise {{{{x}}}} to the power {k}."),
            reference: |k| {
                format!(
                    "export function f({{x}}: {{x: number}}): number {{\n  return x ** {k};\n}}"
                )
            },
            model: |k| {
                format!(
                "export function f({{x}}: {{x: number}}): number {{\n  let out = 1;\n  for (let i = 0; i < {k}; i++) {{\n    out *= x;\n  }}\n  return out;\n}}"
            )
            },
            inputs: |_| {
                [2i64, 3, 1]
                    .iter()
                    .map(|x| {
                        let mut m = Map::new();
                        m.insert("x", Json::Int(*x));
                        m
                    })
                    .collect()
            },
        },
        // F6: drop prefix — reference slices, model loops.
        Family {
            params: &[("xs", || list(int()))],
            ret: || list(int()),
            prompt: |k| format!("Remove the first {k} elements of {{{{xs}}}}."),
            reference: |k| {
                format!(
                "export function f({{xs}}: {{xs: number[]}}): number[] {{\n  return xs.slice({k});\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{xs}}: {{xs: number[]}}): number[] {{\n  let out = [];\n  for (let i = {k}; i < xs.length; i++) {{\n    out.push(xs[i]);\n  }}\n  return out;\n}}"
            )
            },
            inputs: |_| {
                ["[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]", "[1]"]
                    .iter()
                    .map(|src| {
                        let mut m = Map::new();
                        m.insert("xs", Json::parse(src).unwrap());
                        m
                    })
                    .collect()
            },
        },
        // F7: take prefix — reference slices, model loops with a bound check.
        Family {
            params: &[("xs", || list(int()))],
            ret: || list(int()),
            prompt: |k| format!("Return the first {k} elements of {{{{xs}}}}."),
            reference: |k| {
                format!(
                "export function f({{xs}}: {{xs: number[]}}): number[] {{\n  return xs.slice(0, {k});\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{xs}}: {{xs: number[]}}): number[] {{\n  let out = [];\n  for (let i = 0; i < {k}; i++) {{\n    if (i < xs.length) {{\n      out.push(xs[i]);\n    }}\n  }}\n  return out;\n}}"
            )
            },
            inputs: |_| {
                ["[9,8,7,6,5,4,3,2,1,0,10,11,12,13,14,15]", "[2,4]"]
                    .iter()
                    .map(|src| {
                        let mut m = Map::new();
                        m.insert("xs", Json::parse(src).unwrap());
                        m
                    })
                    .collect()
            },
        },
        // F8: left-pad — reference uses padStart, model loops.
        Family {
            params: &[("s", string)],
            ret: string,
            prompt: |k| format!("Pad {{{{s}}}} on the left with spaces to width {k}."),
            reference: |k| {
                format!(
                "export function f({{s}}: {{s: string}}): string {{\n  return s.padStart({k}, ' ');\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{s}}: {{s: string}}): string {{\n  let out = s;\n  while (out.length < {k}) {{\n    out = ' ' + out;\n  }}\n  return out;\n}}"
            )
            },
            inputs: s_inputs,
        },
        // F9: count above threshold — reference loops, model filters.
        Family {
            params: &[("ns", || list(int()))],
            ret: int,
            prompt: |k| format!("Count the elements of {{{{ns}}}} greater than {k}."),
            reference: |k| {
                format!(
                "export function f({{ns}}: {{ns: number[]}}): number {{\n  let c = 0;\n  for (const v of ns) {{\n    if (v > {k}) {{\n      c += 1;\n    }}\n  }}\n  return c;\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{ns}}: {{ns: number[]}}): number {{\n  return ns.filter(v => v > {k}).length;\n}}"
            )
            },
            inputs: ns_inputs,
        },
        // F10: repeat with separator — two loop styles of similar size.
        Family {
            params: &[("s", string)],
            ret: string,
            prompt: |k| format!("Repeat the string {{{{s}}}} {k} times separated by dashes."),
            reference: |k| {
                format!(
                "export function f({{s}}: {{s: string}}): string {{\n  let parts = [];\n  for (let i = 0; i < {k}; i++) {{\n    parts.push(s);\n  }}\n  return parts.join('-');\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{s}}: {{s: string}}): string {{\n  let out = s;\n  for (let i = 1; i < {k}; i++) {{\n    out += '-' + s;\n  }}\n  return out;\n}}"
            )
            },
            inputs: s_inputs,
        },
        // F11: ends-with — reference slices and compares, model uses endsWith.
        Family {
            params: &[("s", string)],
            ret: boolean,
            prompt: |k| {
                format!(
                    "Check whether {{{{s}}}} ends with the letter {}.",
                    LETTERS[k % LETTERS.len()]
                )
            },
            reference: |k| {
                format!(
                "export function f({{s}}: {{s: string}}): boolean {{\n  let tail = s.slice(s.length - 1);\n  return tail === '{}';\n}}",
                LETTERS[k % LETTERS.len()]
            )
            },
            model: |k| {
                format!(
                "export function f({{s}}: {{s: string}}): boolean {{\n  return s.endsWith('{}');\n}}",
                LETTERS[k % LETTERS.len()]
            )
            },
            inputs: s_inputs,
        },
        // F12: divisibility — near-identical sizes.
        Family {
            params: &[("n", int)],
            ret: boolean,
            prompt: |k| format!("Check if {{{{n}}}} is divisible by {k}."),
            reference: |k| {
                format!(
                "export function f({{n}}: {{n: number}}): boolean {{\n  let r = n % {k};\n  return r === 0;\n}}"
            )
            },
            model: |k| {
                format!(
                "export function f({{n}}: {{n: number}}): boolean {{\n  let ok = n % {k} === 0;\n  return ok;\n}}"
            )
            },
            inputs: n_inputs,
        },
    ]
}

/// HumanEval's size.
pub const TASK_COUNT: usize = 164;

/// Builds the 164-task benchmark.
pub fn tasks() -> Vec<HumanEvalTask> {
    let families = families();
    let mut out = Vec::with_capacity(TASK_COUNT);
    let mut id = 0;
    'outer: for k in 1..=14usize {
        for family in &families {
            if id >= TASK_COUNT {
                break 'outer;
            }
            let reference_source = (family.reference)(k);
            let model_source = (family.model)(k);
            let reference = minilang::parse_ts(&reference_source)
                .expect("reference parses")
                .functions[0]
                .clone();
            let program = Program {
                functions: vec![reference],
            };
            let tests: Vec<Example> = (family.inputs)(k)
                .into_iter()
                .map(|input| {
                    let output = Interp::new(&program)
                        .call_json("f", &input)
                        .expect("reference solutions are total on their test inputs");
                    Example { input, output }
                })
                .collect();
            let few_shot = tests.first().cloned().into_iter().collect();
            out.push(HumanEvalTask {
                id,
                prompt: (family.prompt)(k),
                return_type: (family.ret)(),
                param_types: family.params.iter().map(|(n, t)| (*n, t())).collect(),
                tests,
                few_shot,
                reference_source,
                model_source,
                hard: id % 7 == 3 || id == 68 || id == 160,
            });
            id += 1;
        }
    }
    out
}

/// Registers the model-side knowledge: every non-hard task's model-style
/// solution.
pub fn register_oracle(oracle: &mut Oracle) {
    let entries: Vec<(String, FuncDecl)> = tasks()
        .iter()
        .filter(|t| !t.hard)
        .map(|t| {
            let decl = minilang::parse_ts(&t.model_source)
                .expect("model sources parse")
                .functions[0]
                .clone();
            (t.instruction_key().to_lowercase(), decl)
        })
        .collect();
    oracle.add_code_fn("humaneval", move |task| {
        let key = task.instruction.to_lowercase();
        entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, d)| d.clone())
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_has_164_distinct_tasks() {
        let all = tasks();
        assert_eq!(all.len(), 164);
        let mut keys: Vec<String> = all.iter().map(HumanEvalTask::instruction_key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 164);
        let hard = all.iter().filter(|t| t.hard).count();
        assert_eq!(hard, 25, "matching the paper: 139/164 = 84.8% succeed");
    }

    #[test]
    fn model_solutions_pass_the_reference_tests() {
        for task in tasks() {
            let program = minilang::parse_ts(&task.model_source)
                .unwrap_or_else(|e| panic!("task {}: {e}", task.id));
            for (i, t) in task.tests.iter().enumerate() {
                let out = Interp::new(&program)
                    .call_json("f", &t.input)
                    .unwrap_or_else(|e| panic!("task {} test {i}: {e}", task.id));
                assert!(
                    out.loosely_equals(&t.output),
                    "task {} test {i}: model style disagrees with reference ({} vs {})",
                    task.id,
                    out,
                    t.output
                );
            }
        }
    }

    #[test]
    fn loc_statistics_resemble_figure_5() {
        let all = tasks();
        let hand: Vec<usize> = all.iter().map(HumanEvalTask::reference_loc).collect();
        let generated: Vec<usize> = all
            .iter()
            .map(|t| minilang::loc::count_loc(&t.model_source))
            .collect();
        let hand_avg = hand.iter().sum::<usize>() as f64 / hand.len() as f64;
        let gen_avg = generated.iter().sum::<usize>() as f64 / generated.len() as f64;
        // Paper: hand-written 7.57, generated 8.05 — generated slightly longer.
        assert!(
            gen_avg > hand_avg,
            "generated ({gen_avg}) should exceed hand-written ({hand_avg})"
        );
        let shorter =
            hand.iter().zip(&generated).filter(|(h, g)| g < h).count() as f64 / all.len() as f64;
        assert!(
            (0.2..0.5).contains(&shorter),
            "fraction of shorter generated solutions should be near the paper's 35.3%, got {shorter}"
        );
    }

    #[test]
    fn oracle_refuses_hard_tasks_only() {
        let mut oracle = Oracle::empty();
        register_oracle(&mut oracle);
        for task in tasks().iter().take(30) {
            let key = task.instruction_key();
            let params: Vec<minilang::Param> = task
                .param_types
                .iter()
                .map(|(n, t)| minilang::Param {
                    name: (*n).to_owned(),
                    ty: t.clone(),
                })
                .collect();
            let found = oracle
                .implement(&askit_llm::CodeTask {
                    instruction: &key,
                    name: "f",
                    params: &params,
                    ret: &task.return_type,
                    syntax: minilang::Syntax::Ts,
                })
                .is_some();
            assert_eq!(found, !task.hard, "task {}", task.id);
        }
    }
}
