//! The [`Type`] enum and the Table I constructor API.

use askit_json::Json;

/// A type in the AskIt type language.
///
/// The variants correspond to the rows of the paper's Table I plus `void`
/// (used by `define<void>` tasks such as the CSV-append example in §II) and
/// `any` (used by Table II task #21, "Convert the JSON object `{{o}}` into a
/// string").
///
/// Construct values with the free functions in this crate ([`int`],
/// [`string`], [`list`], …) which mirror the Python API, e.g.
/// `list(dict([("x", int())]))` ↔ `list(dict({'x': int}))`.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// An integer (`int` in Python AskIt; prints as `number`).
    Int,
    /// A floating-point number (`float`; prints as `number`).
    Float,
    /// A boolean (`bool`; prints as `boolean`).
    Bool,
    /// A string (`str`; prints as `string`).
    Str,
    /// The unit type of side-effecting tasks (prints as `void`).
    Void,
    /// Any JSON value at all (prints as `any`).
    Any,
    /// A literal type: exactly one scalar value, e.g. `'yes'` or `123`.
    Literal(Json),
    /// A homogeneous list, e.g. `number[]`.
    List(Box<Type>),
    /// An object with the given fields, e.g. `{ x: number, y: number }`.
    /// Field order is preserved for printing.
    Dict(Vec<(String, Type)>),
    /// A union of alternatives, e.g. `'yes' | 'no'`.
    Union(Vec<Type>),
}

/// The `int` type. (Table I: `int` ↔ TypeScript `number`.)
pub fn int() -> Type {
    Type::Int
}

/// The `float` type. (Table I: `float` ↔ TypeScript `number`.)
pub fn float() -> Type {
    Type::Float
}

/// The `bool` type. (Table I: `bool` ↔ TypeScript `boolean`.)
pub fn boolean() -> Type {
    Type::Bool
}

/// The `str` type. (Table I: `str` ↔ TypeScript `string`.)
pub fn string() -> Type {
    Type::Str
}

/// The `void` type for side-effecting tasks (`define<void>(…)`).
pub fn void() -> Type {
    Type::Void
}

/// The `any` type: no constraint on the answer shape.
pub fn any() -> Type {
    Type::Any
}

/// A literal type holding exactly one scalar value.
///
/// (Table I: `literal(123)` ↔ TypeScript `123`.)
///
/// # Panics
///
/// Panics if given an array or object; literal types are scalar by
/// construction, as in TypeScript.
///
/// ```
/// use askit_types::literal;
/// assert_eq!(literal("yes").to_typescript(), "'yes'");
/// assert_eq!(literal(123i64).to_typescript(), "123");
/// ```
pub fn literal(value: impl Into<Json>) -> Type {
    let value = value.into();
    assert!(
        !value.is_array() && !value.is_object(),
        "literal types must be scalar, got {value}"
    );
    Type::Literal(value)
}

/// A list type. (Table I: `list(int)` ↔ TypeScript `number[]`.)
pub fn list(elem: Type) -> Type {
    Type::List(Box::new(elem))
}

/// A dictionary (object) type with named, typed fields.
///
/// (Table I: `dict({'x': int, 'y': int})` ↔ `{x: number, y: number}`.)
///
/// ```
/// use askit_types::{dict, int};
/// let t = dict([("x", int()), ("y", int())]);
/// assert_eq!(t.to_typescript(), "{ x: number, y: number }");
/// ```
pub fn dict<K: Into<String>>(fields: impl IntoIterator<Item = (K, Type)>) -> Type {
    Type::Dict(fields.into_iter().map(|(k, t)| (k.into(), t)).collect())
}

/// A union type.
///
/// (Table I: `union(literal('yes'), literal('no'))` ↔ `'yes' | 'no'`.)
/// Nested unions are flattened; a single-variant union collapses to the
/// variant.
///
/// ```
/// use askit_types::{literal, union};
/// let t = union([literal("yes"), literal("no")]);
/// assert_eq!(t.to_typescript(), "'yes' | 'no'");
/// ```
pub fn union(variants: impl IntoIterator<Item = Type>) -> Type {
    let mut flat = Vec::new();
    for v in variants {
        match v {
            Type::Union(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    match flat.len() {
        1 => flat.pop().expect("len checked"),
        _ => Type::Union(flat),
    }
}

impl Type {
    /// `true` if the type is one of the scalar primitives (including
    /// literals), i.e. prints without any bracket structure.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Type::Int
                | Type::Float
                | Type::Bool
                | Type::Str
                | Type::Void
                | Type::Any
                | Type::Literal(_)
        )
    }

    /// Recursively replaces [`Type::Int`] with [`Type::Float`].
    ///
    /// TypeScript has a single `number` type, so printing erases the
    /// int/float distinction; this is the corresponding operation on types.
    /// `parse(t.to_typescript()) == t.erase_ints()` is a law (see the
    /// property tests).
    #[must_use]
    pub fn erase_ints(&self) -> Type {
        match self {
            Type::Int => Type::Float,
            Type::List(t) => Type::List(Box::new(t.erase_ints())),
            Type::Dict(fields) => Type::Dict(
                fields
                    .iter()
                    .map(|(k, t)| (k.clone(), t.erase_ints()))
                    .collect(),
            ),
            Type::Union(vs) => Type::Union(vs.iter().map(Type::erase_ints).collect()),
            other => other.clone(),
        }
    }

    /// Structural subsumption: does `self` accept every value that `other`
    /// accepts?
    ///
    /// Used in tests and by the mock model when it re-reads the type out of a
    /// prompt (where ints have widened to `number`).
    ///
    /// ```
    /// use askit_types::{any, float, int, list};
    /// assert!(float().accepts(&int()));
    /// assert!(!int().accepts(&float()));
    /// assert!(any().accepts(&list(int())));
    /// ```
    pub fn accepts(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Any, _) => true,
            (Type::Float, Type::Int | Type::Float) => true,
            (Type::Int, Type::Int) => true,
            (Type::Bool, Type::Bool) => true,
            (Type::Str, Type::Str) => true,
            (Type::Void, Type::Void) => true,
            (Type::Str, Type::Literal(Json::Str(_))) => true,
            (Type::Int, Type::Literal(Json::Int(_))) => true,
            (Type::Float, Type::Literal(Json::Int(_) | Json::Float(_))) => true,
            (Type::Bool, Type::Literal(Json::Bool(_))) => true,
            (Type::Literal(a), Type::Literal(b)) => a.loosely_equals(b),
            (Type::List(a), Type::List(b)) => a.accepts(b),
            (Type::Dict(fa), Type::Dict(fb)) => fa
                .iter()
                .all(|(k, ta)| fb.iter().any(|(k2, tb)| k == k2 && ta.accepts(tb))),
            // Distribute over the right-hand union first so that
            // union-vs-union checks each right variant against the whole
            // left union (otherwise `A | B accepts A | B` would fail).
            (this, Type::Union(vs)) => vs.iter().all(|v| this.accepts(v)),
            (Type::Union(vs), other) => vs.iter().any(|v| v.accepts(other)),
            _ => false,
        }
    }

    /// Number of type nodes (a `Dict` counts once plus its field types, etc.).
    pub fn node_count(&self) -> usize {
        match self {
            Type::List(t) => 1 + t.node_count(),
            Type::Dict(fields) => 1 + fields.iter().map(|(_, t)| t.node_count()).sum::<usize>(),
            Type::Union(vs) => 1 + vs.iter().map(Type::node_count).sum::<usize>(),
            _ => 1,
        }
    }
}

impl std::fmt::Display for Type {
    /// Formats in TypeScript syntax, identical to [`Type::to_typescript`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_typescript())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_mirror_table_i() {
        assert_eq!(int(), Type::Int);
        assert_eq!(float(), Type::Float);
        assert_eq!(boolean(), Type::Bool);
        assert_eq!(string(), Type::Str);
        assert_eq!(list(int()), Type::List(Box::new(Type::Int)));
        assert_eq!(
            dict([("x", int())]),
            Type::Dict(vec![("x".into(), Type::Int)])
        );
    }

    #[test]
    fn union_flattens_and_collapses() {
        let t = union([literal("a"), union([literal("b"), literal("c")])]);
        match t {
            Type::Union(vs) => assert_eq!(vs.len(), 3),
            other => panic!("expected union, got {other:?}"),
        }
        assert_eq!(union([int()]), Type::Int);
    }

    #[test]
    #[should_panic(expected = "literal types must be scalar")]
    fn literal_rejects_compounds() {
        let _ = literal(Json::Array(vec![]));
    }

    #[test]
    fn erase_ints_is_deep() {
        let t = dict([("a", list(int())), ("b", union([int(), string()]))]);
        let e = t.erase_ints();
        assert_eq!(
            e,
            dict([("a", list(float())), ("b", union([float(), string()]))])
        );
    }

    #[test]
    fn accepts_covers_structure() {
        let book = dict([("t", string()), ("y", int())]);
        let loose = dict([("t", string()), ("y", float())]);
        assert!(loose.accepts(&book));
        assert!(!book.accepts(&loose));
        assert!(list(float()).accepts(&list(int())));
        assert!(string().accepts(&literal("x")));
        assert!(union([int(), string()]).accepts(&string()));
        assert!(!union([int(), string()]).accepts(&boolean()));
    }

    #[test]
    fn node_count() {
        let t = dict([("a", list(int())), ("b", string())]);
        // dict + list + int + string
        assert_eq!(t.node_count(), 4);
    }
}
