//! Type-usage statistics — the machinery behind the paper's Figure 7.
//!
//! Figure 7 counts, across the 50 OpenAI-Evals benchmarks, how often each
//! type constructor appears (a) as the *top-level* answer type and (b)
//! anywhere in the answer type. The x-axis buckets are: `boolean`, `object`,
//! `Array`, `literal`, `number`, `string`, `union`.

use std::collections::BTreeMap;
use std::fmt;

use crate::ty::Type;

/// The buckets on Figure 7's x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeTag {
    /// `boolean`
    Boolean,
    /// object types `{ … }`
    Object,
    /// array types `T[]`
    Array,
    /// literal types `'x'`, `123`, `true`
    Literal,
    /// `number` (int or float)
    Number,
    /// `string`
    String,
    /// union types `A | B`
    Union,
    /// `void` / `any` (not shown in the paper's figure; kept for completeness)
    Other,
}

impl TypeTag {
    /// The tag of a type's outermost constructor.
    pub fn of(ty: &Type) -> TypeTag {
        match ty {
            Type::Bool => TypeTag::Boolean,
            Type::Dict(_) => TypeTag::Object,
            Type::List(_) => TypeTag::Array,
            Type::Literal(_) => TypeTag::Literal,
            Type::Int | Type::Float => TypeTag::Number,
            Type::Str => TypeTag::String,
            Type::Union(_) => TypeTag::Union,
            Type::Void | Type::Any => TypeTag::Other,
        }
    }

    /// All tags in the order Figure 7 lists them.
    pub const ALL: [TypeTag; 8] = [
        TypeTag::Boolean,
        TypeTag::Object,
        TypeTag::Array,
        TypeTag::Literal,
        TypeTag::Number,
        TypeTag::String,
        TypeTag::Union,
        TypeTag::Other,
    ];
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TypeTag::Boolean => "boolean",
            TypeTag::Object => "object",
            TypeTag::Array => "Array",
            TypeTag::Literal => "literal",
            TypeTag::Number => "number",
            TypeTag::String => "string",
            TypeTag::Union => "union",
            TypeTag::Other => "other",
        };
        f.write_str(s)
    }
}

/// Counters for one population of types (Figure 7 draws two: top-level and
/// all).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeStats {
    /// Count of types whose *outermost* constructor is the tag.
    pub top_level: BTreeMap<TypeTag, usize>,
    /// Count of *every* constructor occurrence, at any depth.
    pub all: BTreeMap<TypeTag, usize>,
}

impl TypeStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one benchmark's answer type.
    pub fn record(&mut self, ty: &Type) {
        *self.top_level.entry(TypeTag::of(ty)).or_insert(0) += 1;
        record_all(&mut self.all, ty);
    }

    /// Builds statistics over an iterator of types.
    ///
    /// ```
    /// use askit_types::{boolean, list, stats::{TypeStats, TypeTag}, string};
    /// let stats = TypeStats::collect([string(), list(string()), boolean()].iter());
    /// assert_eq!(stats.top_level[&TypeTag::String], 1);
    /// assert_eq!(stats.all[&TypeTag::String], 2);
    /// ```
    pub fn collect<'a>(types: impl Iterator<Item = &'a Type>) -> Self {
        let mut stats = TypeStats::new();
        for ty in types {
            stats.record(ty);
        }
        stats
    }

    /// Total number of recorded top-level types.
    pub fn total_top_level(&self) -> usize {
        self.top_level.values().sum()
    }

    /// Count for `tag` in the given population (0 when absent).
    pub fn count(&self, tag: TypeTag, all: bool) -> usize {
        let map = if all { &self.all } else { &self.top_level };
        map.get(&tag).copied().unwrap_or(0)
    }
}

fn record_all(map: &mut BTreeMap<TypeTag, usize>, ty: &Type) {
    *map.entry(TypeTag::of(ty)).or_insert(0) += 1;
    match ty {
        Type::List(t) => record_all(map, t),
        Type::Dict(fields) => {
            for (_, t) in fields {
                record_all(map, t);
            }
        }
        Type::Union(vs) => {
            for v in vs {
                record_all(map, v);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::*;

    #[test]
    fn tags_of_every_constructor() {
        assert_eq!(TypeTag::of(&boolean()), TypeTag::Boolean);
        assert_eq!(TypeTag::of(&dict([("a", int())])), TypeTag::Object);
        assert_eq!(TypeTag::of(&list(int())), TypeTag::Array);
        assert_eq!(TypeTag::of(&literal(1i64)), TypeTag::Literal);
        assert_eq!(TypeTag::of(&int()), TypeTag::Number);
        assert_eq!(TypeTag::of(&float()), TypeTag::Number);
        assert_eq!(TypeTag::of(&string()), TypeTag::String);
        assert_eq!(TypeTag::of(&union([int(), string()])), TypeTag::Union);
        assert_eq!(TypeTag::of(&void()), TypeTag::Other);
    }

    #[test]
    fn nested_occurrences_are_all_counted() {
        // ('a' | 'b')[] — 1 array, 1 union, 2 literals.
        let ty = list(union([literal("a"), literal("b")]));
        let mut stats = TypeStats::new();
        stats.record(&ty);
        assert_eq!(stats.count(TypeTag::Array, false), 1);
        assert_eq!(stats.count(TypeTag::Array, true), 1);
        assert_eq!(stats.count(TypeTag::Union, true), 1);
        assert_eq!(stats.count(TypeTag::Literal, true), 2);
        assert_eq!(stats.count(TypeTag::Literal, false), 0);
    }

    #[test]
    fn dict_fields_count() {
        let ty = dict([("x", int()), ("y", dict([("z", string())]))]);
        let stats = TypeStats::collect(std::iter::once(&ty));
        assert_eq!(stats.count(TypeTag::Object, true), 2);
        assert_eq!(stats.count(TypeTag::Number, true), 1);
        assert_eq!(stats.count(TypeTag::String, true), 1);
        assert_eq!(stats.total_top_level(), 1);
    }

    #[test]
    fn paper_figure_shape_invariant() {
        // The "all types" count is always >= the top-level count per tag.
        let types = [
            string(),
            list(string()),
            union([literal("y"), literal("n")]),
            dict([("a", boolean())]),
        ];
        let stats = TypeStats::collect(types.iter());
        for tag in TypeTag::ALL {
            assert!(
                stats.count(tag, true) >= stats.count(tag, false),
                "{tag}: all < top_level"
            );
        }
    }
}
