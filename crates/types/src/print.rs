//! Printing [`Type`]s in TypeScript syntax.
//!
//! The printed form is what the model sees inside the prompt (paper Listing 2,
//! lines 5–8), so it must be exactly the TypeScript surface syntax GPT-class
//! models know: `number`, `string`, `boolean`, `T[]`, `{ k: T, … }`,
//! `'lit' | 'lit'`.

use crate::ty::Type;
use askit_json::Json;

impl Type {
    /// Renders this type in TypeScript syntax.
    ///
    /// `Int` and `Float` both print as `number` (TypeScript has no integer
    /// type); unions parenthesize under `[]` so `('a' | 'b')[]` stays
    /// unambiguous.
    ///
    /// ```
    /// use askit_types::{int, list, literal, union};
    /// let t = list(union([literal("a"), literal("b")]));
    /// assert_eq!(t.to_typescript(), "('a' | 'b')[]");
    /// assert_eq!(list(int()).to_typescript(), "number[]");
    /// ```
    pub fn to_typescript(&self) -> String {
        let mut out = String::new();
        write_type(&mut out, self, false);
        out
    }

    /// Renders in the Python AskIt constructor syntax (Table I, column 3),
    /// e.g. `list(dict({ 'x': int }))`. Used for documentation and the
    /// Table I regeneration test.
    ///
    /// ```
    /// use askit_types::{dict, int};
    /// assert_eq!(
    ///     dict([("x", int())]).to_python_api(),
    ///     "dict({ 'x': int })"
    /// );
    /// ```
    pub fn to_python_api(&self) -> String {
        match self {
            Type::Int => "int".into(),
            Type::Float => "float".into(),
            Type::Bool => "bool".into(),
            Type::Str => "str".into(),
            Type::Void => "none".into(),
            Type::Any => "any".into(),
            Type::Literal(v) => format!("literal({})", python_literal(v)),
            Type::List(t) => format!("list({})", t.to_python_api()),
            Type::Dict(fields) => {
                if fields.is_empty() {
                    return "dict({})".into();
                }
                let body = fields
                    .iter()
                    .map(|(k, t)| format!("'{k}': {}", t.to_python_api()))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("dict({{ {body} }})")
            }
            Type::Union(vs) => {
                let body = vs
                    .iter()
                    .map(Type::to_python_api)
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("union({body})")
            }
        }
    }
}

fn python_literal(v: &Json) -> String {
    match v {
        Json::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        Json::Bool(true) => "True".into(),
        Json::Bool(false) => "False".into(),
        other => other.to_compact_string(),
    }
}

fn write_type(out: &mut String, ty: &Type, parenthesize_union: bool) {
    match ty {
        Type::Int | Type::Float => out.push_str("number"),
        Type::Bool => out.push_str("boolean"),
        Type::Str => out.push_str("string"),
        Type::Void => out.push_str("void"),
        Type::Any => out.push_str("any"),
        Type::Literal(v) => out.push_str(&ts_literal(v)),
        Type::List(elem) => {
            write_type(out, elem, true);
            out.push_str("[]");
        }
        Type::Dict(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{ ");
            for (i, (name, field)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(name);
                out.push_str(": ");
                write_type(out, field, false);
            }
            out.push_str(" }");
        }
        Type::Union(variants) => {
            let need_parens = parenthesize_union && variants.len() > 1;
            if need_parens {
                out.push('(');
            }
            for (i, v) in variants.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                write_type(out, v, false);
            }
            if need_parens {
                out.push(')');
            }
        }
    }
}

/// Renders a literal value in TypeScript literal-type syntax.
fn ts_literal(v: &Json) -> String {
    match v {
        Json::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        other => other.to_compact_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::*;

    #[test]
    fn primitives_match_table_i() {
        assert_eq!(int().to_typescript(), "number");
        assert_eq!(float().to_typescript(), "number");
        assert_eq!(boolean().to_typescript(), "boolean");
        assert_eq!(string().to_typescript(), "string");
        assert_eq!(void().to_typescript(), "void");
        assert_eq!(any().to_typescript(), "any");
        assert_eq!(literal(123i64).to_typescript(), "123");
        assert_eq!(list(int()).to_typescript(), "number[]");
        assert_eq!(
            dict([("x", int()), ("y", int())]).to_typescript(),
            "{ x: number, y: number }"
        );
        assert_eq!(
            union([literal("yes"), literal("no")]).to_typescript(),
            "'yes' | 'no'"
        );
    }

    #[test]
    fn listing_2_answer_type() {
        let book = dict([("title", string()), ("author", string()), ("year", int())]);
        assert_eq!(
            list(book).to_typescript(),
            "{ title: string, author: string, year: number }[]"
        );
    }

    #[test]
    fn unions_parenthesize_inside_lists_only() {
        let u = union([int(), string()]);
        assert_eq!(u.to_typescript(), "number | string");
        assert_eq!(list(u.clone()).to_typescript(), "(number | string)[]");
        assert_eq!(dict([("v", u)]).to_typescript(), "{ v: number | string }");
    }

    #[test]
    fn string_literals_escape_quotes() {
        assert_eq!(literal("it's").to_typescript(), r"'it\'s'");
        assert_eq!(literal("a\\b").to_typescript(), r"'a\\b'");
    }

    #[test]
    fn nested_lists() {
        assert_eq!(list(list(int())).to_typescript(), "number[][]");
    }

    #[test]
    fn empty_dict_prints_braces() {
        assert_eq!(dict(Vec::<(String, Type)>::new()).to_typescript(), "{}");
    }

    #[test]
    fn display_matches_to_typescript() {
        let t = list(boolean());
        assert_eq!(format!("{t}"), t.to_typescript());
    }

    #[test]
    fn python_api_rendering() {
        assert_eq!(int().to_python_api(), "int");
        assert_eq!(list(int()).to_python_api(), "list(int)");
        assert_eq!(
            union([literal("yes"), literal("no")]).to_python_api(),
            "union(literal('yes'), literal('no'))"
        );
        assert_eq!(
            dict([("x", int()), ("y", float())]).to_python_api(),
            "dict({ 'x': int, 'y': float })"
        );
        assert_eq!(literal(true).to_python_api(), "literal(True)");
    }
}
