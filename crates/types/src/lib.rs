//! # askit-types
//!
//! The AskIt type language (paper §III, Table I).
//!
//! A [`Type`] is simultaneously four things in AskIt:
//!
//! 1. **a prompt constraint** — printed in TypeScript syntax into the prompt
//!    so the model knows the exact JSON shape to answer with
//!    ([`Type::to_typescript`], paper Listing 2);
//! 2. **a validator** — model answers are structurally checked against it
//!    ([`Type::validate`], criterion 3 of the §III-E retry loop);
//! 3. **a coercer** — accepted answers are normalized (ints arriving as
//!    `4.0`, union branches, extra object fields) by [`Type::coerce`];
//! 4. **a signature** — `define`d functions derive their parameter and return
//!    types from it (paper §III-D).
//!
//! The constructor functions ([`int`], [`string`], [`list`], [`dict`],
//! [`union`], [`literal`], …) mirror the Python AskIt API of Table I, and
//! [`Type::parse`] reads the TypeScript syntax back — the same trick the
//! paper's Python implementation uses ("uses TypeScript types to constrain
//! the LLM's JSON response, even though Python is the host language").
//!
//! # Examples
//!
//! ```
//! use askit_types::{dict, int, list, string, Type};
//!
//! let book = dict([("title", string()), ("author", string()), ("year", int())]);
//! let ty = list(book);
//! assert_eq!(ty.to_typescript(), "{ title: string, author: string, year: number }[]");
//!
//! let parsed = Type::parse("{ title: string, author: string, year: number }[]")?;
//! assert!(parsed.accepts(&ty)); // ints print as `number`, so the parse widens
//! # Ok::<(), askit_types::ParseTypeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod print;
pub mod sample;
pub mod stats;
mod ty;
mod validate;

pub use parse::ParseTypeError;
pub use ty::{any, boolean, dict, float, int, list, literal, string, union, void, Type};
pub use validate::TypeError;

#[cfg(test)]
mod lib_tests {
    use super::*;
    use askit_json::Json;

    #[test]
    fn the_four_roles_of_a_type() {
        let ty = union([literal("positive"), literal("negative")]);
        // 1. prompt constraint
        assert_eq!(ty.to_typescript(), "'positive' | 'negative'");
        // 2. validator
        assert!(ty.validate(&Json::from("positive")).is_ok());
        assert!(ty.validate(&Json::from("meh")).is_err());
        // 3. coercer
        assert_eq!(
            ty.coerce(&Json::from("negative")).unwrap(),
            Json::from("negative")
        );
        // 4. signature printing is exercised in askit-core's codegen tests.
    }
}
