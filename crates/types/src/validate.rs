//! Validation and coercion of JSON values against [`Type`]s.
//!
//! This is criterion 3 of the AskIt runtime's retry loop (paper §III-E):
//! *"The `answer` field matches the expected type."* Failures carry the path
//! to the offending node so the feedback prompt can point at it precisely.

use std::error::Error;
use std::fmt;

use askit_json::{Json, Map};

use crate::ty::Type;

/// A structural mismatch between a JSON value and a [`Type`].
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    path: String,
    expected: String,
    found: String,
}

impl TypeError {
    fn new(path: &str, expected: impl Into<String>, found: &Json) -> Self {
        let found_repr = match found {
            Json::Str(s) if s.len() <= 32 => format!("{} {found}", found.kind()),
            Json::Array(_) | Json::Object(_) => found.kind().to_string(),
            other => format!("{} {other}", other.kind()),
        };
        TypeError {
            path: path.to_owned(),
            expected: expected.into(),
            found: found_repr,
        }
    }

    /// The path from the root of the value to the mismatch (empty = root),
    /// e.g. `answer[2].year`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Human-readable description of what the type required.
    pub fn expected(&self) -> &str {
        &self.expected
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "expected {}, found {}", self.expected, self.found)
        } else {
            write!(
                f,
                "at {}: expected {}, found {}",
                self.path, self.expected, self.found
            )
        }
    }
}

impl Error for TypeError {}

impl Type {
    /// Checks that `value` conforms to this type.
    ///
    /// Leniencies, chosen to match how AskIt treats model output:
    /// * integral floats (`4.0`) satisfy `Int`;
    /// * integers satisfy `Float`;
    /// * objects may carry *extra* fields beyond those declared in a `Dict`
    ///   (models love to volunteer information);
    /// * `null` satisfies `Void`.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] locating the first mismatch.
    ///
    /// ```
    /// use askit_json::Json;
    /// use askit_types::{dict, int, list};
    ///
    /// let ty = list(dict([("year", int())]));
    /// let good = Json::parse(r#"[{"year": 1968}]"#).unwrap();
    /// assert!(ty.validate(&good).is_ok());
    ///
    /// let bad = Json::parse(r#"[{"year": "old"}]"#).unwrap();
    /// let err = ty.validate(&bad).unwrap_err();
    /// assert_eq!(err.path(), "[0].year");
    /// ```
    pub fn validate(&self, value: &Json) -> Result<(), TypeError> {
        self.validate_at(value, "")
    }

    fn validate_at(&self, value: &Json, path: &str) -> Result<(), TypeError> {
        match self {
            Type::Any => Ok(()),
            Type::Void => match value {
                Json::Null => Ok(()),
                other => Err(TypeError::new(path, "null (void)", other)),
            },
            Type::Int => match value.as_i64() {
                Some(_) => Ok(()),
                None => Err(TypeError::new(path, "integer", value)),
            },
            Type::Float => match value.as_f64() {
                Some(_) => Ok(()),
                None => Err(TypeError::new(path, "number", value)),
            },
            Type::Bool => match value {
                Json::Bool(_) => Ok(()),
                other => Err(TypeError::new(path, "boolean", other)),
            },
            Type::Str => match value {
                Json::Str(_) => Ok(()),
                other => Err(TypeError::new(path, "string", other)),
            },
            Type::Literal(lit) => {
                if lit.loosely_equals(value) {
                    Ok(())
                } else {
                    Err(TypeError::new(path, format!("literal {lit}"), value))
                }
            }
            Type::List(elem) => match value {
                Json::Array(items) => {
                    for (i, item) in items.iter().enumerate() {
                        elem.validate_at(item, &format!("{path}[{i}]"))?;
                    }
                    Ok(())
                }
                other => Err(TypeError::new(path, "array", other)),
            },
            Type::Dict(fields) => match value {
                Json::Object(map) => {
                    for (name, field_ty) in fields {
                        let sub_path = if path.is_empty() {
                            name.clone()
                        } else {
                            format!("{path}.{name}")
                        };
                        match map.get(name) {
                            Some(v) => field_ty.validate_at(v, &sub_path)?,
                            None => {
                                return Err(TypeError {
                                    path: sub_path,
                                    expected: field_ty.to_typescript(),
                                    found: "missing field".to_owned(),
                                })
                            }
                        }
                    }
                    Ok(())
                }
                other => Err(TypeError::new(path, "object", other)),
            },
            Type::Union(variants) => {
                for v in variants {
                    if v.validate_at(value, path).is_ok() {
                        return Ok(());
                    }
                }
                Err(TypeError::new(path, self.to_typescript(), value))
            }
        }
    }

    /// Validates and *normalizes* `value` under this type:
    ///
    /// * `Float(n.0)` becomes `Int(n)` under `Int`;
    /// * `Int(n)` becomes `Float(n as f64)` under `Float`;
    /// * `Dict` coercion drops undeclared fields;
    /// * `Union` coercion normalizes under the first matching variant.
    ///
    /// # Errors
    ///
    /// Returns the same [`TypeError`]s as [`Type::validate`].
    ///
    /// ```
    /// use askit_json::Json;
    /// use askit_types::int;
    /// assert_eq!(int().coerce(&Json::Float(4.0)).unwrap(), Json::Int(4));
    /// ```
    pub fn coerce(&self, value: &Json) -> Result<Json, TypeError> {
        self.validate(value)?;
        Ok(self.coerce_unchecked(value))
    }

    fn coerce_unchecked(&self, value: &Json) -> Json {
        match self {
            Type::Int => Json::Int(value.as_i64().expect("validated")),
            Type::Float => Json::Float(value.as_f64().expect("validated")),
            Type::List(elem) => Json::Array(
                value
                    .as_array()
                    .expect("validated")
                    .iter()
                    .map(|v| elem.coerce_unchecked(v))
                    .collect(),
            ),
            Type::Dict(fields) => {
                let map = value.as_object().expect("validated");
                let mut out = Map::with_capacity(fields.len());
                for (name, field_ty) in fields {
                    let v = map.get(name).expect("validated");
                    out.insert(name.clone(), field_ty.coerce_unchecked(v));
                }
                Json::Object(out)
            }
            Type::Union(variants) => {
                for v in variants {
                    if v.validate(value).is_ok() {
                        return v.coerce_unchecked(value);
                    }
                }
                unreachable!("validated union had no matching variant")
            }
            _ => value.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::*;
    use askit_json::Json;

    fn j(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn primitives_validate() {
        assert!(int().validate(&j("3")).is_ok());
        assert!(int().validate(&j("3.0")).is_ok());
        assert!(int().validate(&j("3.5")).is_err());
        assert!(float().validate(&j("3")).is_ok());
        assert!(boolean().validate(&j("true")).is_ok());
        assert!(string().validate(&j("\"s\"")).is_ok());
        assert!(string().validate(&j("3")).is_err());
        assert!(void().validate(&Json::Null).is_ok());
        assert!(void().validate(&j("0")).is_err());
        assert!(any().validate(&j("[1, {\"a\": null}]")).is_ok());
    }

    #[test]
    fn literal_validation_is_loose_on_numbers() {
        assert!(literal(5i64).validate(&j("5.0")).is_ok());
        assert!(literal("x").validate(&j("\"x\"")).is_ok());
        assert!(literal("x").validate(&j("\"y\"")).is_err());
    }

    #[test]
    fn lists_report_element_paths() {
        let err = list(int()).validate(&j("[1, 2, \"x\"]")).unwrap_err();
        assert_eq!(err.path(), "[2]");
        assert!(list(int()).validate(&j("{}")).is_err());
    }

    #[test]
    fn dicts_report_dotted_paths_and_allow_extras() {
        let ty = dict([("a", dict([("b", int())]))]);
        let err = ty.validate(&j(r#"{"a": {"b": "no"}}"#)).unwrap_err();
        assert_eq!(err.path(), "a.b");
        assert!(ty
            .validate(&j(r#"{"a": {"b": 1, "extra": true}, "more": 0}"#))
            .is_ok());
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let ty = dict([("x", int()), ("y", int())]);
        let err = ty.validate(&j(r#"{"x": 1}"#)).unwrap_err();
        assert_eq!(err.path(), "y");
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn union_tries_each_variant() {
        let ty = union([int(), string()]);
        assert!(ty.validate(&j("1")).is_ok());
        assert!(ty.validate(&j("\"s\"")).is_ok());
        let err = ty.validate(&j("true")).unwrap_err();
        assert!(err.to_string().contains("number | string"), "{err}");
    }

    #[test]
    fn coerce_normalizes_numbers() {
        assert_eq!(int().coerce(&j("4.0")).unwrap(), Json::Int(4));
        assert_eq!(float().coerce(&j("4")).unwrap(), Json::Float(4.0));
    }

    #[test]
    fn coerce_drops_extra_dict_fields() {
        let ty = dict([("x", int())]);
        let out = ty.coerce(&j(r#"{"x": 1.0, "noise": "yes"}"#)).unwrap();
        assert_eq!(out, j(r#"{"x": 1}"#));
    }

    #[test]
    fn coerce_recurses_into_lists_and_unions() {
        let ty = list(union([int(), string()]));
        let out = ty.coerce(&j(r#"[1.0, "a"]"#)).unwrap();
        assert_eq!(out, j(r#"[1, "a"]"#));
    }

    #[test]
    fn coerce_fails_where_validate_fails() {
        assert!(int().coerce(&j("\"4\"")).is_err());
    }

    #[test]
    fn deep_paper_shape() {
        // The Listing 2 shape: { reason: string, answer: Book[] }.
        let book = dict([("title", string()), ("author", string()), ("year", int())]);
        let ty = dict([("reason", string()), ("answer", list(book))]);
        let ok = j(r#"{"reason": "standard texts", "answer": [
                {"title": "SICP", "author": "Abelson", "year": 1985}
            ]}"#);
        assert!(ty.validate(&ok).is_ok());
        let bad = j(r#"{"reason": "r", "answer": [{"title": "T", "author": "A", "year": "Y"}]}"#);
        assert_eq!(ty.validate(&bad).unwrap_err().path(), "answer[0].year");
    }
}
