//! Parsing TypeScript type syntax back into [`Type`].
//!
//! The mock language model uses this to *read the type out of the prompt* —
//! the same comprehension a GPT-class model exhibits when AskIt shows it a
//! TypeScript type (paper §III-E: "LLMs can grasp the semantics of types in
//! programming languages"). It is also handy for writing types concisely in
//! datasets and tests.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! type    := variant ('|' variant)*
//! variant := primary ('[' ']')*
//! primary := 'number' | 'string' | 'boolean' | 'void' | 'any' | 'null'
//!          | 'int' | 'float' | 'bool' | 'str'          // Python spellings
//!          | 'true' | 'false' | NUMBER | STRING        // literal types
//!          | 'Array' '<' type '>'
//!          | '{' (IDENT ':' type (','|';')?)* '}'
//!          | '(' type ')'
//! ```

use std::error::Error;
use std::fmt;

use askit_json::Json;

use crate::ty::Type;

/// An error from [`Type::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTypeError {
    at: usize,
    detail: String,
}

impl ParseTypeError {
    /// Byte offset of the failure in the input.
    pub fn offset(&self) -> usize {
        self.at
    }
}

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.detail, self.at)
    }
}

impl Error for ParseTypeError {}

impl Type {
    /// Parses a type written in TypeScript syntax (see module docs for the
    /// accepted grammar).
    ///
    /// `number` parses as [`Type::Float`]; Python spellings `int` / `float` /
    /// `bool` / `str` are also accepted so internal artifacts can stay
    /// precise.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTypeError`] with a byte offset on malformed input.
    ///
    /// ```
    /// use askit_types::{dict, float, list, string, Type};
    /// let t = Type::parse("{ name: string, scores: number[] }")?;
    /// assert_eq!(t, dict([("name", string()), ("scores", list(float()))]));
    /// # Ok::<(), askit_types::ParseTypeError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Type, ParseTypeError> {
        let mut p = TypeParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let t = p.union_type()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("unexpected trailing input"));
        }
        Ok(t)
    }
}

struct TypeParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> TypeParser<'a> {
    fn err(&self, detail: impl Into<String>) -> ParseTypeError {
        ParseTypeError {
            at: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseTypeError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn union_type(&mut self) -> Result<Type, ParseTypeError> {
        let mut variants = vec![self.postfix_type()?];
        loop {
            self.skip_ws();
            if self.eat(b'|') {
                self.skip_ws();
                variants.push(self.postfix_type()?);
            } else {
                break;
            }
        }
        if variants.len() == 1 {
            Ok(variants.pop().expect("len checked"))
        } else {
            Ok(Type::Union(variants))
        }
    }

    fn postfix_type(&mut self) -> Result<Type, ParseTypeError> {
        let mut t = self.primary_type()?;
        loop {
            self.skip_ws();
            if self.eat(b'[') {
                self.skip_ws();
                self.expect(b']')?;
                t = Type::List(Box::new(t));
            } else {
                break;
            }
        }
        Ok(t)
    }

    fn primary_type(&mut self) -> Result<Type, ParseTypeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object_type(),
            Some(b'(') => {
                self.pos += 1;
                let t = self.union_type()?;
                self.skip_ws();
                self.expect(b')')?;
                Ok(t)
            }
            Some(b'\'') | Some(b'"') => self.string_literal().map(|s| Type::Literal(Json::Str(s))),
            Some(b'-' | b'0'..=b'9') => self.number_literal(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.keyword_type(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of type")),
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn keyword_type(&mut self) -> Result<Type, ParseTypeError> {
        let start = self.pos;
        let word = self.ident();
        match word.as_str() {
            "number" | "float" => Ok(Type::Float),
            "int" => Ok(Type::Int),
            "string" | "str" => Ok(Type::Str),
            "boolean" | "bool" => Ok(Type::Bool),
            "void" | "null" | "undefined" | "none" => Ok(Type::Void),
            "any" | "unknown" | "object" => Ok(Type::Any),
            "true" => Ok(Type::Literal(Json::Bool(true))),
            "false" => Ok(Type::Literal(Json::Bool(false))),
            "Array" => {
                self.skip_ws();
                self.expect(b'<')?;
                let inner = self.union_type()?;
                self.skip_ws();
                self.expect(b'>')?;
                Ok(Type::List(Box::new(inner)))
            }
            "Date" => Ok(Type::Any),
            other => {
                self.pos = start;
                Err(self.err(format!("unknown type name '{other}'")))
            }
        }
    }

    fn object_type(&mut self) -> Result<Type, ParseTypeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Type::Dict(fields));
            }
            let name = if matches!(self.peek(), Some(b'\'') | Some(b'"')) {
                self.string_literal()?
            } else {
                let n = self.ident();
                if n.is_empty() {
                    return Err(self.err("expected field name"));
                }
                n
            };
            self.skip_ws();
            // Optional-field marker is tolerated and ignored.
            self.eat(b'?');
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let ty = self.union_type()?;
            fields.push((name, ty));
            self.skip_ws();
            if !(self.eat(b',') || self.eat(b';')) {
                self.skip_ws();
                self.expect(b'}')?;
                return Ok(Type::Dict(fields));
            }
        }
    }

    fn string_literal(&mut self) -> Result<String, ParseTypeError> {
        let quote = self
            .peek()
            .ok_or_else(|| self.err("expected string literal"))?;
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'\'' | b'"' | b'\\')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        _ => return Err(self.err("invalid escape in string literal")),
                    }
                }
                Some(c) if c == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(_) => {
                    // Copy one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number_literal(&mut self) -> Result<Type, ParseTypeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            // '+' only valid right after e/E, but a trailing parse check catches abuse.
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v = Json::parse(text).map_err(|_| self.err("invalid numeric literal"))?;
        match v {
            Json::Int(_) | Json::Float(_) => Ok(Type::Literal(v)),
            _ => Err(self.err("invalid numeric literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::*;

    fn p(s: &str) -> Type {
        Type::parse(s).unwrap()
    }

    #[test]
    fn primitives() {
        assert_eq!(p("number"), float());
        assert_eq!(p("string"), string());
        assert_eq!(p("boolean"), boolean());
        assert_eq!(p("void"), void());
        assert_eq!(p("any"), any());
        assert_eq!(p("int"), int());
        assert_eq!(p("bool"), boolean());
    }

    #[test]
    fn literals() {
        assert_eq!(p("'yes'"), literal("yes"));
        assert_eq!(p("\"no\""), literal("no"));
        assert_eq!(p("123"), literal(123i64));
        assert_eq!(p("-1.5"), literal(-1.5f64));
        assert_eq!(p("true"), literal(true));
        assert_eq!(p("false"), literal(false));
    }

    #[test]
    fn arrays_and_generics() {
        assert_eq!(p("number[]"), list(float()));
        assert_eq!(p("number[][]"), list(list(float())));
        assert_eq!(p("Array<string>"), list(string()));
        assert_eq!(p("Array< Array<boolean> >"), list(list(boolean())));
    }

    #[test]
    fn objects_with_both_separators() {
        let want = dict([("x", float()), ("y", string())]);
        assert_eq!(p("{ x: number, y: string }"), want);
        assert_eq!(p("{ x: number; y: string }"), want);
        assert_eq!(p("{x:number,y:string,}"), want);
        assert_eq!(p("{}"), dict(Vec::<(String, Type)>::new()));
    }

    #[test]
    fn quoted_and_optional_fields() {
        assert_eq!(p("{ 'k-ey': number }"), dict([("k-ey", float())]));
        assert_eq!(p("{ x?: number }"), dict([("x", float())]));
    }

    #[test]
    fn unions_and_parens() {
        assert_eq!(p("'a' | 'b'"), union([literal("a"), literal("b")]));
        assert_eq!(
            p("('a' | 'b')[]"),
            list(union([literal("a"), literal("b")]))
        );
        assert_eq!(
            p("number | string | boolean"),
            union([float(), string(), boolean()])
        );
    }

    #[test]
    fn listing_2_type_roundtrip() {
        let src = "{ reason: string, answer: { title: string, author: string, year: number }[] }";
        let t = p(src);
        assert_eq!(t.to_typescript(), src);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(p(r"'it\'s'"), literal("it's"));
        assert_eq!(p(r#""a\\b""#), literal("a\\b"));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Type::parse("{ x: }").unwrap_err();
        assert!(err.offset() >= 5, "offset was {}", err.offset());
        assert!(Type::parse("").is_err());
        assert!(Type::parse("number]").is_err());
        assert!(Type::parse("wibble").is_err());
        assert!(Type::parse("{ x number }").is_err());
        assert!(Type::parse("'unterminated").is_err());
    }
}
