//! Random generation of type-conforming JSON values.
//!
//! Two callers need this:
//!
//! * the **mock language model**, when asked a task it has no knowledge of:
//!   it answers with an arbitrary value *of the right shape*. This mirrors
//!   the paper's OpenAI-Evals experiment, where "most benchmarks were
//!   unsolvable by GPT-3.5 and GPT-4" and the authors "solely ensured that
//!   \[the\] prompt yielded an output format congruent with the expected
//!   response" (§IV-B);
//! * **property tests**, which assert `ty.validate(&sample(ty)) == Ok(())`.

use askit_json::{Json, Map};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::ty::Type;

/// Words used when inventing string values; chosen to look like model output.
const WORDS: &[&str] = &[
    "alpha", "beacon", "cipher", "delta", "ember", "flux", "granite", "harbor", "iris", "juncture",
    "kernel", "lattice", "meadow", "nimbus", "onyx", "prairie", "quartz", "ripple", "summit",
    "thicket", "umbra", "vertex", "willow", "zephyr",
];

/// Maximum recursion depth; beyond it, containers come back empty.
const MAX_DEPTH: usize = 8;

/// Generates a random value conforming to `ty`.
///
/// The result always satisfies [`Type::validate`]; see the property tests.
///
/// ```
/// use askit_types::{dict, int, list, sample::sample, string};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let ty = list(dict([("name", string()), ("n", int())]));
/// let mut rng = StdRng::seed_from_u64(7);
/// let v = sample(&ty, &mut rng);
/// assert!(ty.validate(&v).is_ok());
/// ```
pub fn sample<R: Rng + ?Sized>(ty: &Type, rng: &mut R) -> Json {
    sample_at(ty, rng, 0)
}

fn sample_at<R: Rng + ?Sized>(ty: &Type, rng: &mut R, depth: usize) -> Json {
    match ty {
        Type::Int => Json::Int(rng.gen_range(-100..1000)),
        Type::Float => {
            // One decimal place: looks like a model answer, avoids float noise.
            Json::Float(f64::from(rng.gen_range(-1000..10000)) / 10.0)
        }
        Type::Bool => Json::Bool(rng.gen()),
        Type::Str => Json::Str(sample_words(rng)),
        Type::Void => Json::Null,
        Type::Any => {
            let choice = if depth >= MAX_DEPTH {
                rng.gen_range(0..4)
            } else {
                rng.gen_range(0..6)
            };
            let surrogate = match choice {
                0 => Type::Int,
                1 => Type::Float,
                2 => Type::Bool,
                3 => Type::Str,
                4 => Type::List(Box::new(Type::Int)),
                _ => Type::Dict(vec![("value".into(), Type::Str)]),
            };
            sample_at(&surrogate, rng, depth + 1)
        }
        Type::Literal(v) => v.clone(),
        Type::List(elem) => {
            let len = if depth >= MAX_DEPTH {
                0
            } else {
                rng.gen_range(0..4)
            };
            Json::Array((0..len).map(|_| sample_at(elem, rng, depth + 1)).collect())
        }
        Type::Dict(fields) => {
            let mut map = Map::with_capacity(fields.len());
            for (name, field_ty) in fields {
                map.insert(name.clone(), sample_at(field_ty, rng, depth + 1));
            }
            Json::Object(map)
        }
        Type::Union(variants) => match variants.choose(rng) {
            Some(v) => sample_at(v, rng, depth + 1),
            None => Json::Null,
        },
    }
}

fn sample_words<R: Rng + ?Sized>(rng: &mut R) -> String {
    let n = rng.gen_range(1..4);
    (0..n)
        .map(|_| *WORDS.choose(rng).expect("non-empty word list"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn samples_validate_for_every_primitive() {
        let mut r = rng();
        for ty in [int(), float(), boolean(), string(), void(), any()] {
            for _ in 0..50 {
                let v = sample(&ty, &mut r);
                assert!(ty.validate(&v).is_ok(), "{ty}: {v}");
            }
        }
    }

    #[test]
    fn literal_samples_are_the_literal() {
        let mut r = rng();
        assert_eq!(sample(&literal("fixed"), &mut r), Json::from("fixed"));
    }

    #[test]
    fn union_samples_cover_all_variants_eventually() {
        let ty = union([literal("a"), literal("b"), literal("c")]);
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            if let Json::Str(s) = sample(&ty, &mut r) {
                seen.insert(s);
            }
        }
        assert_eq!(
            seen.len(),
            3,
            "all union branches should be sampled: {seen:?}"
        );
    }

    #[test]
    fn deep_types_terminate() {
        // A pathological self-similar type: list^20(int).
        let mut ty = int();
        for _ in 0..20 {
            ty = list(ty);
        }
        let mut r = rng();
        let v = sample(&ty, &mut r);
        assert!(ty.validate(&v).is_ok());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ty = list(dict([("w", string()), ("n", int())]));
        let a = sample(&ty, &mut StdRng::seed_from_u64(7));
        let b = sample(&ty, &mut StdRng::seed_from_u64(7));
        let c = sample(&ty, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }
}
