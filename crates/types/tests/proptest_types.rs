//! Property tests tying together printing, parsing, validation and sampling.

use askit_json::Json;
use askit_types::{sample::sample, Type};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy over arbitrary AskIt types (field names kept identifier-like so
/// the TypeScript printer/parser round-trips).
fn arb_type() -> impl Strategy<Value = Type> {
    let scalar_literal = prop_oneof![
        "[a-z]{1,8}".prop_map(Json::Str),
        (-1000i64..1000).prop_map(Json::Int),
        any::<bool>().prop_map(Json::Bool),
    ];
    let leaf = prop_oneof![
        Just(Type::Int),
        Just(Type::Float),
        Just(Type::Bool),
        Just(Type::Str),
        scalar_literal.prop_map(Type::Literal),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| Type::List(Box::new(t))),
            prop::collection::vec(("[a-z][a-z0-9_]{0,6}", inner.clone()), 1..4).prop_map(
                |fields| {
                    // Deduplicate field names, keeping the first occurrence.
                    let mut seen = std::collections::BTreeSet::new();
                    let fields: Vec<_> = fields
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect();
                    Type::Dict(fields)
                }
            ),
            prop::collection::vec(inner, 2..4).prop_map(Type::Union),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Printing in TypeScript syntax and parsing back loses exactly the
    /// int/float distinction and nothing else.
    #[test]
    fn print_parse_roundtrip_modulo_ints(ty in arb_type()) {
        let printed = ty.to_typescript();
        let parsed = Type::parse(&printed).unwrap();
        prop_assert_eq!(parsed, flatten_unions(&ty.erase_ints()));
    }

    /// Sampled values always validate against their type.
    #[test]
    fn samples_validate(ty in arb_type(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = sample(&ty, &mut rng);
        prop_assert!(ty.validate(&v).is_ok(), "{} rejected its own sample {}", ty, v);
    }

    /// Coercion of a sampled value succeeds and the result still validates.
    #[test]
    fn coerce_is_stable(ty in arb_type(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = sample(&ty, &mut rng);
        let coerced = ty.coerce(&v).unwrap();
        prop_assert!(ty.validate(&coerced).is_ok());
        // Coercion is idempotent.
        prop_assert_eq!(ty.coerce(&coerced).unwrap(), coerced);
    }

    /// `erase_ints` widens: the erased type accepts everything the original
    /// accepts.
    #[test]
    fn erase_ints_widens(ty in arb_type()) {
        prop_assert!(ty.erase_ints().accepts(&ty));
    }

    /// `accepts` is reflexive.
    #[test]
    fn accepts_reflexive(ty in arb_type()) {
        prop_assert!(ty.accepts(&ty), "{} does not accept itself", ty);
    }

    /// The type parser never panics on arbitrary garbage.
    #[test]
    fn parser_total(s in "\\PC{0,48}") {
        let _ = Type::parse(&s);
    }
}

/// The printer flattens nested unions implicitly (they print as `A | B | C`);
/// mirror that on the original type for comparison.
fn flatten_unions(ty: &Type) -> Type {
    match ty {
        Type::List(t) => Type::List(Box::new(flatten_unions(t))),
        Type::Dict(fields) => Type::Dict(
            fields
                .iter()
                .map(|(k, t)| (k.clone(), flatten_unions(t)))
                .collect(),
        ),
        Type::Union(vs) => {
            let mut flat = Vec::new();
            for v in vs {
                match flatten_unions(v) {
                    Type::Union(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            if flat.len() == 1 {
                flat.pop().expect("len checked")
            } else {
                Type::Union(flat)
            }
        }
        other => other.clone(),
    }
}
