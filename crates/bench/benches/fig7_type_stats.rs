//! Figure 7 bench: the type-usage statistics pass, plus the type printer
//! and parser it leans on.

use askit_datasets::evals;
use askit_types::{stats::TypeStats, Type};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let benchmarks = evals::benchmarks();
    let types: Vec<Type> = benchmarks.iter().map(|b| b.answer_type.clone()).collect();
    let mut group = c.benchmark_group("fig7_type_stats");

    group.bench_function("collect_x50", |b| {
        b.iter(|| TypeStats::collect(types.iter()));
    });

    let printed: Vec<String> = types.iter().map(Type::to_typescript).collect();
    group.bench_function("print_x50", |b| {
        b.iter(|| {
            types
                .iter()
                .map(Type::to_typescript)
                .map(|s| s.len())
                .sum::<usize>()
        });
    });

    group.bench_function("parse_x50", |b| {
        b.iter(|| {
            printed
                .iter()
                .map(|s| Type::parse(s).expect("printed types parse").node_count())
                .sum::<usize>()
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
