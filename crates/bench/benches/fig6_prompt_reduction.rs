//! Figure 6 bench: runtime prompt synthesis vs hand-written prompts —
//! the cost of the machinery that makes the 16% reduction free.

use askit_core::prompt::direct_prompt;
use askit_datasets::evals;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let benchmarks = evals::benchmarks();
    let mut group = c.benchmark_group("fig6_prompt_reduction");

    // Building the typed AskIt prompt for every benchmark.
    group.bench_function("direct_prompt_x50", |b| {
        let parsed: Vec<_> = benchmarks
            .iter()
            .map(|bm| (askit_template::Template::parse(bm.task).unwrap(), bm))
            .collect();
        b.iter(|| {
            let mut total = 0usize;
            for (template, bm) in &parsed {
                let p = direct_prompt(template, &bm.args, &bm.answer_type, &[]).unwrap();
                total += p.len();
            }
            total
        });
    });

    // The measurement itself: reductions over the catalogue.
    group.bench_function("reductions_x50", |b| {
        b.iter(|| {
            benchmarks
                .iter()
                .map(evals::EvalBenchmark::reduction)
                .sum::<usize>()
        });
    });

    // Baseline: assembling the hand-written prompt by string concatenation.
    group.bench_function("manual_prompt_x50", |b| {
        b.iter(|| {
            benchmarks
                .iter()
                .map(|bm| bm.original_prompt().len())
                .sum::<usize>()
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
