//! Serial vs batched GSM8K throughput through the execution engine,
//! emitted as JSON (one object on stdout).
//!
//! The mock's `wall_clock_scale` turns its token-based latency model into
//! real (scaled-down) sleeping, reproducing the regime the engine exists
//! for: model round trips dominated by serving latency, not local compute.
//! Serial submission pays each round trip back-to-back; the engine's worker
//! pool overlaps them.
//!
//! Run with `cargo bench --bench engine_throughput`.

use std::time::Instant;

use askit_core::{Askit, AskitConfig};
use askit_datasets::gsm8k;
use askit_exec::EngineConfig;
use askit_llm::{MockLlm, MockLlmConfig, Oracle};

/// Scale simulated seconds down so the whole bench sleeps ~a second, not
/// the paper's 13 s × N problems.
const WALL_CLOCK_SCALE: f64 = 1.0 / 4096.0;

const PROBLEMS: usize = 48;
const SEED: u64 = 20240302;

fn stack(threads: usize) -> (Askit<MockLlm>, Vec<gsm8k::Gsm8kProblem>) {
    let problems = gsm8k::problems(PROBLEMS, SEED);
    let mut oracle = Oracle::standard();
    gsm8k::register_oracle(&mut oracle, &problems, SEED);
    let config = MockLlmConfig::gpt4()
        .with_seed(SEED)
        .with_wall_clock_scale(WALL_CLOCK_SCALE);
    let askit = Askit::new(MockLlm::new(config, oracle))
        .with_config(AskitConfig::default())
        .with_engine_config(EngineConfig::default().with_workers(threads));
    (askit, problems)
}

/// Answers every problem directly; returns (solved count, wall-clock secs).
fn run(threads: usize) -> (usize, f64) {
    let (askit, problems) = stack(threads);
    let started = Instant::now();
    let outcomes = askit.engine().map(&problems, |_, problem| {
        let task = askit.define(askit_types::int(), &problem.template).ok()?;
        let outcome = task.call_detailed(problem.args.clone()).ok()?;
        outcome.value.loosely_equals(&problem.answer).then_some(())
    });
    let elapsed = started.elapsed().as_secs_f64();
    (outcomes.into_iter().flatten().count(), elapsed)
}

fn main() {
    let batch_threads = 8;
    let (serial_solved, serial_secs) = run(1);
    let (batched_solved, batched_secs) = run(batch_threads);
    assert_eq!(
        serial_solved, batched_solved,
        "thread count must not change results"
    );
    println!(
        concat!(
            "{{\"bench\": \"engine_throughput\", \"workload\": \"gsm8k-direct\", ",
            "\"problems\": {}, \"solved\": {}, \"wall_clock_scale\": {}, ",
            "\"serial\": {{\"threads\": 1, \"seconds\": {:.4}, \"problems_per_sec\": {:.2}}}, ",
            "\"batched\": {{\"threads\": {}, \"seconds\": {:.4}, \"problems_per_sec\": {:.2}}}, ",
            "\"speedup\": {:.2}}}"
        ),
        PROBLEMS,
        serial_solved,
        WALL_CLOCK_SCALE,
        serial_secs,
        PROBLEMS as f64 / serial_secs.max(1e-9),
        batch_threads,
        batched_secs,
        PROBLEMS as f64 / batched_secs.max(1e-9),
        serial_secs / batched_secs.max(1e-9),
    );
}
