//! Table II bench: the full `define → compile` pipeline per task class,
//! in both surface syntaxes.

use askit_bench::quiet_askit;
use askit_datasets::top50;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minilang::Syntax;

fn bench(c: &mut Criterion) {
    let askit = quiet_askit(top50::register_oracle);
    let tasks = top50::tasks();
    let mut group = c.benchmark_group("table2_codegen");
    group.sample_size(20);
    // One cheap task (one-liner) and one loop-heavy task, per syntax.
    // (Not a py-ambiguous task: the Python pipeline legitimately fails
    // those, as Table II reports.)
    for &id in &[1usize, 2] {
        let task = tasks.iter().find(|t| t.id == id).expect("task exists");
        for syntax in [Syntax::Ts, Syntax::Py] {
            group.bench_with_input(
                BenchmarkId::new(format!("task{id:02}"), syntax.display_name()),
                &syntax,
                |b, &syntax| {
                    b.iter(|| {
                        let defined = askit
                            .define(task.return_type.clone(), task.template)
                            .unwrap()
                            .with_param_types(task.param_types.clone())
                            .with_tests(task.tests.clone());
                        defined
                            .compile(syntax)
                            .expect("fault-free compile succeeds")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
