//! Mixed-model routing under provider-side load — emitted as JSON (one
//! object on stdout, the `BENCH_mixed_model_routing.json` artifact).
//!
//! Two claims of the routing-aware scheduler are measured here, offline,
//! against the mock provider's scriptable load model:
//!
//! * **AIMD beats every static width.** A workload that mixes gpt35- and
//!   gpt4-routed tasks runs against a provider that caps gpt4 concurrency;
//!   admissions over the cap pay a large simulated throttle penalty (the
//!   429 + backoff round trip of a real provider). A single global width
//!   cannot win: sized for gpt4's cap it starves the uncapped cheap model,
//!   sized for the pool it slams gpt4 into the penalty. The adaptive
//!   scheduler's per-model gates cut only gpt4's width on throttle signals
//!   and leave gpt35 at full fan-out, so its throughput must beat the best
//!   static width in the sweep (CI gates on it, with tolerance).
//!
//! * **Escalation cuts expensive-model calls at equal accuracy.** With the
//!   mock's `cheap_miss` knob, a fraction of tasks is beyond the cheap
//!   model. Routing everything to gpt4 solves them all but pays the
//!   expensive model for every task; the `gpt35 -> gpt4` escalation ladder
//!   solves exactly as many while only the drawn misses ever reach gpt4.
//!   CI gates gpt4 call count strictly below the expensive-only run at
//!   equal solve counts.
//!
//! Throttling and width adaptation change timing and signals, never
//! response content, so every routing configuration must produce
//! bit-identical values (asserted below).
//!
//! Run with `cargo bench --bench mixed_model_routing`.

use std::time::{Duration, Instant};

use askit_core::{args, Askit, AskitConfig, ModelChoice};
use askit_exec::EngineConfig;
use askit_llm::{Escalation, FaultConfig, LoadProfile, MockLlm, MockLlmConfig, Oracle};

const SEED: u64 = 20240302;

// --- throughput section ----------------------------------------------------

/// Mixed workload: every fourth task routes to gpt4, the rest to gpt35.
const TASKS: usize = 192;
/// The engine's pool width (and the adaptive run's per-model ceiling).
const WORKERS: usize = 12;
/// Provider-side gpt4 concurrency cap; gpt35 is uncapped.
const GPT4_CAP: usize = 3;
/// Simulated cost per slot of oversubscription (the 429 + backoff round
/// trip; queueing makes hammering superlinear), scaled like latency.
const PENALTY: Duration = Duration::from_secs(20);
/// Scale simulated seconds down so the whole bench runs in under a second.
const WALL_CLOCK_SCALE: f64 = 1.0 / 4096.0;
/// The static global widths the adaptive run competes against.
const STATIC_WIDTHS: [usize; 3] = [GPT4_CAP, 6, WORKERS];

fn routed_model(task: usize) -> ModelChoice {
    if task.is_multiple_of(4) {
        ModelChoice::Gpt4
    } else {
        ModelChoice::Gpt35
    }
}

struct RoutingRun {
    values: Vec<i64>,
    seconds: f64,
    widths: String,
}

/// Runs the mixed workload at one width configuration and returns the
/// answers, wall-clock seconds, and the scheduler's final width line.
fn run_routing(workers: usize, adaptive: bool) -> RoutingRun {
    let config = MockLlmConfig::gpt4()
        .with_seed(SEED)
        .with_faults(FaultConfig::none())
        .with_wall_clock_scale(WALL_CLOCK_SCALE)
        .with_load(
            LoadProfile::default()
                .cap(ModelChoice::Gpt4, GPT4_CAP)
                .with_penalty(PENALTY),
        );
    let askit = Askit::new(MockLlm::new(config, Oracle::standard()))
        .with_config(AskitConfig::default())
        .with_engine_config(
            EngineConfig::default()
                .with_workers(workers)
                .with_adaptive(adaptive),
        );
    let queries: Vec<_> = (0..TASKS)
        .map(|i| {
            askit
                .query::<i64>("What is {{x}} plus {{y}}?")
                .args(args! { x: i as i64, y: 1000 })
                .model(routed_model(i))
                .build()
                .expect("template parses")
        })
        .collect();
    let started = Instant::now();
    let values: Vec<i64> = askit
        .run_batch_detailed(&queries)
        .into_iter()
        .map(|outcome| {
            outcome
                .expect("arithmetic oracle answers")
                .value
                .as_i64()
                .expect("typed int")
        })
        .collect();
    let seconds = started.elapsed().as_secs_f64();
    let engine = askit.engine();
    RoutingRun {
        values,
        seconds,
        widths: engine.describe_widths(),
    }
}

// --- escalation section ----------------------------------------------------

/// Escalation workload size and the share of tasks beyond the cheap model.
const ESC_TASKS: usize = 48;
const CHEAP_MISS_RATE: f64 = 0.5;

struct EscalationRun {
    solved: usize,
    gpt4_calls: usize,
    gpt35_calls: usize,
}

impl EscalationRun {
    /// Cost-weighted model spend: a gpt4 call bills 10x a gpt35 call
    /// (order-of-magnitude provider pricing gap).
    fn cost(&self) -> usize {
        self.gpt4_calls * 10 + self.gpt35_calls
    }
}

/// Runs the escalation workload either through the `gpt35 -> gpt4` ladder
/// or routed straight to gpt4 (the expensive-only baseline).
fn run_escalation(escalate: bool) -> EscalationRun {
    let config = MockLlmConfig::gpt4()
        .with_seed(SEED)
        .with_faults(FaultConfig::none())
        .with_cheap_miss_rate(CHEAP_MISS_RATE);
    let askit_config = if escalate {
        AskitConfig::default().with_escalation(Escalation::cheap_first())
    } else {
        AskitConfig::default().with_model(ModelChoice::Gpt4)
    };
    let askit = Askit::new(MockLlm::new(config, Oracle::standard()))
        .with_config(askit_config)
        .with_engine_config(EngineConfig::default().with_workers(4));
    let task = askit
        .define(askit_types::int(), "What is {{x}} plus {{y}}?")
        .expect("template parses");
    let bindings: Vec<_> = (0..ESC_TASKS as i64)
        .map(|i| args! { x: i, y: 9000 })
        .collect();
    let solved = task
        .call_batch(&bindings)
        .into_iter()
        .enumerate()
        .filter(|(i, outcome)| match outcome {
            Ok(outcome) => outcome.value == askit_json::Json::Int(*i as i64 + 9000),
            Err(_) => false,
        })
        .count();
    let model = askit.engine().model();
    EscalationRun {
        solved,
        gpt4_calls: model.calls_routed(ModelChoice::Gpt4),
        gpt35_calls: model.calls_routed(ModelChoice::Gpt35),
    }
}

fn main() {
    // Throughput sweep: static widths, then the adaptive scheduler at the
    // full pool width.
    let statics: Vec<(usize, RoutingRun)> = STATIC_WIDTHS
        .iter()
        .map(|&w| (w, run_routing(w, false)))
        .collect();
    let adaptive = run_routing(WORKERS, true);
    for (width, run) in &statics {
        assert_eq!(
            run.values, adaptive.values,
            "static width {width} changed results — throttling must only move time"
        );
    }
    let (best_width, best_static) = statics
        .iter()
        .max_by(|a, b| {
            (a.1.seconds)
                .partial_cmp(&b.1.seconds)
                .expect("finite")
                .reverse()
        })
        .expect("non-empty sweep");

    // Escalation: the ladder vs routing everything to the strong model.
    let ladder = run_escalation(true);
    let expensive = run_escalation(false);
    assert_eq!(
        ladder.solved, expensive.solved,
        "escalation must not lose accuracy"
    );
    assert!(
        ladder.gpt4_calls < expensive.gpt4_calls,
        "escalation must reduce expensive-model calls: {} vs {}",
        ladder.gpt4_calls,
        expensive.gpt4_calls
    );

    let static_json: Vec<String> = statics
        .iter()
        .map(|(width, run)| {
            format!(
                "{{\"width\": {width}, \"seconds\": {:.4}, \"tasks_per_sec\": {:.1}}}",
                run.seconds,
                TASKS as f64 / run.seconds.max(1e-9),
            )
        })
        .collect();
    println!(
        concat!(
            "{{\"bench\": \"mixed_model_routing\", \"workload\": \"mixed-direct\", ",
            "\"tasks\": {}, \"workers\": {}, \"gpt4_cap\": {}, ",
            "\"penalty_secs\": {}, \"wall_clock_scale\": {}, ",
            "\"static\": [{}], ",
            "\"best_static\": {{\"width\": {}, \"seconds\": {:.4}, \"tasks_per_sec\": {:.1}}}, ",
            "\"adaptive\": {{\"seconds\": {:.4}, \"tasks_per_sec\": {:.1}, \"widths\": \"{}\"}}, ",
            "\"adaptive_vs_best_static\": {:.3}, ",
            "\"escalation\": {{\"tasks\": {}, \"cheap_miss_rate\": {}, ",
            "\"ladder\": {{\"solved\": {}, \"gpt4_calls\": {}, \"gpt35_calls\": {}, \"cost\": {}}}, ",
            "\"expensive_only\": {{\"solved\": {}, \"gpt4_calls\": {}, \"gpt35_calls\": {}, \"cost\": {}}}, ",
            "\"cost_ratio\": {:.3}}}}}"
        ),
        TASKS,
        WORKERS,
        GPT4_CAP,
        PENALTY.as_secs(),
        WALL_CLOCK_SCALE,
        static_json.join(", "),
        best_width,
        best_static.seconds,
        TASKS as f64 / best_static.seconds.max(1e-9),
        adaptive.seconds,
        TASKS as f64 / adaptive.seconds.max(1e-9),
        adaptive.widths,
        best_static.seconds / adaptive.seconds.max(1e-9),
        ESC_TASKS,
        CHEAP_MISS_RATE,
        ladder.solved,
        ladder.gpt4_calls,
        ladder.gpt35_calls,
        ladder.cost(),
        expensive.solved,
        expensive.gpt4_calls,
        expensive.gpt35_calls,
        expensive.cost(),
        ladder.cost() as f64 / expensive.cost().max(1) as f64,
    );
}
