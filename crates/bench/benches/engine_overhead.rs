//! Engine overhead on a 100k-problem synthetic GSM8K sweep, warm-cache —
//! emitted as JSON (one object on stdout, the `BENCH_engine_overhead.json`
//! artifact).
//!
//! The paper's speedup story rests on cheap re-execution of many LLM calls;
//! this bench isolates what *the engine itself* costs per call once the
//! model is out of the picture. Every request is warmed into the completion
//! cache first, then the same 100k-request sweep is driven twice, in
//! serving-shaped waves (requests arrive in batches, as a real frontend
//! delivers them):
//!
//! * **baseline** — the pre-PR architecture: every wave pays
//!   spawn-per-call scoped threads ([`askit_exec::spawn_map`], the old
//!   `parallel_map` retained verbatim) and every probe re-hashes its full
//!   conversation (`complete_tagged` on a plain request).
//! * **pooled** — the engine's persistent worker pool
//!   ([`Engine::map`]) with the same per-request cache probes.
//!
//! On a pure warm sweep both modes do identical cache work, so the measured
//! gap is the engine overhead the PR removes: ~8 thread spawns + joins per
//! wave. A secondary section measures the zero-rehash fingerprint path on a
//! grown retry conversation: full re-hash per probe vs the memoized
//! [`PreparedRequest`] hash (the `run_direct` hot path).
//!
//! Run with `cargo bench --bench engine_overhead`. Set
//! `ASKIT_BENCH_PROBLEMS` to shrink the sweep for a quick look.
//!
//! `ASKIT_OBS=on` appends an **obs comparison**: the warm probe loop is
//! rerun serially in alternating rounds — obs-off (no sink, untraced
//! requests) vs obs-on (a sampled [`askit_obs::TraceSink`] installed and
//! a trace id on every request) — and the JSON gains an `obs_overhead`
//! section with the best round of each mode. The `obs-gate` CI job gates
//! on its `overhead_pct`. `ASKIT_OBS_SAMPLE` and `ASKIT_OBS_ROUNDS` tune
//! the sampling rate (default 64) and round count (default 5).

use std::time::Instant;

use askit_core::direct_prompt;
use askit_datasets::gsm8k;
use askit_exec::{spawn_map, Engine, EngineConfig};
use askit_llm::{
    CompletionRequest, FaultConfig, LanguageModel, MockLlm, MockLlmConfig, Oracle, PreparedRequest,
};
use askit_template::Template;

const DEFAULT_PROBLEMS: usize = 100_000;
const WAVE: usize = 64;
const WORKERS: usize = 8;
const SEED: u64 = 20240302;

/// Builds the Listing-2 direct-task request for one synthetic problem.
fn build_requests(problems: usize) -> Vec<CompletionRequest> {
    gsm8k::problems(problems, SEED)
        .into_iter()
        .map(|problem| {
            let template = Template::parse(&problem.template).expect("generated templates parse");
            let prompt = direct_prompt(&template, &problem.args, &askit_types::int(), &[])
                .expect("prompt renders");
            CompletionRequest::from_prompt(prompt)
        })
        .collect()
}

/// Sweeps every request through the engine cache in waves, returning
/// (hits observed by the caller, wall seconds).
fn sweep<F>(requests: &[CompletionRequest], mut wave_runner: F) -> (usize, f64)
where
    F: FnMut(&[CompletionRequest]) -> usize,
{
    let started = Instant::now();
    let mut served = 0usize;
    for wave in requests.chunks(WAVE) {
        served += wave_runner(wave);
    }
    (served, started.elapsed().as_secs_f64())
}

fn main() {
    let problems: usize = std::env::var("ASKIT_BENCH_PROBLEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_PROBLEMS);
    let obs_on = matches!(
        std::env::var("ASKIT_OBS").as_deref(),
        Ok("on") | Ok("1") | Ok("true")
    );

    let requests = build_requests(problems);
    let mut oracle = Oracle::standard();
    gsm8k::register_oracle(&mut oracle, &gsm8k::problems(problems, SEED), SEED);
    let llm = MockLlm::new(
        MockLlmConfig::gpt4()
            .with_seed(SEED)
            .with_faults(FaultConfig::none()),
        oracle,
    );
    // Capacity must hold the whole sweep so the timed passes are pure hits.
    let engine = Engine::with_config(
        llm,
        EngineConfig::default()
            .with_workers(WORKERS)
            .with_cache_capacity(problems.next_power_of_two().max(1 << 10)),
    );

    // Warm pass (untimed): populate the cache through the engine.
    for wave in requests.chunks(WAVE * 8) {
        let outcomes = engine.complete_batch(wave);
        assert!(outcomes.iter().all(Result::is_ok), "warm pass must succeed");
    }
    let warm_stats = engine.cache_stats();
    assert_eq!(warm_stats.evictions, 0, "sweep must fit in the cache");

    // Baseline: spawn-per-call threads per wave, full re-hash per probe.
    let before_sweeps = engine.cache_stats();
    let (baseline_served, baseline_secs) = sweep(&requests, |wave| {
        spawn_map(WORKERS, wave, |_, request| {
            engine.complete_tagged(request, 0).expect("warm hit")
        })
        .len()
    });

    // Pooled: the engine's persistent pool, same cache, same probes.
    let (pooled_served, pooled_secs) = sweep(&requests, |wave| {
        engine
            .map(wave, |_, request| {
                engine.complete_tagged(request, 0).expect("warm hit")
            })
            .len()
    });
    assert_eq!(baseline_served, pooled_served, "both modes serve the sweep");

    // Fingerprint microbench: a 6-turn retry conversation probed 200k times,
    // full re-hash vs memoized prepared hash. Black-box through `sum` so
    // the hashing is not optimized away.
    let mut conversation = requests[0].clone();
    for turn in 0..3 {
        conversation
            .messages
            .push(askit_llm::ChatMessage::assistant(format!(
                "wrong answer {turn} with some plausible length of refusal text attached"
            )));
        conversation.messages.push(askit_llm::ChatMessage::user(
            "Your previous response was not acceptable; please follow the format.",
        ));
    }
    let prepared = PreparedRequest::new(conversation.clone());
    const PROBES: u64 = 200_000;
    let started = Instant::now();
    let mut sum = 0u64;
    for salt in 0..PROBES {
        sum = sum.wrapping_add(conversation.fingerprint(salt));
    }
    let rehash_ns = started.elapsed().as_nanos() as f64 / PROBES as f64;
    let started = Instant::now();
    for salt in 0..PROBES {
        sum = sum.wrapping_add(prepared.fingerprint(salt));
    }
    let prepared_ns = started.elapsed().as_nanos() as f64 / PROBES as f64;
    assert!(sum != 1, "keep the probes observable");

    // The timed sweeps must have been pure warm-path work.
    let stats = engine.cache_stats();
    let sweep_lookups = (stats.hits + stats.misses) - (before_sweeps.hits + before_sweeps.misses);
    let sweep_hit_rate = (stats.hits - before_sweeps.hits) as f64 / sweep_lookups.max(1) as f64;
    assert!(
        sweep_hit_rate > 0.999,
        "timed sweeps must be warm: {sweep_hit_rate}"
    );

    // Obs comparison (ASKIT_OBS=on): serial warm probes obs-off (no sink,
    // untraced requests) vs obs-on (sampled sink installed, a trace id on
    // every request, so each probe pays the span fast path end to end).
    // The rounds alternate in-process over the same warm cache — machine
    // drift hits both sides — and the best round of each mode wins.
    // Separate processes proved far too noisy for a percent-level gate.
    let obs_overhead = obs_on.then(|| {
        let sample_one_in: u64 = std::env::var("ASKIT_OBS_SAMPLE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let rounds: usize = std::env::var("ASKIT_OBS_ROUNDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5)
            .max(1);
        // Both sides probe equally fresh clones, so heap locality cannot
        // masquerade as instrumentation cost.
        let untraced = requests.clone();
        let mut traced = requests.clone();
        for request in &mut traced {
            request.options = request.options.stamp_trace(askit_obs::TraceId::generate());
        }
        // Serial probes: the pooled sweep's thread-scheduling jitter is
        // ±10% in CI containers, which would drown a percent-level gate.
        // Observability cost is per-call, so a tight single-thread probe
        // loop measures exactly the quantity under test.
        let serial_sweep = |reqs: &[CompletionRequest]| {
            let started = Instant::now();
            for request in reqs {
                engine.complete_tagged(request, 0).expect("warm hit");
            }
            started.elapsed().as_secs_f64()
        };
        let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
        for round in 0..rounds {
            // Alternate which mode goes first so per-round warmup (page
            // faults, branch history) is shared evenly.
            let order: [bool; 2] = if round % 2 == 0 {
                [false, true]
            } else {
                [true, false]
            };
            for on in order {
                if on {
                    let _sink = askit_obs::TraceSink::new()
                        .with_sample_one_in(sample_one_in)
                        .install();
                    on_secs = on_secs.min(serial_sweep(&traced));
                    askit_obs::trace::uninstall();
                } else {
                    off_secs = off_secs.min(serial_sweep(&untraced));
                }
            }
        }
        (off_secs, on_secs, sample_one_in, rounds)
    });
    let obs_json = match obs_overhead {
        Some((off_secs, on_secs, sample_one_in, rounds)) => format!(
            concat!(
                "{{\"rounds\": {}, \"sample_one_in\": {}, ",
                "\"off\": {{\"seconds\": {:.4}, \"problems_per_sec\": {:.0}}}, ",
                "\"on\": {{\"seconds\": {:.4}, \"problems_per_sec\": {:.0}}}, ",
                "\"overhead_pct\": {:.2}}}"
            ),
            rounds,
            sample_one_in,
            off_secs,
            problems as f64 / off_secs.max(1e-9),
            on_secs,
            problems as f64 / on_secs.max(1e-9),
            (on_secs / off_secs.max(1e-9) - 1.0) * 100.0,
        ),
        None => "null".to_owned(),
    };
    println!(
        concat!(
            "{{\"bench\": \"engine_overhead\", \"workload\": \"synthetic-gsm8k-warm\", ",
            "\"obs\": \"{}\", \"obs_overhead\": {}, ",
            "\"problems\": {}, \"wave\": {}, \"workers\": {}, \"hit_rate\": {:.4}, ",
            "\"baseline\": {{\"mode\": \"spawn-per-call\", \"seconds\": {:.4}, \"problems_per_sec\": {:.0}}}, ",
            "\"pooled\": {{\"mode\": \"persistent-pool\", \"seconds\": {:.4}, \"problems_per_sec\": {:.0}}}, ",
            "\"speedup\": {:.2}, ",
            "\"fingerprint\": {{\"conversation_turns\": 7, \"full_rehash_ns\": {:.1}, \"prepared_ns\": {:.1}, \"speedup\": {:.1}}}}}"
        ),
        if obs_on { "on" } else { "off" },
        obs_json,
        problems,
        WAVE,
        WORKERS,
        sweep_hit_rate,
        baseline_secs,
        problems as f64 / baseline_secs.max(1e-9),
        pooled_secs,
        problems as f64 / pooled_secs.max(1e-9),
        baseline_secs / pooled_secs.max(1e-9),
        rehash_ns,
        prepared_ns,
        rehash_ns / prepared_ns.max(1e-3),
    );
}
