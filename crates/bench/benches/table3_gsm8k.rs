//! Table III bench: the machinery cost of the two execution modes.
//!
//! Criterion measures wall time, so the "direct" series here is the real
//! cost of the AskIt runtime machinery (prompt synthesis + mock inference +
//! extraction + validation) — the simulated *network* latency that dominates
//! the paper's 13–23 s is reported by `askit-eval table3`, not here. The
//! "compiled" series is the genuine article: executing generated MiniLang.

use askit_bench::quiet_askit;
use askit_core::Example;
use askit_datasets::gsm8k;
use criterion::{criterion_group, criterion_main, Criterion};
use minilang::Syntax;

fn bench(c: &mut Criterion) {
    let problems = gsm8k::problems(16, 7);
    let askit = quiet_askit(|oracle| gsm8k::register_oracle(oracle, &problems, 1));
    // Pick a problem the run-seed gates as solvable.
    let problem = problems
        .iter()
        .find(|p| p.is_codable(1))
        .expect("some problem is solvable");
    let task = askit
        .define(askit_types::int(), &problem.template)
        .unwrap()
        .with_tests([Example {
            input: problem.args.clone(),
            output: problem.answer.clone(),
        }]);

    let mut group = c.benchmark_group("table3_gsm8k");
    group.sample_size(20);

    group.bench_function("direct_mode_machinery", |b| {
        b.iter(|| task.call(problem.args.clone()).expect("solvable"));
    });

    let compiled = task.compile(Syntax::Ts).expect("codable");
    group.bench_function("compiled_mode_execution", |b| {
        b.iter(|| compiled.call(problem.args.clone()).expect("runs"));
    });

    group.bench_function("compilation_pipeline", |b| {
        b.iter(|| task.compile(Syntax::Ts).expect("codable"));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
