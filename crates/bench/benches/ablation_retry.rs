//! Ablation: the cost of the §III-E feedback loop as the model's fault rate
//! grows. At rate 0 the loop is pure overhead; at high rates it is what
//! keeps answers typed at all.

use askit_bench::faulty_askit;
use askit_core::args;
use askit_llm::FaultConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_retry");
    group.sample_size(30);
    for &rate in &[0.0f64, 0.15, 0.3, 0.5] {
        let askit = faulty_askit(
            FaultConfig {
                direct_fault_rate: rate,
                code_bug_rate: 0.0,
                decay: 0.35,
            },
            |_| {},
        );
        group.bench_with_input(
            BenchmarkId::new("direct_ask", format!("fault{:02}", (rate * 100.0) as u32)),
            &askit,
            |b, askit| {
                b.iter(|| {
                    askit
                        .ask(
                            askit_types::int(),
                            "What is {{x}} plus {{y}}?",
                            args! { x: 31, y: 11 },
                        )
                        .expect("retries converge")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
