//! Ablation: the answer-extraction path — fence extraction + JSON parse +
//! type validation — by answer size. This is the per-call tax of type-guided
//! output control.

use askit_json::{extract, Json};
use askit_types::{dict, int, list, string, Type};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn response_with(n_books: usize) -> (String, Type) {
    let mut books = Vec::new();
    for i in 0..n_books {
        books.push(format!(
            "{{\"title\": \"Book number {i}\", \"author\": \"Author {i}\", \"year\": {}}}",
            1950 + (i % 70)
        ));
    }
    let text = format!(
        "Here you go!\n```json\n{{\"reason\": \"compiled a standard list\", \"answer\": [{}]}}\n```",
        books.join(", ")
    );
    let ty = dict([
        ("reason", string()),
        (
            "answer",
            list(dict([
                ("title", string()),
                ("author", string()),
                ("year", int()),
            ])),
        ),
    ]);
    (text, ty)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_json");
    for &n in &[1usize, 10, 100] {
        let (text, ty) = response_with(n);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("extract_parse_validate", n), &n, |b, _| {
            b.iter(|| {
                let v = extract::extract_json(&text).expect("fenced JSON");
                ty.validate(&v).expect("typed");
                v.node_count()
            });
        });
        group.bench_with_input(BenchmarkId::new("parse_only", n), &n, |b, _| {
            let inner = extract::code_block(&text, "json").unwrap().to_owned();
            b.iter(|| Json::parse(&inner).expect("valid").node_count());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
