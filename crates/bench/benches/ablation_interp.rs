//! Ablation: MiniLang frontend and interpreter costs — parse/check/execute
//! per surface syntax, plus interpreter scaling with loop size (the fuel
//! counter's overhead is inherent in these numbers).

use askit_json::{json, Map};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minilang::{check_program, parse_py, parse_ts, Interp};

const TS_SRC: &str = "export function work({n}: {n: number}): number {\n  let acc = 0;\n  for (let i = 1; i <= n; i++) {\n    if (i % 3 === 0) {\n      acc += i * 2;\n    } else {\n      acc += 1;\n    }\n  }\n  return acc;\n}";

const PY_SRC: &str = "def work(n):\n    acc = 0\n    for i in range(1, n + 1):\n        if i % 3 == 0:\n            acc += i * 2\n        else:\n            acc += 1\n    return acc\n";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_interp");

    group.bench_function("parse_ts", |b| b.iter(|| parse_ts(TS_SRC).expect("parses")));
    group.bench_function("parse_py", |b| b.iter(|| parse_py(PY_SRC).expect("parses")));

    let ts = parse_ts(TS_SRC).unwrap();
    let py = parse_py(PY_SRC).unwrap();
    group.bench_function("static_check", |b| {
        b.iter(|| {
            let findings = check_program(&ts);
            assert!(findings.is_empty());
        })
    });

    for &n in &[10i64, 100, 1000] {
        let mut args = Map::new();
        args.insert("n", json!(n));
        group.bench_with_input(BenchmarkId::new("exec_ts_source", n), &args, |b, args| {
            b.iter(|| Interp::new(&ts).call_json("work", args).expect("runs"));
        });
        group.bench_with_input(BenchmarkId::new("exec_py_source", n), &args, |b, args| {
            b.iter(|| Interp::new(&py).call_json("work", args).expect("runs"));
        });
    }

    // Pretty-printing (the mock model's code-emission backend).
    group.bench_function("print_both_syntaxes", |b| {
        b.iter(|| {
            minilang::print_program(&ts, minilang::Syntax::Ts).len()
                + minilang::print_program(&ts, minilang::Syntax::Py).len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
