//! Figure 5 bench: codegen + example validation throughput on
//! HumanEval-style tasks (one representative per family size class).

use askit_bench::quiet_askit;
use askit_datasets::humaneval;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minilang::Syntax;

fn bench(c: &mut Criterion) {
    let askit = quiet_askit(humaneval::register_oracle);
    let tasks = humaneval::tasks();
    let mut group = c.benchmark_group("fig5_humaneval");
    group.sample_size(20);
    // The first easy task of each of three families (skip hard ids).
    for &id in &[0usize, 1, 8] {
        let task = &tasks[id];
        assert!(!task.hard, "benchmark tasks must be solvable");
        group.bench_with_input(BenchmarkId::new("compile", id), task, |b, task| {
            b.iter(|| {
                askit
                    .define(task.return_type.clone(), &task.prompt)
                    .unwrap()
                    .with_param_types(task.param_types.clone())
                    .with_examples(task.few_shot.clone())
                    .with_tests(task.tests.clone())
                    .compile(Syntax::Ts)
                    .expect("solvable task compiles")
            });
        });
    }
    // The LOC metric itself.
    group.bench_function("count_loc", |b| {
        let src = &tasks[0].reference_source;
        b.iter(|| minilang::loc::count_loc(src));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
