//! # askit-bench
//!
//! Shared helpers for the Criterion benches. The bench targets live in
//! `benches/`; each regenerates (a fast slice of) one table or figure of the
//! paper, or ablates a design choice called out in DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use askit_core::{Askit, AskitConfig};
use askit_llm::{FaultConfig, MockLlm, MockLlmConfig, Oracle};

/// An AskIt stack over a fault-free mock with the given extra knowledge.
pub fn quiet_askit(register: impl FnOnce(&mut Oracle)) -> Askit<MockLlm> {
    let mut oracle = Oracle::standard();
    register(&mut oracle);
    let llm = MockLlm::new(
        MockLlmConfig::gpt35().with_faults(FaultConfig::none()),
        oracle,
    );
    Askit::new(llm).with_config(AskitConfig::default())
}

/// An AskIt stack over a mock with the given fault configuration.
pub fn faulty_askit(faults: FaultConfig, register: impl FnOnce(&mut Oracle)) -> Askit<MockLlm> {
    let mut oracle = Oracle::standard();
    register(&mut oracle);
    let llm = MockLlm::new(MockLlmConfig::gpt35().with_faults(faults), oracle);
    Askit::new(llm).with_config(AskitConfig::default())
}
