//! Property tests for the metrics layer.
//!
//! * **Histogram quantiles vs. exact order statistics**: for arbitrary
//!   observation sets, every reported quantile must land in the same
//!   log-linear bucket as the exact sort-based quantile — i.e. within
//!   one bucket width (≤25% relative error, exact below 8).
//! * **Exposition round-trip**: arbitrary counter/gauge/histogram
//!   registrations render to Prometheus text that parses back to the
//!   same sample values, including hostile label values (quotes,
//!   backslashes, newlines).

use askit_obs::metrics::{parse_exposition, Registry};
use askit_obs::Histogram;
use proptest::prelude::*;

/// The exact `q`-quantile under the histogram's rank convention:
/// rank `ceil(q · n)` (1-based) of the sorted observations.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn quantiles_match_exact_sort_within_bucket_error(
        values in prop::collection::vec(0u64..2_000_000, 1..400),
        q_millis in 1u64..1000,
    ) {
        let histogram = Histogram::new();
        for &v in &values {
            histogram.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let q = q_millis as f64 / 1000.0;
        let exact = exact_quantile(&sorted, q);
        let got = histogram.quantile(q);
        // The reported value lies inside (or touches) the bucket holding
        // the exact value: ≤25% relative error, +1 absolute for the
        // small exact buckets.
        let tolerance = exact as f64 * 0.25 + 1.0;
        prop_assert!(
            (got - exact as f64).abs() <= tolerance,
            "q={q}: histogram {got}, exact {exact} (n={})",
            sorted.len()
        );
        prop_assert_eq!(histogram.count(), values.len() as u64);
        prop_assert_eq!(histogram.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn exposition_round_trips_arbitrary_series(
        count_value in 0u64..1_000_000,
        gauge_value in -500_000i64..500_000,
        observations in prop::collection::vec(0u64..100_000, 0..50),
        label in prop::collection::vec(0u8..255, 0..12),
    ) {
        // Hostile label value: arbitrary bytes coerced to a string
        // (lossy), covering quotes, backslashes, and newlines.
        let label = String::from_utf8_lossy(&label).into_owned();
        let registry = Registry::new();
        registry
            .counter("askit_prop_total", "prop counter", &[("tag", &label)])
            .add(count_value);
        registry
            .gauge("askit_prop_gauge", "prop gauge", &[("tag", &label)])
            .set(gauge_value);
        let histogram = registry.histogram("askit_prop_us", "prop histogram", &[("tag", &label)]);
        for &v in &observations {
            histogram.observe(v);
        }

        let text = registry.render_prometheus();
        let parsed = parse_exposition(&text);
        prop_assert!(parsed.is_ok(), "render did not parse: {:?}\n{text}", parsed.err());
        let samples = parsed.unwrap();
        let find = |name: &str| -> Option<f64> {
            samples
                .iter()
                .find(|s| s.name == name && s.label("tag") == Some(label.as_str()))
                .map(|s| s.value)
        };
        prop_assert_eq!(find("askit_prop_total"), Some(count_value as f64));
        prop_assert_eq!(find("askit_prop_gauge"), Some(gauge_value as f64));
        prop_assert_eq!(find("askit_prop_us_count"), Some(observations.len() as f64));
        prop_assert_eq!(
            find("askit_prop_us_sum"),
            Some(observations.iter().sum::<u64>() as f64)
        );
    }
}
