//! Injectable time source.
//!
//! Span durations and event timestamps come from an [`ObsClock`] rather
//! than raw `Instant::now()` calls, so tests can drive a [`ManualClock`]
//! and assert exact microsecond values in exported traces. Production
//! code never constructs a clock explicitly — [`SystemClock`] is the
//! default everywhere.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic time source for the observability layer.
///
/// Implementations must be monotonic (never move backwards); the trace
/// sink subtracts its construction-time `now()` from every later reading
/// to produce the microsecond offsets Chrome trace events carry.
pub trait ObsClock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real clock: `Instant::now()`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl ObsClock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A hand-cranked clock for deterministic tests: time stands still until
/// [`ManualClock::advance`] moves it.
#[derive(Debug)]
pub struct ManualClock {
    base: Instant,
    offset: Mutex<Duration>,
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ManualClock {
    /// A clock frozen at its moment of construction.
    pub fn new() -> Self {
        ManualClock {
            base: Instant::now(),
            offset: Mutex::new(Duration::ZERO),
        }
    }

    /// Moves the clock forward by `by`. (It can only move forward —
    /// monotonicity is part of the [`ObsClock`] contract.)
    pub fn advance(&self, by: Duration) {
        *crate::lock(&self.offset) += by;
    }
}

impl ObsClock for ManualClock {
    fn now(&self) -> Instant {
        self.base + *crate::lock(&self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_exactly() {
        let clock = ManualClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0, "frozen until advanced");
        clock.advance(Duration::from_micros(250));
        assert_eq!(clock.now() - t0, Duration::from_micros(250));
        clock.advance(Duration::from_millis(3));
        assert_eq!(clock.now() - t0, Duration::from_micros(3250));
    }
}
