//! `ASKIT_LOG`-filtered leveled logging.
//!
//! Diagnostic output across the workspace goes through
//! [`error!`](crate::error), [`warn!`](crate::warn),
//! [`info!`](crate::info), [`debug!`](crate::debug), and
//! [`trace!`](crate::trace!) with a *target*
//! string (`"askit_exec"`, `"askit_http"`, …), and a single environment
//! variable governs all of it:
//!
//! ```text
//! ASKIT_LOG=debug                  # everything at debug and above
//! ASKIT_LOG=warn,askit_http=trace  # default warn, but the HTTP layer at trace
//! ASKIT_LOG=off                    # silence
//! ```
//!
//! Unset means `warn`: errors and warnings still reach stderr, the
//! chatter does not. The filter parses once; [`set_filter`] overrides it
//! for tests. The disabled fast path is one relaxed atomic load of the
//! process-wide maximum level, so `debug!` in a hot loop costs nothing
//! when nobody asked for debug output.
//!
//! Lines render as `[ 12.345s LEVEL target] message` on stderr, the
//! timestamp being seconds since the first log call — enough to
//! correlate with trace timelines without dragging in wall-clock
//! formatting.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed and the caller will see it.
    Error = 1,
    /// Something unexpected was absorbed (fallbacks, degraded modes).
    Warn = 2,
    /// Lifecycle milestones (listening, shutting down).
    Info = 3,
    /// Per-operation diagnostics.
    Debug = 4,
    /// Per-step diagnostics (wire attempts, cache probes).
    Trace = 5,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn parse(text: &str) -> Option<u8> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(0),
            "error" => Some(Level::Error as u8),
            "warn" | "warning" => Some(Level::Warn as u8),
            "info" => Some(Level::Info as u8),
            "debug" => Some(Level::Debug as u8),
            "trace" => Some(Level::Trace as u8),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Filter {
    /// Max level for targets without an override; 0 = off.
    default: u8,
    /// `(target, max level)` overrides, exact match on target.
    overrides: Vec<(String, u8)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut filter = Filter {
            default: Level::Warn as u8,
            overrides: Vec::new(),
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => {
                    if let Some(level) = Level::parse(part) {
                        filter.default = level;
                    }
                }
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        filter.overrides.push((target.to_owned(), level));
                    }
                }
            }
        }
        filter
    }

    fn max_level(&self) -> u8 {
        self.overrides
            .iter()
            .map(|(_, level)| *level)
            .chain([self.default])
            .max()
            .unwrap_or(0)
    }

    fn level_for(&self, target: &str) -> u8 {
        self.overrides
            .iter()
            .find(|(t, _)| t == target)
            .map(|(_, level)| *level)
            .unwrap_or(self.default)
    }
}

/// Process-wide max enabled level (0 = everything off): the one-load
/// fast path that makes disabled log calls free.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX); // MAX = "not initialized yet"

fn filter() -> &'static RwLock<Filter> {
    static FILTER: OnceLock<RwLock<Filter>> = OnceLock::new();
    FILTER.get_or_init(|| {
        let spec = std::env::var("ASKIT_LOG").unwrap_or_default();
        let parsed = if spec.trim().is_empty() {
            Filter {
                default: Level::Warn as u8,
                overrides: Vec::new(),
            }
        } else {
            Filter::parse(&spec)
        };
        MAX_LEVEL.store(parsed.max_level(), Ordering::Relaxed);
        RwLock::new(parsed)
    })
}

/// Replaces the active filter with `spec` (same grammar as `ASKIT_LOG`).
/// Used by tests and by binaries that want a non-`warn` default when the
/// environment is silent (e.g. `askit-eval serve` defaults to `info`).
pub fn set_filter(spec: &str) {
    let parsed = Filter::parse(spec);
    // Take the lock before publishing the max level: `filter()`'s lazy
    // init also stores MAX_LEVEL, and must not clobber ours afterwards.
    let mut active = filter().write().unwrap_or_else(|e| e.into_inner());
    MAX_LEVEL.store(parsed.max_level(), Ordering::Relaxed);
    *active = parsed;
}

/// Applies `spec` only when `ASKIT_LOG` is unset or empty — lets a
/// binary raise its default verbosity without overriding the operator.
pub fn set_default_filter(spec: &str) {
    if std::env::var("ASKIT_LOG").map(|v| !v.trim().is_empty()) != Ok(true) {
        set_filter(spec);
    }
}

/// Whether a `level` record for `target` would be emitted.
pub fn enabled(level: Level, target: &str) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == u8::MAX {
        // First call: force filter construction, then re-check.
        let _ = filter();
        return enabled(level, target);
    }
    if level as u8 > max {
        return false;
    }
    level as u8
        <= filter()
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .level_for(target)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Emits one record (macro plumbing — call through the level macros).
pub fn write(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !enabled(level, target) {
        return;
    }
    let elapsed = epoch().elapsed();
    let stderr = std::io::stderr();
    let mut locked = stderr.lock();
    let _ = writeln!(
        locked,
        "[{:>8.3}s {:5} {target}] {args}",
        elapsed.as_secs_f64(),
        level.tag(),
    );
}

/// Logs at [`Level::Error`]: `error!("askit_http", "gave up: {err}")`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Debug, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Trace, $target, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_grammar_parses_defaults_and_overrides() {
        let filter = Filter::parse("debug,askit_http=trace,askit_eval=off");
        assert_eq!(filter.default, Level::Debug as u8);
        assert_eq!(filter.level_for("askit_http"), Level::Trace as u8);
        assert_eq!(filter.level_for("askit_eval"), 0);
        assert_eq!(filter.level_for("askit_exec"), Level::Debug as u8);
        assert_eq!(filter.max_level(), Level::Trace as u8);

        let off = Filter::parse("off");
        assert_eq!(off.default, 0);
        assert_eq!(off.max_level(), 0);

        let noise = Filter::parse("bogus,=,x=");
        assert_eq!(
            noise.default,
            Level::Warn as u8,
            "garbage keeps the default"
        );
    }

    #[test]
    fn set_filter_governs_enabled() {
        set_filter("warn,askit_http=debug");
        assert!(enabled(Level::Warn, "askit_exec"));
        assert!(!enabled(Level::Info, "askit_exec"));
        assert!(enabled(Level::Debug, "askit_http"));
        assert!(!enabled(Level::Trace, "askit_http"));
        set_filter("off");
        assert!(!enabled(Level::Error, "askit_exec"));
        set_filter("warn");
    }
}
