//! Metrics: atomic counters/gauges, log-linear histograms, Prometheus
//! text exposition.
//!
//! A [`Registry`] maps `(name, labels)` to a metric handle. Registration
//! (first call per series) takes a shard lock; after that, call sites
//! hold the returned `Arc` handle and the hot path is a few relaxed
//! atomic operations — no locks, no allocation. Series lookup is sharded
//! by FNV-1a of the canonical series key, so even un-cached lookups from
//! many threads spread across eight locks.
//!
//! Histograms use log-linear buckets (four linear sub-buckets per
//! power-of-two octave): 252 fixed buckets cover the full `u64` range
//! with ≤25% worst-case quantile error, values 0–7 exact. They render in
//! Prometheus exposition as `summary` series — precomputed
//! p50/p90/p99 quantile samples plus `_sum`/`_count` — which keeps the
//! text format compact while still carrying the latency story.
//!
//! [`Registry::render_prometheus`] produces the text exposition served at
//! `GET /metrics`; [`parse_exposition`] parses it back (the round-trip
//! property test and the CI gate's validator are built on it).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Four linear sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 2;
const SUBS: u64 = 1 << SUB_BITS;
/// Groups 0..=62 cover the u64 range; 63rd group would overflow bounds.
const GROUPS: usize = 63;
const BUCKETS: usize = GROUPS * SUBS as usize;

/// Bucket index for `value`: exact below [`SUBS`], log-linear above.
fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let offset = ((value >> (group - 1)) - SUBS) as usize;
    (group * SUBS as usize + offset).min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    let group = index / SUBS as usize;
    let sub = (index % SUBS as usize) as u64;
    if group == 0 {
        sub
    } else {
        (SUBS + sub) << (group - 1)
    }
}

/// Exclusive upper bound of bucket `index` (saturating at the top).
fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1)
    }
}

/// A log-linear histogram of `u64` observations (latencies in
/// microseconds, sizes in bytes, …).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Three relaxed atomic adds.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated inside
    /// the winning bucket. The rank-`r` element's bucket is found
    /// exactly; the interpolation error is bounded by the bucket width
    /// (≤25% of the value). Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for index in 0..BUCKETS {
            let in_bucket = self.buckets[index].load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if cumulative + in_bucket >= rank {
                let lower = bucket_lower(index) as f64;
                let upper = bucket_upper(index).min(u64::MAX / 2) as f64;
                let into = (rank - cumulative) as f64 / in_bucket as f64;
                return lower + (upper - lower) * into;
            }
            cumulative += in_bucket;
        }
        bucket_upper(BUCKETS - 1) as f64
    }
}

/// What kind of metric a series is (drives the `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    labels: Vec<(String, String)>,
    handle: Handle,
}

const SHARDS: usize = 8;

/// A sharded metrics registry.
///
/// Most code uses the process-wide [`global`] registry; tests construct
/// their own to stay isolated.
pub struct Registry {
    shards: [Mutex<HashMap<String, Series>>; SHARDS],
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let series: usize = self.shards.iter().map(|s| crate::lock(s).len()).sum();
        f.debug_struct("Registry").field("series", &series).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide registry (what `GET /metrics` renders).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// Registers (or retrieves) a counter series. Panics if the series
    /// exists under a different kind — that is a programming error, not
    /// a runtime condition.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.series(name, help, labels, Kind::Counter, || {
            Handle::Counter(Arc::new(Counter::default()))
        }) {
            Handle::Counter(counter) => counter,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        match self.series(name, help, labels, Kind::Gauge, || {
            Handle::Gauge(Arc::new(Gauge::default()))
        }) {
            Handle::Gauge(gauge) => gauge,
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Registers (or retrieves) a histogram series (rendered as a
    /// Prometheus `summary` with p50/p90/p99).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, help, labels, Kind::Histogram, || {
            Handle::Histogram(Arc::new(Histogram::new()))
        }) {
            Handle::Histogram(histogram) => histogram,
            _ => unreachable!("kind checked in series()"),
        }
    }

    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        debug_assert!(valid_metric_name(name), "invalid metric name: {name}");
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        sorted.sort();
        let key = series_key(name, &sorted);
        let shard = &self.shards[(crate::fnv1a(key.as_bytes()) as usize) % SHARDS];
        let mut shard = crate::lock(shard);
        let series = shard.entry(key).or_insert_with(|| Series {
            name,
            help,
            kind,
            labels: sorted,
            handle: make(),
        });
        assert!(
            series.kind == kind,
            "metric {name} registered as {:?} and {kind:?}",
            series.kind
        );
        series.handle.clone()
    }

    /// Renders Prometheus text exposition (format version 0.0.4): one
    /// `# HELP`/`# TYPE` pair per family, samples sorted by name then
    /// labels, histograms as summaries with p50/p90/p99.
    pub fn render_prometheus(&self) -> String {
        let mut families: Vec<(String, Vec<String>, Kind, &'static str)> = Vec::new();
        let mut by_name: HashMap<&'static str, usize> = HashMap::new();
        for shard in &self.shards {
            let shard = crate::lock(shard);
            let mut entries: Vec<&Series> = shard.values().collect();
            entries.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
            for series in entries {
                let index = *by_name.entry(series.name).or_insert_with(|| {
                    families.push((series.name.to_owned(), Vec::new(), series.kind, series.help));
                    families.len() - 1
                });
                render_samples(&mut families[index].1, series);
            }
        }
        families.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, mut samples, kind, help) in families {
            let kind = match kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "summary",
            };
            let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            samples.sort();
            for sample in samples {
                out.push_str(&sample);
                out.push('\n');
            }
        }
        out
    }

    /// Every sample the exposition would contain, as structured values
    /// (what `/stats` merges into its JSON view).
    pub fn snapshot(&self) -> Vec<Sample> {
        parse_exposition(&self.render_prometheus()).expect("own exposition parses")
    }

    /// The current value of a counter series, zero if never registered.
    /// (Read-only: does **not** create the series.)
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        sorted.sort();
        let key = series_key(name, &sorted);
        let shard = &self.shards[(crate::fnv1a(key.as_bytes()) as usize) % SHARDS];
        let shard = crate::lock(shard);
        match shard.get(&key).map(|series| &series.handle) {
            Some(Handle::Counter(counter)) => counter.get(),
            _ => 0,
        }
    }
}

fn series_key(name: &str, sorted_labels: &[(String, String)]) -> String {
    let mut key = String::with_capacity(name.len() + sorted_labels.len() * 16);
    key.push_str(name);
    for (k, v) in sorted_labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

fn render_samples(out: &mut Vec<String>, series: &Series) {
    let labels = |extra: &[(&str, &str)]| -> String {
        let mut all: Vec<(String, String)> = series.labels.clone();
        for (k, v) in extra {
            all.push(((*k).to_owned(), (*v).to_owned()));
        }
        if all.is_empty() {
            return String::new();
        }
        all.sort();
        let mut rendered = String::from("{");
        for (i, (k, v)) in all.iter().enumerate() {
            if i > 0 {
                rendered.push(',');
            }
            let _ = write!(rendered, "{k}=\"{}\"", escape_label(v));
        }
        rendered.push('}');
        rendered
    };
    match &series.handle {
        Handle::Counter(counter) => {
            out.push(format!("{}{} {}", series.name, labels(&[]), counter.get()));
        }
        Handle::Gauge(gauge) => {
            out.push(format!("{}{} {}", series.name, labels(&[]), gauge.get()));
        }
        Handle::Histogram(histogram) => {
            for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push(format!(
                    "{}{} {}",
                    series.name,
                    labels(&[("quantile", tag)]),
                    format_value(histogram.quantile(q)),
                ));
            }
            out.push(format!(
                "{}_sum{} {}",
                series.name,
                labels(&[]),
                histogram.sum()
            ));
            out.push(format!(
                "{}_count{} {}",
                series.name,
                labels(&[]),
                histogram.count()
            ));
        }
    }
}

/// Renders a float without trailing noise (integers print as integers).
fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for summaries, includes the `_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// Looks up a label value.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition into samples. Comment and blank
/// lines are skipped; any malformed sample line is an error. The
/// round-trip property `parse(render(r)) == r`'s samples is tested in
/// this crate and enforced again by the CI gate on a live `/metrics`
/// scrape.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .ok_or("missing value")?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let rest = &line[name_end..];
    let rest = if let Some(inner) = rest.strip_prefix('{') {
        let close = inner.rfind('}').ok_or("unterminated label set")?;
        parse_labels(&inner[..close], &mut labels)?;
        &inner[close + 1..]
    } else {
        rest
    };
    let value_text = rest.trim();
    if value_text.is_empty() {
        return Err("missing value".to_owned());
    }
    let value: f64 = value_text
        .split_ascii_whitespace()
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("bad value {value_text:?}"))?;
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

fn parse_labels(text: &str, labels: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut chars = text.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_ascii_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(());
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        let key = key.trim().to_owned();
        if key.is_empty() {
            return Err("empty label name".to_owned());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value must be quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated value for label {key}")),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_maths_are_exact_at_boundaries() {
        for value in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 1023, 1024, u64::MAX] {
            let index = bucket_index(value);
            let (lower, upper) = (bucket_lower(index), bucket_upper(index));
            assert!(
                lower <= value && (value < upper || upper == u64::MAX),
                "value {value} maps to bucket {index} [{lower}, {upper})",
            );
        }
        // Values below SUBS*2 are exact.
        for value in 0..8u64 {
            let index = bucket_index(value);
            assert_eq!(bucket_lower(index), value);
        }
    }

    #[test]
    fn quantiles_track_exact_order_statistics() {
        let histogram = Histogram::new();
        for value in 1..=1000u64 {
            histogram.observe(value);
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = histogram.quantile(q);
            let error = (got - exact).abs() / exact;
            assert!(error <= 0.25, "q{q}: got {got}, exact {exact}");
        }
        assert_eq!(histogram.count(), 1000);
        assert_eq!(histogram.sum(), 500_500);
        assert_eq!(Histogram::new().quantile(0.5), 0.0, "empty histogram");
    }

    #[test]
    fn registry_returns_the_same_series_for_the_same_key() {
        let registry = Registry::new();
        let a = registry.counter("askit_test_total", "help", &[("model", "gpt4")]);
        let b = registry.counter("askit_test_total", "help", &[("model", "gpt4")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "one series behind both handles");
        let other = registry.counter("askit_test_total", "help", &[("model", "gpt35")]);
        assert_eq!(other.get(), 0, "different labels, different series");
        assert_eq!(
            registry.counter_value("askit_test_total", &[("model", "gpt4")]),
            3
        );
        assert_eq!(
            registry.counter_value("askit_never_registered", &[]),
            0,
            "reads never create series"
        );
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_panic() {
        let registry = Registry::new();
        let _counter = registry.counter("askit_conflict", "help", &[]);
        let _gauge = registry.gauge("askit_conflict", "help", &[]);
    }

    #[test]
    fn exposition_renders_and_parses_round_trip() {
        let registry = Registry::new();
        registry
            .counter(
                "askit_wire_requests_total",
                "Wire requests",
                &[("endpoint", "http://a")],
            )
            .add(7);
        registry
            .gauge("askit_sched_width", "Admission width", &[("model", "gpt4")])
            .set(12);
        let histogram =
            registry.histogram("askit_request_latency_us", "Latency", &[("model", "gpt4")]);
        for v in [100u64, 200, 300] {
            histogram.observe(v);
        }
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE askit_wire_requests_total counter"));
        assert!(text.contains("# TYPE askit_sched_width gauge"));
        assert!(text.contains("# TYPE askit_request_latency_us summary"));
        let samples = parse_exposition(&text).expect("own exposition parses");
        let find = |name: &str, label: (&str, &str)| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.label(label.0) == Some(label.1))
                .unwrap_or_else(|| panic!("missing {name} {label:?} in:\n{text}"))
                .value
        };
        assert_eq!(
            find("askit_wire_requests_total", ("endpoint", "http://a")),
            7.0
        );
        assert_eq!(find("askit_sched_width", ("model", "gpt4")), 12.0);
        assert_eq!(
            find("askit_request_latency_us_count", ("model", "gpt4")),
            3.0
        );
        assert_eq!(
            find("askit_request_latency_us_sum", ("model", "gpt4")),
            600.0
        );
        let p50 = find("askit_request_latency_us", ("quantile", "0.5"));
        assert!(
            (150.0..=250.0).contains(&p50),
            "p50 of 100/200/300 ≈ 200, got {p50}"
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("ok 1\n").is_ok());
        assert!(parse_exposition("no_value\n").is_err());
        assert!(parse_exposition("bad{unquoted=x} 1\n").is_err());
        assert!(parse_exposition("bad{k=\"v\"} notanumber\n").is_err());
        assert!(parse_exposition("1leading_digit 5\n").is_err());
        let escaped = parse_exposition("m{k=\"a\\\"b\\\\c\\nd\"} 1\n").expect("escapes parse");
        assert_eq!(escaped[0].label("k"), Some("a\"b\\c\nd"));
    }
}
