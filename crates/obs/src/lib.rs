//! # askit-obs
//!
//! The **observability layer** for the AskIt reproduction: structured
//! per-request tracing, a process-wide metrics registry, and an
//! env-filtered leveled logger — all hand-rolled on `std`, because the
//! build container has no crates.io access.
//!
//! The stack batches, caches, schedules, fails over, and hedges; the
//! aggregate counters that grew alongside those layers (`CacheStats`,
//! `HttpStats`, `/stats`) can say *how often* something happened but not
//! *to which request* or *in what order*. This crate closes that gap:
//!
//! * [`trace`](mod@trace) — a request-scoped [`TraceId`] stamped once at
//!   admission
//!   (the same idempotent-stamp discipline as deadlines), RAII span
//!   guards kept on a thread-local stack so parentage falls out of
//!   scoping, instant events for state transitions (breaker trips, AIMD
//!   width moves, failovers, hedge wins, deadline sheds), and a
//!   [`TraceSink`] that renders everything as Chrome-trace-event JSON
//!   viewable in Perfetto (`ui.perfetto.dev`). Tracing is **off until a
//!   sink is installed**: the disabled fast path is one relaxed atomic
//!   load, so instrumented code costs nothing in production-off mode.
//! * [`metrics`] — atomic counters and gauges plus log-linear-bucket
//!   histograms (p50/p90/p99 with ≤12.5% bucket error), registered by
//!   name + labels in a sharded registry. Call sites cache their
//!   [`Counter`]/[`Histogram`] handles, so the hot path is a few relaxed
//!   atomic ops; the registry renders Prometheus text exposition for
//!   `GET /metrics` and parses it back for round-trip tests.
//! * [`log`] — leveled diagnostics filtered by `ASKIT_LOG`
//!   (`ASKIT_LOG=debug,askit_http=trace`), replacing the scattered
//!   `eprintln!` calls that previously ignored any verbosity setting.
//! * [`clock`] — an injectable clock ([`ObsClock`]) so span durations
//!   and timestamps are deterministic under test ([`ManualClock`]).
//!
//! The crate is a pure leaf: it depends on nothing in the workspace, so
//! every other crate (including `askit-llm`, which carries the
//! [`TraceId`] on `RequestOptions`) can depend on it without cycles.
//! Trace identity is **service advice**: it never enters a request
//! fingerprint, so traced and untraced runs share the same cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod log;
pub mod metrics;
pub mod trace;

pub use clock::{ManualClock, ObsClock, SystemClock};
pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, Registry, Sample};
pub use trace::{EventBuilder, PropagationGuard, SpanGuard, TraceEvent, TraceId, TraceSink};

/// Opens a span on the installed [`TraceSink`] (no-op when none is
/// installed or `trace` is `None`). Shorthand for [`trace::span`].
pub fn span(trace: Option<TraceId>, name: &'static str) -> SpanGuard {
    trace::span(trace, name)
}

/// Records an instant event (no-op when no sink is installed). Events
/// with `trace: None` are process-scope — state transitions such as
/// breaker trips that no single request owns. Shorthand for
/// [`trace::event`].
pub fn event(trace: Option<TraceId>, name: &'static str) -> EventBuilder {
    trace::event(trace, name)
}

/// Locks a mutex, recovering from poisoning (the protected state is
/// event buffers and metric tables whose invariants hold per operation).
pub(crate) fn lock<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// FNV-1a over `bytes` — shard selection and trace-id seeding.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
